//! Adversarial corpus generators for the equivalence test suites.
//!
//! The synthetic generator produces *benign* corpora: moderately sized
//! vocabularies, non-degenerate vectors, diverse attribute values. The
//! bit-identity contracts (`similarity_equivalence`, `delta_equivalence`)
//! and the candidate-filter soundness proof (`candidate_pruning`) must
//! also hold on the shapes that historically break sparse pipelines:
//!
//! * **skewed-Zipf term frequencies** — one term dominates every vector,
//!   so weight-mass upper bounds are tight and rounding is stressed;
//! * **empty and singleton vectors** — zero norms and one-entry merges,
//!   the classic division-by-zero / empty-intersection edge cases;
//! * **all-shared-term cliques** — every attribute pair is a candidate,
//!   so pruning can skip nothing and dense/pruned parity is total;
//! * **unicode-heavy values** — multi-byte tokens exercise normalisation,
//!   interning and hashing outside ASCII.
//!
//! Each flavor starts from a seeded [`SyntheticConfig::tiny`] dataset and
//! rewrites the attribute values of every article in place, keeping the
//! corpus structurally valid (titles, cross-links, types and ground truth
//! untouched) while driving the vector contents to the adversarial shape.
//! Mutations are a pure function of `(flavor, seed)`.

use wiki_corpus::{Article, Dataset, SyntheticConfig};

/// The degenerate corpus shapes the equivalence suites must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialFlavor {
    /// Term draws follow a steep Zipf law over a 24-term vocabulary.
    ZipfSkew,
    /// A third of all values emptied, another third reduced to one term.
    EmptyAndSingleton,
    /// Every value shares one four-term core, so all pairs are candidates.
    SharedTermClique,
    /// Values dominated by multi-byte (diacritic / CJK / emoji) tokens.
    UnicodeTitles,
}

impl AdversarialFlavor {
    /// Every flavor, in declaration order.
    pub const ALL: [AdversarialFlavor; 4] = [
        AdversarialFlavor::ZipfSkew,
        AdversarialFlavor::EmptyAndSingleton,
        AdversarialFlavor::SharedTermClique,
        AdversarialFlavor::UnicodeTitles,
    ];
}

/// Deterministic split-mix step so mutations are a pure function of the
/// seed (the same generator the delta-equivalence suite uses).
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A value whose term draws follow a steep Zipf law: rank `r` is chosen
/// with probability ∝ 1/(r+1)², concentrating most of the mass on two or
/// three terms.
fn zipf_value(state: &mut u64, words: usize) -> String {
    const VOCAB: [&str; 24] = [
        "zipf", "cabeca", "corpo", "cauda", "raro", "unico", "denso", "leve", "filme", "ator",
        "cena", "tela", "luz", "som", "cor", "tom", "ano", "mes", "dia", "hora", "novo", "velho",
        "alto", "baixo",
    ];
    // Cumulative 1/(r+1)² mass over the vocabulary, fixed-point in 1e6.
    let weights: Vec<u64> = (0..VOCAB.len() as u64)
        .map(|r| 1_000_000 / ((r + 1) * (r + 1)))
        .collect();
    let total: u64 = weights.iter().sum();
    let mut out = Vec::with_capacity(words);
    for _ in 0..words {
        let mut draw = next(state) % total;
        let mut rank = 0usize;
        for (r, w) in weights.iter().enumerate() {
            if draw < *w {
                rank = r;
                break;
            }
            draw -= w;
        }
        out.push(VOCAB[rank]);
    }
    out.join(" ")
}

/// Rewrites one article's attribute values to the flavor's shape. `k` is
/// the article's ordinal, used to vary per-article disambiguator terms.
fn rewrite(flavor: AdversarialFlavor, article: &mut Article, state: &mut u64, k: usize) {
    for (slot, attr) in article.infobox.attributes.iter_mut().enumerate() {
        attr.value = match flavor {
            AdversarialFlavor::ZipfSkew => {
                let words = 3 + (next(state) % 6) as usize;
                zipf_value(state, words)
            }
            AdversarialFlavor::EmptyAndSingleton => match slot % 3 {
                0 => String::new(),
                1 => format!("solo{}", next(state) % 5),
                _ => std::mem::take(&mut attr.value),
            },
            AdversarialFlavor::SharedTermClique => {
                format!("alfa beta gama delta extra{}", k % 7)
            }
            AdversarialFlavor::UnicodeTitles => format!(
                "crème brûlée Điện ảnh 映画祭 Pokémon 🎬 №{} Güneş doğa",
                next(state) % 9
            ),
        };
    }
}

/// A structurally valid Pt-En dataset whose attribute values have been
/// driven to the flavor's degenerate shape. Pure in `(flavor, seed)`.
pub fn adversarial_pt_en(flavor: AdversarialFlavor, seed: u64) -> Dataset {
    let config = SyntheticConfig {
        seed,
        ..SyntheticConfig::tiny()
    };
    let mut dataset = Dataset::pt_en(&config);
    let mut state = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(flavor as u64 + 1);
    let articles: Vec<Article> = dataset.corpus.articles().cloned().collect();
    for (k, mut article) in articles.into_iter().enumerate() {
        rewrite(flavor, &mut article, &mut state, k);
        dataset.corpus.replace(article);
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_structurally_valid() {
        for flavor in AdversarialFlavor::ALL {
            let a = adversarial_pt_en(flavor, 42);
            let b = adversarial_pt_en(flavor, 42);
            assert_eq!(a.corpus.len(), b.corpus.len(), "{flavor:?} not pure");
            assert!(!a.types.is_empty());
            let (va, vb): (Vec<_>, Vec<_>) = (
                a.corpus.articles().map(|x| &x.infobox).collect(),
                b.corpus.articles().map(|x| &x.infobox).collect(),
            );
            assert_eq!(va, vb, "{flavor:?} values not reproducible");
        }
    }

    #[test]
    fn empty_and_singleton_actually_produces_empty_values() {
        let dataset = adversarial_pt_en(AdversarialFlavor::EmptyAndSingleton, 7);
        let empties = dataset
            .corpus
            .articles()
            .flat_map(|a| &a.infobox.attributes)
            .filter(|attr| attr.value.is_empty())
            .count();
        assert!(empties > 0, "no empty values generated");
    }

    #[test]
    fn clique_values_share_the_core_terms() {
        let dataset = adversarial_pt_en(AdversarialFlavor::SharedTermClique, 7);
        for article in dataset.corpus.articles() {
            for attr in &article.infobox.attributes {
                assert!(attr.value.contains("alfa beta gama delta"));
            }
        }
    }
}
