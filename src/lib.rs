//! # wikimatch-suite
//!
//! Umbrella crate of the WikiMatch reproduction workspace. It re-exports the
//! public crates so the examples under `examples/` and the integration tests
//! under `tests/` can use a single dependency, and offers a couple of
//! convenience helpers shared by both.
//!
//! ## The session API in one minute
//!
//! All matching flows through [`wikimatch::MatchEngine`], a corpus-scoped
//! session: build it once per dataset, and the bilingual title dictionary,
//! the entity-type correspondences and the per-type schema/similarity
//! artifacts are computed exactly once and reused by every request.
//!
//! ```
//! use wikimatch_suite::{evaluate_alignment, wiki_corpus, wikimatch};
//! use wiki_corpus::{Dataset, SyntheticConfig};
//! use wikimatch::MatchEngine;
//!
//! let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
//! let alignment = engine.align("film").expect("film type exists");
//! let scores = evaluate_alignment(&engine.dataset(), &alignment);
//! assert!(scores.f1 > 0.0);
//! ```
//!
//! Matchers — WikiMatch itself and every baseline — implement
//! [`wikimatch::SchemaMatcher`] and are interchangeable plugins:
//! `engine.align_with(&matcher, "film")` runs any of them over the same
//! cached artifacts. The pre-0.2 one-shot calls on `WikiMatch`
//! (`align_type` / `align_all` / `prepare_type` / `match_types`) are
//! deprecated shims around a throwaway engine and will be removed one
//! release after 0.2.
//!
//! ## The individual crates
//!
//! * [`wiki_corpus`] — data model, wikitext parser, synthetic corpus
//!   generator and ground truth;
//! * [`wiki_text`] — normalisation, tokenisation, string similarity;
//! * [`wiki_linalg`] — SVD / LSI numerics;
//! * [`wiki_translate`] — bilingual title dictionary and simulated machine
//!   translation;
//! * [`wikimatch`] — the `MatchEngine` session, the `SchemaMatcher` plugin
//!   trait and the WikiMatch matcher itself;
//! * [`wiki_baselines`] — LSI, Bouma, COMA++-style and correlation-ordering
//!   baselines, all `SchemaMatcher` plugins;
//! * [`wiki_eval`] — weighted/macro metrics, MAP, cumulative gain, overlap;
//! * [`wiki_query`] — the WikiQuery-style case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;

pub use wiki_baselines;
pub use wiki_corpus;
pub use wiki_eval;
pub use wiki_linalg;
pub use wiki_query;
pub use wiki_text;
pub use wiki_translate;
pub use wikimatch;

use std::collections::HashMap;

use wiki_corpus::{Dataset, Language};
use wiki_eval::{weighted_scores, Scores};
use wikimatch::TypeAlignment;

/// Evaluates a set of derived cross-language pairs for one entity type of a
/// dataset with the paper's weighted metrics.
///
/// The pairs must be `(foreign-language attribute, English attribute)`, the
/// orientation produced by [`TypeAlignment::cross_pairs`] and by every
/// [`wikimatch::SchemaMatcher`] implementation.
pub fn evaluate_pairs(
    dataset: &Dataset,
    type_id: &str,
    freq_other: &HashMap<String, f64>,
    freq_en: &HashMap<String, f64>,
    pairs: &[(String, String)],
) -> Scores {
    let Some(gold) = dataset.ground_truth.for_type(type_id) else {
        return Scores::default();
    };
    weighted_scores(
        pairs,
        gold,
        dataset.other_language(),
        dataset.english(),
        freq_other,
        freq_en,
    )
}

/// Evaluates a [`TypeAlignment`] produced by a
/// [`wikimatch::MatchEngine`] against the dataset's ground truth.
pub fn evaluate_alignment(dataset: &Dataset, alignment: &TypeAlignment) -> Scores {
    let freq_other = alignment.schema.frequencies(dataset.other_language());
    let freq_en = alignment.schema.frequencies(&Language::En);
    evaluate_pairs(
        dataset,
        &alignment.type_id,
        &freq_other,
        &freq_en,
        &alignment.cross_pairs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::SyntheticConfig;
    use wikimatch::MatchEngine;

    #[test]
    fn evaluate_alignment_produces_bounded_scores() {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let alignment = engine.align("film").unwrap();
        let scores = evaluate_alignment(&engine.dataset(), &alignment);
        assert!((0.0..=1.0).contains(&scores.precision));
        assert!((0.0..=1.0).contains(&scores.recall));
        assert!(scores.f1 > 0.0, "film alignment should find something");
    }

    #[test]
    fn unknown_type_evaluates_to_zero() {
        let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
        let scores = evaluate_pairs(
            &dataset,
            "not a type",
            &HashMap::new(),
            &HashMap::new(),
            &[("a".into(), "b".into())],
        );
        assert_eq!(scores, Scores::default());
    }
}
