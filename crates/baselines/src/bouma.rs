//! The Bouma et al. value/link alignment baseline.
//!
//! Bouma, Duarte and Islam ("Cross-lingual alignment and completion of
//! Wikipedia templates", CLIAWS3 2009) align infobox attributes between
//! English and Dutch by matching attribute *values* of cross-linked article
//! pairs: two values match when they are identical, or when they are links
//! whose landing articles are connected by a cross-language link. An
//! attribute pair is aligned when its values match in a sufficient fraction
//! of the dual infoboxes in which both attributes appear.
//!
//! On our shared [`DualSchema`] representation the per-attribute evidence is
//! already pooled, so the matcher scores a pair by the overlap of its value
//! vectors (translated through the title dictionary, which encodes exactly
//! the "identical or cross-linked" equivalence) and of its link-cluster
//! vectors, and accepts pairs whose overlap exceeds a threshold. This keeps
//! the defining characteristics the paper attributes to Bouma: high
//! precision, recall limited to attributes whose values actually coincide,
//! and no use of co-occurrence statistics.

use wiki_corpus::Language;
use wikimatch::{DualSchema, SchemaMatcher, SimilarityTable};

/// The Bouma-style value/link equality matcher.
#[derive(Debug, Clone, Copy)]
pub struct BoumaMatcher {
    /// Minimum fraction of value/link mass that must coincide for a pair to
    /// be aligned.
    pub threshold: f64,
}

impl Default for BoumaMatcher {
    fn default() -> Self {
        Self { threshold: 0.5 }
    }
}

impl BoumaMatcher {
    /// Creates a matcher with a custom acceptance threshold.
    pub fn new(threshold: f64) -> Self {
        Self { threshold }
    }

    /// The value-equality score of a pair: the maximum of the raw-value
    /// overlap and the link-cluster overlap.
    ///
    /// Bouma's criterion is literal: two values match when they are the
    /// *same string* or when their link targets are connected by a
    /// cross-language link. The raw (non-canonicalised) value atoms are used
    /// on purpose — a Portuguese date such as "18 de Dezembro de 1950" does
    /// not equal "December 18, 1950", which is what limits Bouma's recall in
    /// the paper. The overlap coefficient (`|A ∩ B| / min(|A|, |B|)`)
    /// mirrors Bouma's per-infobox matching: the attribute that is present
    /// less often is not penalised for the dual infoboxes in which it does
    /// not appear at all.
    fn score(schema: &DualSchema, p: usize, q: usize) -> f64 {
        let a = schema.attribute(p);
        let b = schema.attribute(q);
        let value_overlap = a.raw_values.overlap_coefficient(&b.raw_values);
        let link_overlap = a.links.overlap_coefficient(&b.links);
        value_overlap.max(link_overlap)
    }
}

impl SchemaMatcher for BoumaMatcher {
    fn name(&self) -> &'static str {
        "Bouma"
    }

    fn align(&self, schema: &DualSchema, _table: &SimilarityTable) -> Vec<(String, String)> {
        let (other, english) = (&schema.languages.0, &Language::En);
        let mut pairs = Vec::new();
        for p in schema.attributes_in(other) {
            // Bouma aligns each foreign attribute with the best-scoring
            // English attribute, provided the evidence is strong enough.
            let mut best: Option<(usize, f64)> = None;
            for q in schema.attributes_in(english) {
                let score = Self::score(schema, p, q);
                if score >= self.threshold && best.map(|(_, s)| score > s).unwrap_or(true) {
                    best = Some((q, score));
                }
            }
            if let Some((q, _)) = best {
                pairs.push((
                    schema.attribute(p).name.clone(),
                    schema.attribute(q).name.clone(),
                ));
            }
        }
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wiki_corpus::{Dataset, SyntheticConfig};
    use wikimatch::MatchEngine;

    fn schema_and_table() -> (Arc<DualSchema>, Arc<SimilarityTable>) {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let prepared = engine.prepared("film").unwrap();
        (prepared.schema, prepared.table)
    }

    #[test]
    fn finds_value_identical_attributes() {
        let (schema, table) = schema_and_table();
        let pairs = BoumaMatcher::default().align(&schema, &table);
        // Link-based attributes whose values coincide through cross-language
        // links must be found.
        assert!(
            pairs.contains(&("direcao".to_string(), "directed by".to_string())),
            "pairs = {pairs:?}"
        );
        assert!(!pairs.is_empty());
    }

    #[test]
    fn at_most_one_match_per_foreign_attribute() {
        let (schema, table) = schema_and_table();
        let pairs = BoumaMatcher::default().align(&schema, &table);
        let mut seen = std::collections::HashSet::new();
        for (pt, _) in &pairs {
            assert!(seen.insert(pt.clone()), "{pt} matched twice");
        }
    }

    #[test]
    fn higher_threshold_reduces_matches() {
        let (schema, table) = schema_and_table();
        let loose = BoumaMatcher::new(0.2).align(&schema, &table).len();
        let strict = BoumaMatcher::new(0.9).align(&schema, &table).len();
        assert!(strict <= loose);
    }

    #[test]
    fn missing_value_overlap_yields_no_match() {
        let (schema, table) = schema_and_table();
        let pairs = BoumaMatcher::default().align(&schema, &table);
        // Free-text attributes have language-specific values and therefore
        // no overlap — the alias attribute "outros nomes" appears only when
        // the alias strings coincide, never for e.g. "instrumentos".
        assert!(!pairs
            .iter()
            .any(|(pt, en)| pt == "instrumentos" && en == "instruments"));
    }
}
