//! # wiki-baselines
//!
//! The competitor systems WikiMatch is compared against in Section 4 of the
//! paper, re-implemented so the comparison can be reproduced end to end:
//!
//! * [`lsi_topk`] — plain LSI used as a cross-language matcher: for every
//!   attribute of the foreign language, the top-`k` English attributes by
//!   LSI score are reported as matches (Figure 6; the `k = 1` configuration
//!   is the "LSI" column of Table 2).
//! * [`bouma`] — the value/link equality alignment strategy of Bouma et al.
//!   (CLIAWS3 2009): attribute values match when they are identical or when
//!   their link targets are connected by a cross-language link.
//! * [`coma`] — a COMA++-style composite matcher with name and instance
//!   matchers, optional label translation (simulated Google Translator) and
//!   optional value translation (the automatically derived title
//!   dictionary), covering the N / I / NI / N+G / I+D / NG+ID
//!   configurations of Appendix C (Figure 7).
//! * [`correlation`] — the alternative co-occurrence correlation measures
//!   X1, X2, X3 and a random ordering, used for the candidate-ordering MAP
//!   comparison of Appendix B (Table 7).
//!
//! All matchers implement the [`Matcher`] trait and produce cross-language
//! pairs `(foreign attribute, English attribute)` over the same
//! [`DualSchema`] the WikiMatch core uses, so they are evaluated with the
//! identical metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bouma;
pub mod coma;
pub mod correlation;
pub mod lsi_topk;

pub use bouma::BoumaMatcher;
pub use coma::{ComaConfiguration, ComaMatcher};
pub use correlation::{ranked_candidates, CorrelationMeasure};
pub use lsi_topk::LsiTopKMatcher;

use wikimatch::{DualSchema, SimilarityTable};

/// A cross-language attribute matcher operating on a dual-language schema.
pub trait Matcher {
    /// Short name used in experiment reports ("Bouma", "COMA++", ...).
    fn name(&self) -> String;

    /// Produces cross-language pairs `(foreign attribute, English
    /// attribute)`.
    fn align(&self, schema: &DualSchema, table: &SimilarityTable) -> Vec<(String, String)>;
}
