//! # wiki-baselines
//!
//! The competitor systems WikiMatch is compared against in Section 4 of the
//! paper, re-implemented so the comparison can be reproduced end to end:
//!
//! * [`lsi_topk`] — plain LSI used as a cross-language matcher: for every
//!   attribute of the foreign language, the top-`k` English attributes by
//!   LSI score are reported as matches (Figure 6; the `k = 1` configuration
//!   is the "LSI" column of Table 2).
//! * [`bouma`] — the value/link equality alignment strategy of Bouma et al.
//!   (CLIAWS3 2009): attribute values match when they are identical or when
//!   their link targets are connected by a cross-language link.
//! * [`coma`] — a COMA++-style composite matcher with name and instance
//!   matchers, optional label translation (simulated Google Translator) and
//!   optional value translation (the automatically derived title
//!   dictionary), covering the N / I / NI / N+G / I+D / NG+ID
//!   configurations of Appendix C (Figure 7).
//! * [`correlation`] — the alternative co-occurrence correlation measures
//!   X1, X2, X3 and a random ordering, used for the candidate-ordering MAP
//!   comparison of Appendix B (Table 7), plus a top-1
//!   [`CorrelationMatcher`] plugin so the orderings can be run as matchers.
//!
//! All matchers implement the [`wikimatch::SchemaMatcher`] trait — the same
//! trait the WikiMatch core implements — and produce cross-language pairs
//! `(foreign attribute, English attribute)` over the same
//! [`wikimatch::DualSchema`], so every approach is interchangeable behind a
//! `&dyn SchemaMatcher` and runs through one
//! [`wikimatch::MatchEngine`] session with identical metrics.
//!
//! ```
//! use wiki_corpus::{Dataset, SyntheticConfig};
//! use wiki_baselines::{BoumaMatcher, LsiTopKMatcher};
//! use wikimatch::{MatchEngine, SchemaMatcher, WikiMatch};
//!
//! let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
//! let matchers: Vec<Box<dyn SchemaMatcher>> = vec![
//!     Box::new(WikiMatch::default()),
//!     Box::new(BoumaMatcher::default()),
//!     Box::new(LsiTopKMatcher::new(1)),
//! ];
//! for matcher in &matchers {
//!     let pairs = engine.align_with(matcher.as_ref(), "film").unwrap();
//!     println!("{}: {} pairs", matcher.label(), pairs.len());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bouma;
pub mod coma;
pub mod correlation;
pub mod lsi_topk;

pub use bouma::BoumaMatcher;
pub use coma::{ComaConfiguration, ComaMatcher};
pub use correlation::{ranked_candidates, CorrelationMatcher, CorrelationMeasure};
pub use lsi_topk::LsiTopKMatcher;

pub use wikimatch::SchemaMatcher;

/// Deprecated alias of [`wikimatch::SchemaMatcher`].
///
/// The baselines' private `Matcher` trait was absorbed into the core crate
/// as `SchemaMatcher` so WikiMatch itself and the baselines share one
/// plugin interface; this re-export keeps old `use wiki_baselines::Matcher`
/// imports compiling for one release.
#[deprecated(since = "0.2.0", note = "renamed to wikimatch::SchemaMatcher")]
pub use wikimatch::SchemaMatcher as Matcher;
