//! Alternative attribute-correlation measures and candidate orderings.
//!
//! Appendix B of the paper compares LSI against three simpler co-occurrence
//! statistics as a way of *ordering* the candidate matches (the ordering
//! drives Algorithm 1, so a measure that ranks correct matches first reduces
//! error propagation):
//!
//! * `X1 = Opq`
//! * `X2 = (1 + Opq/Op) · (1 + Opq/Oq)`
//! * `X3 = (Opq · Opq) / (Op + Oq)`
//!
//! where `Op`, `Oq` are the occurrence counts of the attributes and `Opq`
//! their co-occurrence count over the dual-language infoboxes. A random
//! ordering serves as the floor. The quality of each ordering is measured
//! with mean average precision (Table 7).

use wiki_corpus::Language;
use wikimatch::{DualSchema, SchemaMatcher, SimilarityTable};

/// The candidate-ordering measures compared in Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationMeasure {
    /// The LSI score used by WikiMatch.
    Lsi,
    /// Raw co-occurrence count `Opq`.
    X1,
    /// `(1 + Opq/Op)(1 + Opq/Oq)`.
    X2,
    /// `Opq² / (Op + Oq)`.
    X3,
    /// Deterministic pseudo-random ordering (baseline floor).
    Random,
}

impl CorrelationMeasure {
    /// All measures in the order reported by Table 7.
    pub fn all() -> &'static [CorrelationMeasure] {
        &[
            CorrelationMeasure::Lsi,
            CorrelationMeasure::X1,
            CorrelationMeasure::X2,
            CorrelationMeasure::X3,
            CorrelationMeasure::Random,
        ]
    }

    /// The label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            CorrelationMeasure::Lsi => "LSI",
            CorrelationMeasure::X1 => "X1",
            CorrelationMeasure::X2 => "X2",
            CorrelationMeasure::X3 => "X3",
            CorrelationMeasure::Random => "Random",
        }
    }

    /// The score of a pair `(p, q)` under this measure.
    pub fn score(
        &self,
        schema: &DualSchema,
        table: &SimilarityTable,
        p: usize,
        q: usize,
        seed: u64,
    ) -> f64 {
        let a = schema.attribute(p);
        let b = schema.attribute(q);
        let op = a.occurrences as f64;
        let oq = b.occurrences as f64;
        let opq = a.co_occurrences(b) as f64;
        match self {
            CorrelationMeasure::Lsi => table.pair(p, q).map(|pair| pair.lsi).unwrap_or(0.0),
            CorrelationMeasure::X1 => opq,
            CorrelationMeasure::X2 => {
                if op == 0.0 || oq == 0.0 {
                    0.0
                } else {
                    (1.0 + opq / op) * (1.0 + opq / oq)
                }
            }
            CorrelationMeasure::X3 => {
                if op + oq == 0.0 {
                    0.0
                } else {
                    opq * opq / (op + oq)
                }
            }
            CorrelationMeasure::Random => pseudo_random(p as u64, q as u64, seed),
        }
    }
}

/// A deterministic hash-based pseudo-random score in `[0, 1)`.
fn pseudo_random(p: u64, q: u64, seed: u64) -> f64 {
    let mut z = p
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(q.rotate_left(17))
        .wrapping_add(seed.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// For every foreign-language attribute, the English candidates ranked by
/// the requested measure (highest score first).
///
/// The result pairs each foreign attribute name with the ranked list of
/// English attribute names — ready to be turned into a correctness ranking
/// for the MAP computation of Table 7.
pub fn ranked_candidates(
    schema: &DualSchema,
    table: &SimilarityTable,
    measure: CorrelationMeasure,
    seed: u64,
) -> Vec<(String, Vec<String>)> {
    let (other, english) = (&schema.languages.0, &Language::En);
    let mut out = Vec::new();
    for p in schema.attributes_in(other) {
        let mut candidates: Vec<(usize, f64)> = schema
            .attributes_in(english)
            .into_iter()
            .map(|q| (q, measure.score(schema, table, p, q, seed)))
            .collect();
        // `total_cmp` (a total order over all floats, NaN included) plus the
        // attribute index as the stable secondary key: equal-score
        // candidates rank identically across runs and platforms.
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.push((
            schema.attribute(p).name.clone(),
            candidates
                .into_iter()
                .map(|(q, _)| schema.attribute(q).name.clone())
                .collect(),
        ));
    }
    out
}

/// Runs a correlation ordering as a [`SchemaMatcher`] plugin: every foreign
/// attribute is matched to its top-ranked English candidate under the
/// measure.
///
/// This makes the Appendix B orderings interchangeable with WikiMatch and
/// the other baselines behind a `&dyn SchemaMatcher`, so the same engine
/// harness that produces Table 2 can also score the orderings.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationMatcher {
    /// The ordering measure to rank candidates with.
    pub measure: CorrelationMeasure,
    /// Seed of the [`CorrelationMeasure::Random`] ordering.
    pub seed: u64,
}

impl Default for CorrelationMatcher {
    /// The LSI ordering (the measure WikiMatch itself uses).
    fn default() -> Self {
        Self::new(CorrelationMeasure::Lsi)
    }
}

impl CorrelationMatcher {
    /// Seed shared by every harness that evaluates the `Random` ordering,
    /// so the matcher plugin and the Table 7 MAP computation rank the same
    /// permutation.
    pub const DEFAULT_SEED: u64 = 11;

    /// Creates a top-1 matcher over the given measure.
    pub fn new(measure: CorrelationMeasure) -> Self {
        Self {
            measure,
            seed: Self::DEFAULT_SEED,
        }
    }
}

impl SchemaMatcher for CorrelationMatcher {
    fn name(&self) -> &'static str {
        "Correlation"
    }

    fn label(&self) -> String {
        format!("Correlation {}", self.measure.label())
    }

    fn align(&self, schema: &DualSchema, table: &SimilarityTable) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> =
            ranked_candidates(schema, table, self.measure, self.seed)
                .into_iter()
                .filter_map(|(attribute, candidates)| {
                    candidates.into_iter().next().map(|best| (attribute, best))
                })
                .collect();
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wiki_corpus::{Dataset, SyntheticConfig};
    use wikimatch::MatchEngine;

    fn schema_and_table() -> (Arc<DualSchema>, Arc<SimilarityTable>) {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let prepared = engine.prepared("actor").unwrap();
        (prepared.schema, prepared.table)
    }

    #[test]
    fn measures_are_finite_and_nonnegative() {
        let (schema, table) = schema_and_table();
        let p = schema.attributes_in(&Language::Pt)[0];
        let q = schema.attributes_in(&Language::En)[0];
        for measure in CorrelationMeasure::all() {
            let s = measure.score(&schema, &table, p, q, 3);
            assert!(s.is_finite());
            assert!(s >= 0.0, "{} produced {s}", measure.label());
        }
    }

    #[test]
    fn rankings_cover_all_english_attributes() {
        let (schema, table) = schema_and_table();
        let english_count = schema.attributes_in(&Language::En).len();
        for measure in CorrelationMeasure::all() {
            let ranked = ranked_candidates(&schema, &table, *measure, 3);
            assert_eq!(ranked.len(), schema.attributes_in(&Language::Pt).len());
            for (_, candidates) in &ranked {
                assert_eq!(candidates.len(), english_count);
            }
        }
    }

    #[test]
    fn random_ordering_is_deterministic_per_seed() {
        let (schema, table) = schema_and_table();
        let a = ranked_candidates(&schema, &table, CorrelationMeasure::Random, 7);
        let b = ranked_candidates(&schema, &table, CorrelationMeasure::Random, 7);
        assert_eq!(a, b);
        let c = ranked_candidates(&schema, &table, CorrelationMeasure::Random, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn x_measures_reward_co_occurrence() {
        let (schema, table) = schema_and_table();
        // Find a pair with high co-occurrence and one with zero.
        let pt = schema.attributes_in(&Language::Pt);
        let en = schema.attributes_in(&Language::En);
        let mut best = (0, 0, 0usize);
        let mut worst = (0, 0, usize::MAX);
        for &p in &pt {
            for &q in &en {
                let co = schema.attribute(p).co_occurrences(schema.attribute(q));
                if co > best.2 {
                    best = (p, q, co);
                }
                if co < worst.2 {
                    worst = (p, q, co);
                }
            }
        }
        if best.2 > worst.2 {
            for measure in [
                CorrelationMeasure::X1,
                CorrelationMeasure::X2,
                CorrelationMeasure::X3,
            ] {
                let s_best = measure.score(&schema, &table, best.0, best.1, 0);
                let s_worst = measure.score(&schema, &table, worst.0, worst.1, 0);
                assert!(
                    s_best >= s_worst,
                    "{}: {s_best} < {s_worst}",
                    measure.label()
                );
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(CorrelationMeasure::Lsi.label(), "LSI");
        assert_eq!(CorrelationMeasure::all().len(), 5);
    }

    #[test]
    fn correlation_matcher_reports_top_candidates() {
        let (schema, table) = schema_and_table();
        for measure in CorrelationMeasure::all() {
            let matcher = CorrelationMatcher::new(*measure);
            let pairs = matcher.align(&schema, &table);
            // One candidate per foreign attribute, each the head of the
            // corresponding ranking.
            let ranked = ranked_candidates(&schema, &table, *measure, matcher.seed);
            assert_eq!(pairs.len(), ranked.len());
            for (attribute, candidates) in ranked {
                assert!(
                    pairs.contains(&(attribute.clone(), candidates[0].clone())),
                    "{} missing top candidate for {attribute}",
                    matcher.label()
                );
            }
        }
        assert_eq!(CorrelationMatcher::default().name(), "Correlation");
        assert_eq!(
            CorrelationMatcher::new(CorrelationMeasure::X2).label(),
            "Correlation X2"
        );
    }
}
