//! A COMA++-style composite schema matcher.
//!
//! COMA++ (Aumueller, Do, Massmann & Rahm, SIGMOD 2005) combines independent
//! *matchers* — here a **name matcher** (string similarity over attribute
//! labels) and an **instance matcher** (similarity over attribute values) —
//! through an aggregation function and a selection step. The paper tests it
//! in several configurations (Appendix C / Figure 7):
//!
//! | configuration | name matcher | instance matcher |
//! |---------------|--------------|------------------|
//! | `N`           | raw labels   | —                |
//! | `I`           | —            | raw values       |
//! | `NI`          | raw labels   | raw values       |
//! | `N+G`         | labels translated by (simulated) Google Translator | — |
//! | `I+D`         | —            | values translated by the title dictionary |
//! | `N+D`         | labels translated by the title dictionary | — |
//! | `NG+ID`       | translated labels | translated values |
//!
//! Selection mirrors COMA++'s `Multiple(0,0,0)` strategy with a similarity
//! threshold `delta`: every English attribute whose aggregated score for a
//! foreign attribute exceeds `delta` *and* equals that attribute's maximum
//! is selected.

use wiki_corpus::Language;
use wiki_text::strsim::name_similarity;
use wiki_translate::MachineTranslator;
use wikimatch::{DualSchema, SchemaMatcher, SimilarityTable};

/// The matcher configurations of Appendix C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComaConfiguration {
    /// Name matcher only, raw labels.
    Name,
    /// Instance matcher only, raw values.
    Instance,
    /// Name + instance matchers, no translation.
    NameInstance,
    /// Name matcher over machine-translated labels.
    NameTranslated,
    /// Instance matcher over dictionary-translated values.
    InstanceTranslated,
    /// Name matcher over dictionary-translated labels.
    NameDictionary,
    /// Translated name matcher + translated instance matcher (the best Pt-En
    /// configuration in the paper).
    NameTranslatedInstanceTranslated,
}

impl ComaConfiguration {
    /// All configurations, in the order plotted in Figure 7.
    pub fn all() -> &'static [ComaConfiguration] {
        &[
            ComaConfiguration::Name,
            ComaConfiguration::Instance,
            ComaConfiguration::NameInstance,
            ComaConfiguration::NameTranslated,
            ComaConfiguration::InstanceTranslated,
            ComaConfiguration::NameDictionary,
            ComaConfiguration::NameTranslatedInstanceTranslated,
        ]
    }

    /// The short label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ComaConfiguration::Name => "N",
            ComaConfiguration::Instance => "I",
            ComaConfiguration::NameInstance => "NI",
            ComaConfiguration::NameTranslated => "N+G",
            ComaConfiguration::InstanceTranslated => "I+D",
            ComaConfiguration::NameDictionary => "N+D",
            ComaConfiguration::NameTranslatedInstanceTranslated => "NG+ID",
        }
    }

    fn uses_name(&self) -> bool {
        !matches!(
            self,
            ComaConfiguration::Instance | ComaConfiguration::InstanceTranslated
        )
    }

    fn uses_instance(&self) -> bool {
        matches!(
            self,
            ComaConfiguration::Instance
                | ComaConfiguration::NameInstance
                | ComaConfiguration::InstanceTranslated
                | ComaConfiguration::NameTranslatedInstanceTranslated
        )
    }

    fn translates_names(&self) -> bool {
        matches!(
            self,
            ComaConfiguration::NameTranslated
                | ComaConfiguration::NameDictionary
                | ComaConfiguration::NameTranslatedInstanceTranslated
        )
    }

    fn translates_instances(&self) -> bool {
        matches!(
            self,
            ComaConfiguration::InstanceTranslated
                | ComaConfiguration::NameTranslatedInstanceTranslated
        )
    }
}

/// The COMA++-style matcher.
#[derive(Debug, Clone)]
pub struct ComaMatcher {
    /// Which matchers and translations are active.
    pub configuration: ComaConfiguration,
    /// Selection threshold `delta` (the paper sweeps 0.0–1.0 and settles on
    /// a low value).
    pub delta: f64,
}

impl Default for ComaMatcher {
    /// The paper's best Pt-En configuration (`NG+ID`) with the default
    /// threshold.
    fn default() -> Self {
        Self::new(ComaConfiguration::NameTranslatedInstanceTranslated)
    }
}

impl ComaMatcher {
    /// Creates a matcher with the paper's default threshold (`delta = 0.01`
    /// — COMA++'s best configuration used a very permissive threshold).
    pub fn new(configuration: ComaConfiguration) -> Self {
        Self {
            configuration,
            delta: 0.01,
        }
    }

    /// Creates a matcher with an explicit selection threshold.
    pub fn with_delta(configuration: ComaConfiguration, delta: f64) -> Self {
        Self {
            configuration,
            delta,
        }
    }

    /// The aggregated similarity of a pair `(foreign p, English q)`.
    fn score(&self, schema: &DualSchema, mt: &MachineTranslator, p: usize, q: usize) -> f64 {
        let a = schema.attribute(p);
        let b = schema.attribute(q);
        let mut scores = Vec::new();
        if self.configuration.uses_name() {
            let label_a = if self.configuration.translates_names() {
                match self.configuration {
                    // N+D uses the title dictionary, which rarely covers
                    // attribute labels — modelled by keeping the label when
                    // no dictionary entry exists (the translated_values path
                    // only covers titles). We approximate with the MT
                    // glossary restricted to whole-phrase hits.
                    ComaConfiguration::NameDictionary => mt.translate(&a.name),
                    _ => mt.translate(&a.name),
                }
            } else {
                a.name.clone()
            };
            scores.push(name_similarity(&label_a, &b.name));
        }
        if self.configuration.uses_instance() {
            // COMA++'s instance matcher compares value distributions only.
            // Unlike WikiMatch and Bouma it has no notion of Wikipedia's
            // cross-language link structure, so `lsim` evidence is *not*
            // available to it (this is one of the paper's points: generic
            // schema matchers cannot exploit the corpus' link structure).
            // Instances are the literal value strings; the "+D"
            // configurations translate them through the title dictionary.
            let value_sim = if self.configuration.translates_instances() {
                a.translated_raw_values.cosine(&b.translated_raw_values)
            } else {
                a.raw_values.cosine(&b.raw_values)
            };
            scores.push(value_sim);
        }
        // Aggregation: COMA++'s default "max" composition.
        scores.into_iter().fold(0.0, f64::max)
    }
}

impl SchemaMatcher for ComaMatcher {
    fn name(&self) -> &'static str {
        "COMA++"
    }

    fn label(&self) -> String {
        format!("COMA++ {}", self.configuration.label())
    }

    fn align(&self, schema: &DualSchema, _table: &SimilarityTable) -> Vec<(String, String)> {
        let (other, english) = (schema.languages.0.clone(), Language::En);
        let mt = MachineTranslator::new(other.clone(), english.clone());
        let mut pairs = Vec::new();
        for p in schema.attributes_in(&other) {
            let candidates: Vec<(usize, f64)> = schema
                .attributes_in(&english)
                .into_iter()
                .map(|q| (q, self.score(schema, &mt, p, q)))
                .collect();
            let best = candidates.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
            if best <= self.delta {
                continue;
            }
            for (q, score) in candidates {
                // Multiple(0,0,0)-style selection: keep maxima above delta.
                if (score - best).abs() < 1e-9 {
                    pairs.push((
                        schema.attribute(p).name.clone(),
                        schema.attribute(q).name.clone(),
                    ));
                }
            }
        }
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wiki_corpus::{Dataset, SyntheticConfig};
    use wikimatch::MatchEngine;

    fn schema_and_table() -> (Arc<DualSchema>, Arc<SimilarityTable>) {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let prepared = engine.prepared("film").unwrap();
        (prepared.schema, prepared.table)
    }

    #[test]
    fn configuration_flags() {
        assert!(ComaConfiguration::Name.uses_name());
        assert!(!ComaConfiguration::Name.uses_instance());
        assert!(ComaConfiguration::Instance.uses_instance());
        assert!(!ComaConfiguration::Instance.translates_instances());
        assert!(ComaConfiguration::InstanceTranslated.translates_instances());
        assert!(ComaConfiguration::NameTranslatedInstanceTranslated.uses_name());
        assert_eq!(ComaConfiguration::all().len(), 7);
        assert_eq!(ComaConfiguration::NameTranslated.label(), "N+G");
    }

    #[test]
    fn instance_matcher_finds_value_based_matches() {
        let (schema, table) = schema_and_table();
        let pairs = ComaMatcher::new(ComaConfiguration::InstanceTranslated).align(&schema, &table);
        assert!(
            pairs.contains(&("direcao".to_string(), "directed by".to_string())),
            "pairs = {pairs:?}"
        );
    }

    #[test]
    fn name_matcher_alone_struggles_across_languages() {
        // The key observation of the paper: string similarity between
        // Portuguese and English labels is unreliable, so the name-only
        // configuration should make more mistakes than the instance-based
        // one relative to the number of pairs it proposes.
        let (schema, table) = schema_and_table();
        let name_pairs = ComaMatcher::new(ComaConfiguration::Name).align(&schema, &table);
        // "elenco original" should NOT be matched to "starring" by string
        // similarity.
        assert!(!name_pairs.contains(&("elenco original".to_string(), "starring".to_string())));
    }

    #[test]
    fn translation_changes_the_name_matcher_output() {
        let (schema, table) = schema_and_table();
        let raw = ComaMatcher::new(ComaConfiguration::Name).align(&schema, &table);
        let translated = ComaMatcher::new(ComaConfiguration::NameTranslated).align(&schema, &table);
        assert_ne!(raw, translated);
    }

    #[test]
    fn higher_delta_never_increases_matches() {
        let (schema, table) = schema_and_table();
        let low = ComaMatcher::with_delta(ComaConfiguration::NameInstance, 0.01)
            .align(&schema, &table)
            .len();
        let high = ComaMatcher::with_delta(ComaConfiguration::NameInstance, 0.8)
            .align(&schema, &table)
            .len();
        assert!(high <= low);
    }

    #[test]
    fn matcher_names() {
        let matcher = ComaMatcher::new(ComaConfiguration::NameTranslatedInstanceTranslated);
        assert_eq!(matcher.name(), "COMA++");
        assert_eq!(matcher.label(), "COMA++ NG+ID");
    }
}
