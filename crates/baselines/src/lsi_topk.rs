//! The plain-LSI baseline.
//!
//! Latent Semantic Indexing was one of the first techniques applied to
//! cross-language term matching (Littman, Dumais & Landauer). Used on its
//! own, it only exploits co-occurrence: for every attribute of the foreign
//! language the `k` highest-scoring English attributes are reported as
//! matches. The paper evaluates `k ∈ {1, 3, 5, 10}` (Figure 6) and reports
//! the best F-measure configuration (`k = 1`) in Table 2; recall grows with
//! `k` while precision drops.

use wiki_corpus::Language;
use wikimatch::{DualSchema, SchemaMatcher, SimilarityTable};

/// LSI-only matcher reporting the top-`k` English candidates per foreign
/// attribute.
#[derive(Debug, Clone, Copy)]
pub struct LsiTopKMatcher {
    /// Number of English candidates reported per foreign attribute.
    pub k: usize,
    /// Minimum LSI score for a candidate to be reported at all.
    pub min_score: f64,
}

impl Default for LsiTopKMatcher {
    fn default() -> Self {
        Self {
            k: 1,
            min_score: 1e-6,
        }
    }
}

impl LsiTopKMatcher {
    /// Creates a matcher reporting the top `k` candidates.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }
}

impl SchemaMatcher for LsiTopKMatcher {
    fn name(&self) -> &'static str {
        "LSI"
    }

    fn label(&self) -> String {
        format!("LSI top-{}", self.k)
    }

    fn align(&self, schema: &DualSchema, table: &SimilarityTable) -> Vec<(String, String)> {
        let (other, english) = (&schema.languages.0, &Language::En);
        let mut pairs = Vec::new();
        for p in schema.attributes_in(other) {
            let mut candidates: Vec<(usize, f64)> = schema
                .attributes_in(english)
                .into_iter()
                .filter_map(|q| table.pair(p, q).map(|pair| (q, pair.lsi)))
                .filter(|(_, score)| *score > self.min_score)
                .collect();
            // `total_cmp` + attribute-index tie-break: the top-k cut falls
            // on the same candidates on every run and platform.
            candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (q, _) in candidates.into_iter().take(self.k) {
                pairs.push((
                    schema.attribute(p).name.clone(),
                    schema.attribute(q).name.clone(),
                ));
            }
        }
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wiki_corpus::{Dataset, SyntheticConfig};
    use wikimatch::MatchEngine;

    fn schema_and_table() -> (Arc<DualSchema>, Arc<SimilarityTable>) {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let prepared = engine.prepared("actor").unwrap();
        (prepared.schema, prepared.table)
    }

    #[test]
    fn reports_at_most_k_candidates_per_attribute() {
        let (schema, table) = schema_and_table();
        for k in [1, 3] {
            let pairs = LsiTopKMatcher::new(k).align(&schema, &table);
            let mut per_attr = std::collections::HashMap::new();
            for (pt, _) in &pairs {
                *per_attr.entry(pt.clone()).or_insert(0usize) += 1;
            }
            assert!(per_attr.values().all(|&n| n <= k), "k = {k}");
            assert!(!pairs.is_empty());
        }
    }

    #[test]
    fn recall_grows_with_k() {
        let (schema, table) = schema_and_table();
        let p1 = LsiTopKMatcher::new(1).align(&schema, &table).len();
        let p5 = LsiTopKMatcher::new(5).align(&schema, &table).len();
        assert!(p5 >= p1);
    }

    #[test]
    fn pairs_are_cross_language_only() {
        let (schema, table) = schema_and_table();
        let pairs = LsiTopKMatcher::new(3).align(&schema, &table);
        for (pt, en) in &pairs {
            assert!(schema.index_of(&Language::Pt, pt).is_some());
            assert!(schema.index_of(&Language::En, en).is_some());
        }
    }

    #[test]
    fn ranking_is_stable_across_engines_and_runs() {
        // Regression test for the deterministic-ranking bugfix: the top-k
        // cut must land on the same candidates every run — equal LSI scores
        // are broken by attribute id (`total_cmp` + secondary key), never by
        // sort incidentals.
        let (schema_a, table_a) = schema_and_table();
        let (schema_b, table_b) = schema_and_table();
        for k in [1, 3, 10] {
            let matcher = LsiTopKMatcher::new(k);
            let first = matcher.align(&schema_a, &table_a);
            assert_eq!(first, matcher.align(&schema_a, &table_a), "k = {k}");
            // A freshly built engine over the same dataset agrees too.
            assert_eq!(first, matcher.align(&schema_b, &table_b), "k = {k}");
        }
    }

    #[test]
    fn name_is_static_and_label_reflects_k() {
        assert_eq!(LsiTopKMatcher::new(5).name(), "LSI");
        assert_eq!(LsiTopKMatcher::new(5).label(), "LSI top-5");
    }
}
