//! String normalisation used throughout the matching pipeline.
//!
//! Infobox attribute names and values come from volunteer-edited wikitext and
//! exhibit inconsistent casing, stray punctuation, duplicated whitespace and,
//! for Portuguese and Vietnamese, heavy use of diacritics. The similarity
//! measures in the paper operate on *normalised* tokens, so every string that
//! enters a vector or a dictionary passes through [`normalize`] (values) or
//! [`normalize_label`] (attribute names / entity-type labels).

/// Folds Latin diacritics to their base ASCII character.
///
/// The mapping covers the characters used by Portuguese and the Vietnamese
/// quốc ngữ alphabet (including the đ/Đ letters). Characters outside the
/// table are returned unchanged, so the function is safe to apply to any
/// input.
///
/// ```
/// use wiki_text::fold_diacritics;
/// assert_eq!(fold_diacritics("direção"), "direcao");
/// assert_eq!(fold_diacritics("đạo diễn"), "dao dien");
/// assert_eq!(fold_diacritics("ngôn ngữ"), "ngon ngu");
/// ```
pub fn fold_diacritics(input: &str) -> String {
    input.chars().map(fold_char).collect()
}

/// Folds a single character to its undecorated form.
fn fold_char(c: char) -> char {
    match c {
        // Portuguese + generic Latin-1 vowels.
        'á' | 'à' | 'â' | 'ã' | 'ä' | 'ā' | 'ă' => 'a',
        'Á' | 'À' | 'Â' | 'Ã' | 'Ä' | 'Ā' | 'Ă' => 'A',
        'é' | 'è' | 'ê' | 'ë' | 'ē' | 'ĕ' => 'e',
        'É' | 'È' | 'Ê' | 'Ë' | 'Ē' | 'Ĕ' => 'E',
        'í' | 'ì' | 'î' | 'ï' | 'ī' | 'ĭ' => 'i',
        'Í' | 'Ì' | 'Î' | 'Ï' | 'Ī' | 'Ĭ' => 'I',
        'ó' | 'ò' | 'ô' | 'õ' | 'ö' | 'ō' | 'ŏ' | 'ơ' => 'o',
        'Ó' | 'Ò' | 'Ô' | 'Õ' | 'Ö' | 'Ō' | 'Ŏ' | 'Ơ' => 'O',
        'ú' | 'ù' | 'û' | 'ü' | 'ū' | 'ŭ' | 'ư' => 'u',
        'Ú' | 'Ù' | 'Û' | 'Ü' | 'Ū' | 'Ŭ' | 'Ư' => 'U',
        'ç' => 'c',
        'Ç' => 'C',
        'ñ' => 'n',
        'Ñ' => 'N',
        'ý' | 'ỳ' | 'ỹ' | 'ỷ' | 'ỵ' => 'y',
        'Ý' | 'Ỳ' | 'Ỹ' | 'Ỷ' | 'Ỵ' => 'Y',
        // Vietnamese tone marks on a.
        'ạ' | 'ả' | 'ấ' | 'ầ' | 'ẩ' | 'ẫ' | 'ậ' | 'ắ' | 'ằ' | 'ẳ' | 'ẵ' | 'ặ' => {
            'a'
        }
        'Ạ' | 'Ả' | 'Ấ' | 'Ầ' | 'Ẩ' | 'Ẫ' | 'Ậ' | 'Ắ' | 'Ằ' | 'Ẳ' | 'Ẵ' | 'Ặ' => {
            'A'
        }
        // Vietnamese tone marks on e.
        'ẹ' | 'ẻ' | 'ẽ' | 'ế' | 'ề' | 'ể' | 'ễ' | 'ệ' => 'e',
        'Ẹ' | 'Ẻ' | 'Ẽ' | 'Ế' | 'Ề' | 'Ể' | 'Ễ' | 'Ệ' => 'E',
        // Vietnamese tone marks on i.
        'ị' | 'ỉ' | 'ĩ' => 'i',
        'Ị' | 'Ỉ' | 'Ĩ' => 'I',
        // Vietnamese tone marks on o.
        'ọ' | 'ỏ' | 'ố' | 'ồ' | 'ổ' | 'ỗ' | 'ộ' | 'ớ' | 'ờ' | 'ở' | 'ỡ' | 'ợ' => {
            'o'
        }
        'Ọ' | 'Ỏ' | 'Ố' | 'Ồ' | 'Ổ' | 'Ỗ' | 'Ộ' | 'Ớ' | 'Ờ' | 'Ở' | 'Ỡ' | 'Ợ' => {
            'O'
        }
        // Vietnamese tone marks on u.
        'ụ' | 'ủ' | 'ứ' | 'ừ' | 'ử' | 'ữ' | 'ự' => 'u',
        'Ụ' | 'Ủ' | 'Ứ' | 'Ừ' | 'Ử' | 'Ữ' | 'Ự' => 'U',
        // Vietnamese đ.
        'đ' => 'd',
        'Đ' => 'D',
        other => other,
    }
}

/// Normalises an arbitrary value string: lowercase, fold diacritics, strip
/// punctuation (except digits' separators) and collapse whitespace.
///
/// ```
/// use wiki_text::normalize;
/// assert_eq!(normalize("  The LAST   Emperor! "), "the last emperor");
/// assert_eq!(normalize("Estados Unidos"), "estados unidos");
/// ```
pub fn normalize(input: &str) -> String {
    let folded = fold_diacritics(input).to_lowercase();
    let chars: Vec<char> = folded.chars().collect();
    let mut out = String::with_capacity(folded.len());
    let mut last_space = true;
    for (i, &c) in chars.iter().enumerate() {
        // Keep a decimal point that sits between two digits ("44.1"), but
        // treat any other '.' as a word separator ("U.S.A.").
        let decimal_point = c == '.'
            && i > 0
            && i + 1 < chars.len()
            && chars[i - 1].is_ascii_digit()
            && chars[i + 1].is_ascii_digit();
        let mapped = if c.is_alphanumeric() || decimal_point {
            Some(c)
        } else if c.is_whitespace() || is_separator(c) {
            Some(' ')
        } else {
            None
        };
        match mapped {
            Some(' ') if !last_space => {
                out.push(' ');
                last_space = true;
            }
            // A space following a space is swallowed.
            Some(' ') => {}
            Some(ch) => {
                out.push(ch);
                last_space = false;
            }
            None => {}
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Punctuation that should act as a word separator rather than be dropped.
fn is_separator(c: char) -> bool {
    matches!(
        c,
        '-' | '_' | '/' | ',' | ';' | ':' | '|' | '(' | ')' | '[' | ']' | '{' | '}' | '.'
    )
}

/// Normalises an attribute name or entity-type label.
///
/// Labels are treated slightly differently from values: underscores (common
/// in template parameter names such as `birth_date`) become spaces and
/// trailing numbering used by repeated template parameters (`starring2`) is
/// removed.
///
/// ```
/// use wiki_text::normalize_label;
/// assert_eq!(normalize_label("Birth_Date"), "birth date");
/// assert_eq!(normalize_label("starring2"), "starring");
/// assert_eq!(normalize_label("Elenco original"), "elenco original");
/// ```
pub fn normalize_label(input: &str) -> String {
    let base = normalize(input);
    // Strip a trailing repetition counter ("starring 2" or "starring2").
    let trimmed = base.trim_end_matches(|c: char| c.is_ascii_digit());
    let trimmed = trimmed.trim_end();
    if trimmed.is_empty() {
        base
    } else {
        trimmed.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_portuguese_diacritics() {
        assert_eq!(fold_diacritics("gênero"), "genero");
        assert_eq!(fold_diacritics("cônjuge"), "conjuge");
        assert_eq!(fold_diacritics("lançamento"), "lancamento");
        assert_eq!(fold_diacritics("prêmios"), "premios");
    }

    #[test]
    fn folds_vietnamese_diacritics() {
        assert_eq!(fold_diacritics("đạo diễn"), "dao dien");
        assert_eq!(fold_diacritics("diễn viên"), "dien vien");
        assert_eq!(fold_diacritics("kịch bản"), "kich ban");
        assert_eq!(fold_diacritics("nơi sinh"), "noi sinh");
        assert_eq!(fold_diacritics("thể loại"), "the loai");
    }

    #[test]
    fn normalize_collapses_whitespace_and_punctuation() {
        assert_eq!(normalize("Directed   by:"), "directed by");
        assert_eq!(normalize("running-time"), "running time");
        assert_eq!(normalize("  "), "");
        assert_eq!(normalize("U.S.A."), "u s a");
    }

    #[test]
    fn normalize_keeps_digits() {
        assert_eq!(normalize("165 minutes"), "165 minutes");
        assert_eq!(normalize("1987-12-18"), "1987 12 18");
    }

    #[test]
    fn labels_lose_repetition_counters() {
        assert_eq!(normalize_label("starring3"), "starring");
        assert_eq!(normalize_label("starring 12"), "starring");
        // A purely numeric label is preserved rather than emptied.
        assert_eq!(normalize_label("2010"), "2010");
    }

    #[test]
    fn normalize_is_idempotent() {
        for s in ["Direção", "đạo diễn", "Birth_Date", "The Last Emperor"] {
            let once = normalize(s);
            assert_eq!(normalize(&once), once);
        }
    }
}
