//! Typed interpretation of infobox value atoms.
//!
//! Infobox values for the same fact are written very differently across
//! language editions: the English article for *The Last Emperor* reports a
//! running time of `160 minutes` while the Portuguese one says
//! `165 minutos`; birth dates appear as `December 18, 1950` in English and
//! `18 de Dezembro de 1950` in Portuguese. The `vsim` measure of the paper
//! compares raw value vectors, so recognising dates and numbers and mapping
//! them to a canonical token dramatically reduces spurious mismatches that
//! are purely due to formatting.
//!
//! [`parse_value`] classifies an atom as a [`CanonicalValue::Date`],
//! [`CanonicalValue::Number`] or [`CanonicalValue::Text`] and
//! [`CanonicalValue::canonical_token`] renders it as a stable token.

use crate::normalize::normalize;

/// The result of interpreting a single value atom.
#[derive(Debug, Clone, PartialEq)]
pub enum CanonicalValue {
    /// A calendar date (year, optional month, optional day).
    Date {
        /// Four digit year.
        year: i32,
        /// Month 1..=12 when present.
        month: Option<u32>,
        /// Day of month when present.
        day: Option<u32>,
    },
    /// A plain number, possibly scaled by a magnitude word
    /// ("10 million" → 10_000_000).
    Number(f64),
    /// Anything else, stored in normalised form.
    Text(String),
}

impl CanonicalValue {
    /// Renders the canonical token used inside term vectors.
    ///
    /// Dates become `date:YYYY[-MM[-DD]]`, numbers `num:<value>` (with up to
    /// two decimals, trailing zeros trimmed), text stays as its normalised
    /// form.
    pub fn canonical_token(&self) -> String {
        match self {
            CanonicalValue::Date { year, month, day } => match (month, day) {
                (Some(m), Some(d)) => format!("date:{year:04}-{m:02}-{d:02}"),
                (Some(m), None) => format!("date:{year:04}-{m:02}"),
                _ => format!("date:{year:04}"),
            },
            CanonicalValue::Number(n) => {
                if (n.fract()).abs() < 1e-9 {
                    format!("num:{}", *n as i64)
                } else {
                    format!("num:{n:.2}")
                }
            }
            CanonicalValue::Text(t) => t.clone(),
        }
    }

    /// Returns true when the value carries date semantics.
    pub fn is_date(&self) -> bool {
        matches!(self, CanonicalValue::Date { .. })
    }

    /// Returns true when the value carries numeric semantics.
    pub fn is_number(&self) -> bool {
        matches!(self, CanonicalValue::Number(_))
    }

    /// Extracts the numeric magnitude if this is a number or a bare year.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            CanonicalValue::Number(n) => Some(*n),
            CanonicalValue::Date {
                year,
                month: None,
                day: None,
            } => Some(*year as f64),
            _ => None,
        }
    }
}

/// Month names for the three corpus languages (normalised, diacritics folded).
const MONTHS: &[(&str, u32)] = &[
    // English.
    ("january", 1),
    ("february", 2),
    ("march", 3),
    ("april", 4),
    ("may", 5),
    ("june", 6),
    ("july", 7),
    ("august", 8),
    ("september", 9),
    ("october", 10),
    ("november", 11),
    ("december", 12),
    // Portuguese.
    ("janeiro", 1),
    ("fevereiro", 2),
    ("marco", 3),
    ("abril", 4),
    ("maio", 5),
    ("junho", 6),
    ("julho", 7),
    ("agosto", 8),
    ("setembro", 9),
    ("outubro", 10),
    ("novembro", 11),
    ("dezembro", 12),
    // Vietnamese month references are written as "tháng N" and handled
    // numerically below.
];

/// Magnitude words that scale a number ("10 million", "10 bilhões", "tỷ").
const MAGNITUDES: &[(&str, f64)] = &[
    ("thousand", 1.0e3),
    ("mil", 1.0e3),
    ("nghin", 1.0e3),
    ("million", 1.0e6),
    ("milhao", 1.0e6),
    ("milhoes", 1.0e6),
    ("trieu", 1.0e6),
    ("billion", 1.0e9),
    ("bilhao", 1.0e9),
    ("bilhoes", 1.0e9),
    ("ty", 1.0e9),
];

/// Units that commonly trail a numeric value and should be dropped.
const UNITS: &[&str] = &[
    "minutes", "minutos", "phut", "min", "usd", "us", "dollars", "dolares", "reais", "dong",
];

fn lookup_month(token: &str) -> Option<u32> {
    MONTHS
        .iter()
        .find(|(name, _)| *name == token)
        .map(|(_, m)| *m)
}

fn parse_number_token(token: &str) -> Option<f64> {
    let cleaned: String = token
        .chars()
        .filter(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    if cleaned.is_empty() {
        return None;
    }
    // Reject tokens that had non-numeric junk mixed in (e.g. "12th" is fine,
    // "ab1" is not meaningful as a number).
    let digit_fraction = cleaned.chars().filter(|c| c.is_ascii_digit()).count() as f64
        / token.chars().count() as f64;
    if digit_fraction < 0.5 {
        return None;
    }
    cleaned.parse::<f64>().ok()
}

/// Parses a date expressed in one of the corpus conventions.
///
/// Recognised shapes (after normalisation):
/// * `18 de dezembro de 1950`, `dezembro de 1950` (Portuguese)
/// * `december 18 1950`, `18 december 1950`, `december 1950` (English)
/// * `ngay 18 thang 12 nam 1950`, `18 thang 12 1950` (Vietnamese)
/// * `1950 12 18` / `1950-12-18` (ISO, separators already normalised)
/// * bare four-digit years
fn parse_date(norm: &str) -> Option<CanonicalValue> {
    let tokens: Vec<&str> = norm
        .split_whitespace()
        // Portuguese "de", Vietnamese "ngày/tháng/năm" and English "of" are
        // connective words inside dates.
        .filter(|t| !matches!(*t, "de" | "of" | "ngay" | "thang" | "nam"))
        .collect();
    if tokens.is_empty() || tokens.len() > 4 {
        return None;
    }

    let mut year: Option<i32> = None;
    let mut month: Option<u32> = None;
    let mut day: Option<u32> = None;
    let mut numbers: Vec<i64> = Vec::new();

    for t in &tokens {
        if let Some(m) = lookup_month(t) {
            if month.is_some() {
                return None;
            }
            month = Some(m);
        } else if let Some(n) = parse_number_token(t) {
            if n.fract() != 0.0 {
                return None;
            }
            numbers.push(n as i64);
        } else {
            return None;
        }
    }

    // Assign numeric parts: a 4-digit number is the year; remaining numbers
    // are day and (when no month name was seen) month in day-month order,
    // which matches both the Portuguese and Vietnamese conventions.
    let mut small: Vec<i64> = Vec::new();
    for n in numbers {
        if (1000..=2200).contains(&n) && year.is_none() {
            year = Some(n as i32);
        } else if (1..=31).contains(&n) {
            small.push(n);
        } else {
            return None;
        }
    }
    match (month, small.as_slice()) {
        (Some(_), []) => {}
        (Some(_), [d]) => day = Some(*d as u32),
        (None, []) => {}
        (None, [d, m]) if *m <= 12 => {
            day = Some(*d as u32);
            month = Some(*m as u32);
        }
        // ISO-style "1950 12 18": the month precedes the day.
        (None, [m, d]) if *m <= 12 => {
            month = Some(*m as u32);
            day = Some(*d as u32);
        }
        (None, [y_or_m])
            // A single small number alongside a year is ambiguous; treat it as
            // a month if plausible.
            if *y_or_m <= 12 => {
                month = Some(*y_or_m as u32);
            }
        _ => return None,
    }

    let year = year?;
    // A bare year with no month/day still counts as a date.
    Some(CanonicalValue::Date { year, month, day })
}

/// Parses a numeric value with optional magnitude word and unit.
fn parse_number(norm: &str) -> Option<CanonicalValue> {
    let tokens: Vec<&str> = norm.split_whitespace().collect();
    if tokens.is_empty() || tokens.len() > 3 {
        return None;
    }
    let base = parse_number_token(tokens[0])?;
    let mut value = base;
    for t in &tokens[1..] {
        if let Some((_, scale)) = MAGNITUDES.iter().find(|(name, _)| name == t) {
            value *= scale;
        } else if UNITS.contains(t) {
            // Ignore the unit.
        } else {
            return None;
        }
    }
    Some(CanonicalValue::Number(value))
}

/// Interprets one value atom.
///
/// The atom is normalised first; date interpretation is attempted before
/// numeric interpretation so that `"december 18 1950"` does not degrade into
/// the number 18.
///
/// ```
/// use wiki_text::{parse_value, CanonicalValue};
/// assert_eq!(
///     parse_value("December 18, 1950").canonical_token(),
///     "date:1950-12-18"
/// );
/// assert_eq!(parse_value("10 bilhões").canonical_token(), "num:10000000000");
/// assert_eq!(
///     parse_value("Bernardo Bertolucci"),
///     CanonicalValue::Text("bernardo bertolucci".into())
/// );
/// ```
pub fn parse_value(atom: &str) -> CanonicalValue {
    let norm = normalize(atom);
    if norm.is_empty() {
        return CanonicalValue::Text(String::new());
    }
    if let Some(date) = parse_date(&norm) {
        return date;
    }
    if let Some(num) = parse_number(&norm) {
        return num;
    }
    CanonicalValue::Text(norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_dates() {
        assert_eq!(
            parse_value("December 18, 1950"),
            CanonicalValue::Date {
                year: 1950,
                month: Some(12),
                day: Some(18)
            }
        );
        assert_eq!(
            parse_value("18 December 1950").canonical_token(),
            "date:1950-12-18"
        );
        assert_eq!(parse_value("June 1975").canonical_token(), "date:1975-06");
    }

    #[test]
    fn portuguese_dates() {
        assert_eq!(
            parse_value("18 de Dezembro de 1950").canonical_token(),
            "date:1950-12-18"
        );
        assert_eq!(
            parse_value("Dezembro de 1950").canonical_token(),
            "date:1950-12"
        );
    }

    #[test]
    fn vietnamese_dates() {
        assert_eq!(
            parse_value("ngày 18 tháng 12 năm 1950").canonical_token(),
            "date:1950-12-18"
        );
        assert_eq!(
            parse_value("18 tháng 12 1950").canonical_token(),
            "date:1950-12-18"
        );
    }

    #[test]
    fn iso_dates_and_bare_years() {
        assert_eq!(
            parse_value("1950-12-18").canonical_token(),
            "date:1950-12-18"
        );
        assert_eq!(parse_value("1987").canonical_token(), "date:1987");
        assert!(parse_value("1987").is_date());
    }

    #[test]
    fn numbers_with_magnitudes_and_units() {
        assert_eq!(parse_value("160 minutes").canonical_token(), "num:160");
        assert_eq!(parse_value("165 minutos").canonical_token(), "num:165");
        assert_eq!(parse_value("10 million").canonical_token(), "num:10000000");
        assert_eq!(
            parse_value("10 bilhões").canonical_token(),
            "num:10000000000"
        );
        assert_eq!(parse_value("44.1").canonical_token(), "num:44.10");
    }

    #[test]
    fn plain_text_falls_through() {
        assert_eq!(
            parse_value("Bernardo Bertolucci"),
            CanonicalValue::Text("bernardo bertolucci".into())
        );
        assert!(!parse_value("Drama").is_number());
    }

    #[test]
    fn as_number_extracts_magnitudes() {
        assert_eq!(parse_value("1970").as_number(), Some(1970.0));
        assert_eq!(parse_value("10 million").as_number(), Some(10_000_000.0));
        assert_eq!(parse_value("Drama").as_number(), None);
    }

    #[test]
    fn date_beats_number_interpretation() {
        // "december 18 1950" contains parseable numbers but must be a date.
        assert!(parse_value("December 18 1950").is_date());
    }
}
