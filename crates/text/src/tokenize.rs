//! Tokenisation of attribute names and infobox values.
//!
//! Two granularities are used by the matching pipeline:
//!
//! * **word tokens** ([`tokenize_words`]) — used by the COMA++-style name
//!   matcher and by the bilingual dictionary lookup, which tries to translate
//!   multi-word sub-spans of a value.
//! * **value tokens** ([`tokenize_value`]) — used to build the `vsim` value
//!   vectors. A raw infobox value such as
//!   `"Bernardo Bertolucci, Itália, 18 de Dezembro 1950"` is split on value
//!   separators into the value atoms `["bernardo bertolucci", "italia",
//!   "18 de dezembro 1950"]`; each atom is then canonicalised by
//!   [`crate::value::parse_value`].

use crate::normalize::normalize;
use crate::value::parse_value;

/// Splits a string into normalised word tokens.
///
/// ```
/// use wiki_text::tokenize_words;
/// assert_eq!(tokenize_words("Elenco original"), vec!["elenco", "original"]);
/// assert_eq!(tokenize_words("đạo diễn"), vec!["dao", "dien"]);
/// ```
pub fn tokenize_words(input: &str) -> Vec<String> {
    normalize(input)
        .split_whitespace()
        .map(|s| s.to_string())
        .collect()
}

/// Characters that separate independent atoms inside one infobox value.
///
/// Wikipedia editors typically list multiple values separated by commas,
/// semicolons, line-break templates (`<br>` already stripped by the wikitext
/// parser) or bullets.
fn is_value_separator(c: char) -> bool {
    matches!(c, ',' | ';' | '•' | '·' | '\n' | '|')
}

/// Splits a raw value string into canonical value atoms.
///
/// Each atom is canonicalised via [`parse_value`] so that dates and numbers
/// written in different language conventions map to the same token, which is
/// what allows the value-vector cosine (`vsim`) to fire for e.g.
/// `"18 de Dezembro 1950"` vs `"December 18, 1950"`.
///
/// ```
/// use wiki_text::tokenize_value;
/// let pt = tokenize_value("18 de Dezembro de 1950, Itália");
/// let en = tokenize_value("December 18, 1950; Italy");
/// assert!(pt.contains(&"date:1950-12-18".to_string()));
/// assert!(en.contains(&"date:1950-12-18".to_string()));
/// ```
pub fn tokenize_value(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Split on the strong separators first; a comma may be part of an
    // English-style date ("December 18, 1950") so chunks that parse as a
    // date are kept whole and only the remaining ones are split on commas.
    for chunk in input.split([';', '•', '·', '\n', '|']) {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            continue;
        }
        let parsed = parse_value(chunk);
        if parsed.is_date() {
            out.push(parsed.canonical_token());
            continue;
        }
        for atom in chunk.split(',') {
            let atom = atom.trim();
            if atom.is_empty() {
                continue;
            }
            let token = parse_value(atom).canonical_token();
            if !token.is_empty() {
                out.push(token);
            }
        }
    }
    out
}

/// Splits a raw value into *raw* (uncanonicalised but normalised) atoms.
///
/// Used when the caller needs to keep the original surface form, e.g. when
/// looking atoms up in the bilingual title dictionary before falling back to
/// canonicalisation.
pub fn split_value_atoms(input: &str) -> Vec<String> {
    input
        .split(is_value_separator)
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(normalize)
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_normalised() {
        assert_eq!(tokenize_words("Directed By"), vec!["directed", "by"]);
        assert_eq!(tokenize_words(""), Vec::<String>::new());
    }

    #[test]
    fn value_atoms_split_on_commas_and_semicolons() {
        let atoms = split_value_atoms("Ryuichi Sakamoto, David Byrne; Cong Su");
        assert_eq!(atoms, vec!["ryuichi sakamoto", "david byrne", "cong su"]);
    }

    #[test]
    fn value_tokens_canonicalise_numbers() {
        let tokens = tokenize_value("160 minutes");
        assert_eq!(tokens, vec!["num:160"]);
        let tokens = tokenize_value("165 minutos");
        assert_eq!(tokens, vec!["num:165"]);
    }

    #[test]
    fn empty_and_whitespace_values_produce_no_tokens() {
        assert!(tokenize_value("   ").is_empty());
        assert!(tokenize_value(", ;").is_empty());
    }

    #[test]
    fn plain_text_atoms_survive() {
        let tokens = tokenize_value("Drama, Estados Unidos");
        assert_eq!(tokens, vec!["drama", "estados unidos"]);
    }
}
