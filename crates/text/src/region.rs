//! Externally-owned byte regions that mapped artifacts can borrow from.
//!
//! The snapshot layer (in `wikimatch`) can map a v4 snapshot file into
//! memory and hand its artifacts *views* into that mapping instead of heap
//! copies. This crate must not know anything about files or `mmap`; it only
//! needs a handle that (a) keeps the backing bytes alive for as long as any
//! view exists and (b) lets views report when they materialize data out of
//! the region (the "page-in" observability hook). [`ByteRegion`] is that
//! handle.
//!
//! `Vec<u8>` implements the trait so tests (and any caller without an
//! actual mapping) can back mapped-layout artifacts with plain heap bytes.

use std::fmt::Debug;

/// An immutable, externally-owned byte buffer that outlives every view into
/// it. Implementors are shared behind `Arc<dyn ByteRegion>`; dropping the
/// last `Arc` releases the backing storage (heap bytes, an `mmap`, ...).
pub trait ByteRegion: Send + Sync + Debug {
    /// The full backing byte slice. Stable for the lifetime of `self`.
    fn bytes(&self) -> &[u8];

    /// Observability hook: a view materialized `bytes` bytes out of the
    /// region into owned memory (a lazy page-in). Default: ignored.
    fn note_page_in(&self, bytes: usize) {
        let _ = bytes;
    }
}

impl ByteRegion for Vec<u8> {
    fn bytes(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn vec_backs_a_region() {
        let region: Arc<dyn ByteRegion> = Arc::new(vec![1u8, 2, 3]);
        assert_eq!(region.bytes(), &[1, 2, 3]);
        region.note_page_in(3); // default hook is a no-op
    }
}
