//! Sparse term-frequency vectors and cosine similarity.
//!
//! The paper's `vsim` and `lsim` measures are cosines between raw frequency
//! vectors (Section 3.2): value vectors are built from the value atoms
//! observed for an attribute across all infoboxes of a type, link-structure
//! vectors from the articles those values link to. [`TermVector`] is the
//! shared representation for both.
//!
//! ## Representation
//!
//! A [`TermVector`] stores an id-sorted `Vec` of **`(u32 term id, f64
//! weight)`** pairs resolved against a shared [`TermArena`]. Because arena
//! ids are assigned in lexicographic term order (the invariant documented in
//! [`crate::arena`]), id order *is* term order: every pairwise operation —
//! [`dot`](TermVector::dot), [`cosine`](TermVector::cosine),
//! [`jaccard`](TermVector::jaccard),
//! [`overlap_coefficient`](TermVector::overlap_coefficient),
//! [`merge`](TermVector::merge) — remains a single **O(n + m) merge walk**
//! visiting terms in exactly the order the previous string-keyed
//! representation did, so all derived floats accumulate in the same order
//! and come out bit-identical. When both vectors share one arena (the case
//! for every vector of a prepared schema) each merge step compares two
//! `u32`s instead of two strings — the hottest comparison of the similarity
//! pipeline becomes an integer compare, and cloning a vector no longer
//! re-allocates its terms.
//!
//! Vectors built ad hoc ([`from_terms`](TermVector::from_terms), the string
//! [`add`](TermVector::add) API) carry a private arena holding just their
//! own terms; pairwise operations between vectors of *different* arenas
//! transparently fall back to comparing the resolved terms — the exact walk
//! (and therefore the exact results) of the string-keyed representation.
//! Bulk construction should go through [`TermVectorBuilder`], which
//! accumulates unsorted and sorts once instead of paying `add`'s ordered
//! insert per term.
//!
//! ## Owned vs mapped entries
//!
//! A vector normally owns its entry list. It can instead *borrow* its id
//! and weight streams from an externally-owned [`ByteRegion`]
//! ([`TermVector::from_mapped`]) — the storage mode mapped snapshots use.
//! A mapped vector holds only two byte ranges until something actually
//! reads its entries; the first read materializes the `(id, weight)` list
//! into a once-cell (reporting the page-in through
//! [`ByteRegion::note_page_in`]) and every later read hits that cache.
//! Ids are validated strictly increasing and in-arena at construction, so
//! materialization is infallible and the result is entry-for-entry
//! bit-identical to an owned decode of the same streams.

use std::ops::Range;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize, Value};

use crate::arena::TermArena;
use crate::region::ByteRegion;

/// A sparse vector keyed by interned term id, storing raw frequencies
/// (`tf`) resolved against a shared [`TermArena`].
///
/// Entries are kept sorted by id — equivalently by term, thanks to the
/// arena's lexicographic id order — so iteration order (and therefore all
/// derived results) is deterministic and pairwise operations run as linear
/// merge walks instead of per-term lookups.
#[derive(Debug, Clone)]
pub struct TermVector {
    /// The vocabulary the ids below resolve against.
    arena: Arc<TermArena>,
    /// `(term id, weight)` entries sorted by id, one entry per distinct
    /// term — heap-owned or lazily materialized out of a byte region.
    store: EntryStore,
}

/// Backing storage of a vector's entry list.
#[derive(Debug, Clone)]
enum EntryStore {
    /// Heap-owned entries.
    Owned(Vec<(u32, f64)>),
    /// Entries borrowed from a byte region: `ids` is `len` little-endian
    /// `u32`s, `weights` is `len` little-endian `u64`s carrying `f64` bits.
    /// `cache` materializes on first read (the page-in event).
    Mapped {
        region: Arc<dyn ByteRegion>,
        ids: Range<usize>,
        weights: Range<usize>,
        len: usize,
        cache: OnceLock<Vec<(u32, f64)>>,
    },
}

impl EntryStore {
    /// Decodes the `(id, weight)` list out of a mapped store's streams.
    fn decode_mapped(
        region: &dyn ByteRegion,
        ids: &Range<usize>,
        weights: &Range<usize>,
        len: usize,
    ) -> Vec<(u32, f64)> {
        let data = region.bytes();
        (0..len)
            .map(|i| {
                let id_at = ids.start + i * 4;
                let w_at = weights.start + i * 8;
                let id =
                    u32::from_le_bytes(data[id_at..id_at + 4].try_into().expect("4-byte slice"));
                let w = f64::from_bits(u64::from_le_bytes(
                    data[w_at..w_at + 8].try_into().expect("8-byte slice"),
                ));
                (id, w)
            })
            .collect()
    }
}

impl Default for TermVector {
    fn default() -> Self {
        Self {
            arena: TermArena::empty(),
            store: EntryStore::Owned(Vec::new()),
        }
    }
}

impl PartialEq for TermVector {
    /// Term-wise equality: two vectors are equal when they hold the same
    /// `(term, weight)` entries, regardless of which arena backs them.
    fn eq(&self, other: &Self) -> bool {
        let (xs, ys) = (self.entries(), other.entries());
        if xs.len() != ys.len() {
            return false;
        }
        if Arc::ptr_eq(&self.arena, &other.arena) {
            return xs == ys;
        }
        xs.iter()
            .zip(ys)
            .all(|(a, b)| a.1 == b.1 && self.arena.resolve(a.0) == other.arena.resolve(b.0))
    }
}

impl TermVector {
    /// Creates an empty vector (backed by the shared empty arena).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vector bound to a shared arena; subsequent
    /// [`add`](Self::add)s of terms the arena knows stay on it, keeping the
    /// vector on the fast same-arena comparison path.
    pub fn in_arena(arena: Arc<TermArena>) -> Self {
        Self {
            arena,
            store: EntryStore::Owned(Vec::new()),
        }
    }

    /// The entry slice, materializing a mapped store on first touch.
    ///
    /// Every read path funnels through here, so a mapped vector pays its
    /// decode exactly once (the page-in, reported to the region) and is
    /// indistinguishable from an owned vector afterwards.
    #[inline]
    fn entries(&self) -> &[(u32, f64)] {
        match &self.store {
            EntryStore::Owned(entries) => entries,
            EntryStore::Mapped {
                region,
                ids,
                weights,
                len,
                cache,
            } => cache.get_or_init(|| {
                region.note_page_in(ids.len() + weights.len());
                EntryStore::decode_mapped(region.as_ref(), ids, weights, *len)
            }),
        }
    }

    /// The entry list for mutation; a mapped store converts to owned first
    /// (mutation can never touch the region).
    fn entries_mut(&mut self) -> &mut Vec<(u32, f64)> {
        if let EntryStore::Mapped { .. } = self.store {
            let owned = self.entries().to_vec();
            self.store = EntryStore::Owned(owned);
        }
        match &mut self.store {
            EntryStore::Owned(entries) => entries,
            EntryStore::Mapped { .. } => unreachable!("mapped store converted above"),
        }
    }

    /// Rebuilds a vector whose entry streams live in `region`: `ids` is the
    /// byte range of `len` little-endian `u32` term ids, `weights` the byte
    /// range of `len` little-endian `u64`s carrying the raw `f64` weight
    /// bits. Returns `None` unless the ranges are in bounds and exactly
    /// sized and the ids are strictly increasing within `arena` — the same
    /// invariant [`from_ids`](Self::from_ids) checks, validated here once
    /// so the lazy materialization is infallible. No entry is decoded until
    /// the first read.
    pub fn from_mapped(
        arena: Arc<TermArena>,
        region: Arc<dyn ByteRegion>,
        ids: Range<usize>,
        weights: Range<usize>,
        len: usize,
    ) -> Option<Self> {
        let data = region.bytes();
        if ids.start > ids.end || ids.end > data.len() {
            return None;
        }
        if weights.start > weights.end || weights.end > data.len() {
            return None;
        }
        if ids.len() != len.checked_mul(4)? || weights.len() != len.checked_mul(8)? {
            return None;
        }
        let id_at = |i: usize| -> u32 {
            let at = ids.start + i * 4;
            u32::from_le_bytes(data[at..at + 4].try_into().expect("4-byte slice"))
        };
        let mut prev: Option<u32> = None;
        for i in 0..len {
            let id = id_at(i);
            if prev.is_some_and(|p| p >= id) || id as usize >= arena.len() {
                return None;
            }
            prev = Some(id);
        }
        Some(Self {
            arena,
            store: EntryStore::Mapped {
                region,
                ids,
                weights,
                len,
                cache: OnceLock::new(),
            },
        })
    }

    /// True when the entry list is heap-resident: always for an owned
    /// vector, and for a mapped vector once something read it. The
    /// out-of-core accounting uses this to split resident from
    /// merely-mapped bytes.
    pub fn is_materialized(&self) -> bool {
        match &self.store {
            EntryStore::Owned(_) => true,
            EntryStore::Mapped { cache, .. } => cache.get().is_some(),
        }
    }

    /// Builds a vector from an iterator of terms, counting occurrences.
    ///
    /// Sorts the terms once and accumulates runs — O(k log k) for k terms,
    /// instead of k ordered insertions. The resulting vector carries a
    /// private arena holding exactly its own terms.
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut builder = TermVectorBuilder::new();
        for term in terms {
            builder.push(term, 1.0);
        }
        builder.finish()
    }

    /// Builds a vector from interned term-id occurrences (each weighing
    /// exactly 1.0): sort once, then collapse runs by accumulating `+= 1.0`
    /// per occurrence — the id-space analogue of
    /// [`from_terms`](Self::from_terms), and the exact float operations (in
    /// the exact term order) of a string-keyed incremental `add` loop. This
    /// is the bulk-construction path schema builders use after freezing a
    /// shared arena.
    pub fn from_id_occurrences(arena: Arc<TermArena>, mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        debug_assert!(ids
            .last()
            .map(|&id| (id as usize) < arena.len())
            .unwrap_or(true));
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for id in ids {
            match entries.last_mut() {
                Some((last, weight)) if *last == id => *weight += 1.0,
                _ => entries.push((id, 1.0)),
            }
        }
        Self {
            arena,
            store: EntryStore::Owned(entries),
        }
    }

    /// Rebuilds a vector from `(term, weight)` entries that are **already
    /// strictly sorted** by term (no duplicates), e.g. the output of
    /// [`iter`](Self::iter) captured by a persistence layer. Returns `None`
    /// when the entries are out of order or contain a duplicate term — the
    /// invariant every pairwise operation depends on.
    ///
    /// Weights are taken verbatim (no zero-filtering), so a round trip
    /// through `iter` → `from_sorted_entries` reproduces the vector exactly,
    /// bit for bit.
    pub fn from_sorted_entries(entries: Vec<(String, f64)>) -> Option<Self> {
        let mut arena_terms = Vec::with_capacity(entries.len());
        let mut ids = Vec::with_capacity(entries.len());
        for (i, (term, weight)) in entries.into_iter().enumerate() {
            ids.push((i as u32, weight));
            arena_terms.push(term);
        }
        let arena = TermArena::from_sorted_terms(arena_terms)?;
        Some(Self {
            arena: Arc::new(arena),
            store: EntryStore::Owned(ids),
        })
    }

    /// Rebuilds a vector from id-keyed entries resolved against `arena`.
    /// Returns `None` unless the ids are strictly increasing (the sorted,
    /// duplicate-free invariant) and all within the arena — the validation
    /// the snapshot layer relies on when decoding persisted id streams.
    pub fn from_ids(arena: Arc<TermArena>, entries: Vec<(u32, f64)>) -> Option<Self> {
        if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
            return None;
        }
        if entries
            .last()
            .is_some_and(|(id, _)| *id as usize >= arena.len())
        {
            return None;
        }
        Some(Self {
            arena,
            store: EntryStore::Owned(entries),
        })
    }

    /// The arena this vector's ids resolve against.
    pub fn arena(&self) -> &Arc<TermArena> {
        &self.arena
    }

    /// Migrates the vector onto an extended arena through the **monotone**
    /// old → new id remap produced by [`TermArena::extended_with`] on this
    /// vector's arena: every entry id is mapped, weights are taken verbatim
    /// (bit for bit), and because the remap is strictly increasing the
    /// entries stay sorted without re-sorting — so the migrated vector
    /// produces exactly the same merge walks and float accumulations as the
    /// original.
    pub fn remapped(&self, arena: Arc<TermArena>, remap: &[u32]) -> TermVector {
        let entries: Vec<(u32, f64)> = self
            .entries()
            .iter()
            .map(|&(id, w)| (remap[id as usize], w))
            .collect();
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries
            .last()
            .map(|&(id, _)| (id as usize) < arena.len())
            .unwrap_or(true));
        Self {
            arena,
            store: EntryStore::Owned(entries),
        }
    }

    /// The raw `(term id, weight)` entries in ascending id order
    /// (materializing a mapped vector on first call).
    pub fn id_entries(&self) -> &[(u32, f64)] {
        self.entries()
    }

    /// Adds `weight` occurrences of `term`.
    ///
    /// When the term is already in the vector's arena this is a binary
    /// search plus (at worst) an ordered insert, exactly as before. A term
    /// the arena has never seen extends the arena copy-on-write — O(arena)
    /// when it happens; bulk callers should use [`TermVectorBuilder`] or
    /// [`from_terms`](Self::from_terms) instead of repeated `add`s.
    pub fn add<S: Into<String>>(&mut self, term: S, weight: f64) {
        if weight == 0.0 {
            return;
        }
        let term = term.into();
        if let Some(id) = self.arena.intern(&term) {
            let entries = self.entries_mut();
            match entries.binary_search_by_key(&id, |(i, _)| *i) {
                Ok(i) => entries[i].1 += weight,
                Err(i) => entries.insert(i, (id, weight)),
            }
            return;
        }
        // New term: extend the arena (cloning it first when shared) and
        // shift the ids at or after the insertion point.
        let arena = Arc::make_mut(&mut self.arena);
        let (id, inserted) = arena.insert(term);
        debug_assert!(inserted, "intern() above said the term was absent");
        let entries = self.entries_mut();
        for (entry_id, _) in entries.iter_mut() {
            if *entry_id >= id {
                *entry_id += 1;
            }
        }
        let at = entries.binary_search_by_key(&id, |(i, _)| *i).unwrap_err();
        entries.insert(at, (id, weight));
    }

    /// Merges another vector into this one (component-wise sum), as an
    /// O(n + m) merge walk over the two sorted entry lists.
    pub fn merge(&mut self, other: &TermVector) {
        if other.is_empty() {
            return;
        }
        if Arc::ptr_eq(&self.arena, &other.arena) {
            let mut merged = Vec::with_capacity(self.len() + other.len());
            merge_join(self, other, |step| match step {
                MergeStep::Left(a) => merged.push(*a),
                // A zero-weight entry never creates a new term (matching the
                // `add` semantics this walk replaces).
                MergeStep::Right(b) => {
                    if b.1 != 0.0 {
                        merged.push(*b);
                    }
                }
                MergeStep::Both((ia, wa), (_, wb)) => {
                    let sum = if *wb == 0.0 { *wa } else { *wa + *wb };
                    merged.push((*ia, sum));
                }
            });
            self.store = EntryStore::Owned(merged);
            return;
        }
        // Different arenas: walk the resolved terms (same order, same float
        // operations) and rebuild on a fresh union arena.
        let mut merged: Vec<(String, f64)> = Vec::with_capacity(self.len() + other.len());
        merge_join(self, other, |step| match step {
            MergeStep::Left((id, w)) => merged.push((self.arena.resolve(*id).to_string(), *w)),
            MergeStep::Right((id, w)) => {
                if *w != 0.0 {
                    merged.push((other.arena.resolve(*id).to_string(), *w));
                }
            }
            MergeStep::Both((ia, wa), (_, wb)) => {
                let sum = if *wb == 0.0 { *wa } else { *wa + *wb };
                merged.push((self.arena.resolve(*ia).to_string(), sum));
            }
        });
        *self = Self::from_sorted_entries(merged)
            .expect("merge walk emits terms in strictly ascending order");
    }

    /// Frequency of a term (0.0 when absent).
    pub fn get(&self, term: &str) -> f64 {
        self.arena
            .intern(term)
            .and_then(|id| {
                let entries = self.entries();
                entries
                    .binary_search_by_key(&id, |(i, _)| *i)
                    .ok()
                    .map(|i| entries[i].1)
            })
            .unwrap_or(0.0)
    }

    /// Number of distinct terms (without materializing a mapped store —
    /// the length is part of the layout).
    pub fn len(&self) -> usize {
        match &self.store {
            EntryStore::Owned(entries) => entries.len(),
            EntryStore::Mapped { len, .. } => *len,
        }
    }

    /// True when the vector has no terms.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all frequencies.
    pub fn total(&self) -> f64 {
        self.entries().iter().map(|(_, w)| w).sum()
    }

    /// Iterates over `(term, frequency)` pairs in term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries()
            .iter()
            .map(|(id, w)| (self.arena.resolve(*id), *w))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.entries()
            .iter()
            .map(|(_, w)| w * w)
            .sum::<f64>()
            .sqrt()
    }

    /// Dot product with another vector, computed as an O(n + m) merge walk
    /// over the two sorted entry lists.
    ///
    /// Same-arena vectors take the chunked u32-id kernel
    /// (`dot_id_entries`), which skips disjoint 8-id blocks with one
    /// comparison instead of stepping entry by entry; cross-arena vectors
    /// fall back to the resolved-string merge. Both accumulate matching
    /// products in ascending shared-term order, so the results are
    /// bit-identical to each other and to the pre-kernel implementation.
    pub fn dot(&self, other: &TermVector) -> f64 {
        if Arc::ptr_eq(&self.arena, &other.arena) {
            return dot_id_entries(self.entries(), other.entries());
        }
        let mut sum = 0.0;
        merge_join(self, other, |step| {
            if let MergeStep::Both((_, wa), (_, wb)) = step {
                sum += wa * wb;
            }
        });
        sum
    }

    /// Cosine similarity with another vector; 0.0 when either is empty.
    ///
    /// ```
    /// use wiki_text::TermVector;
    /// let a = TermVector::from_terms(["ireland", "1963", "united states"]);
    /// let b = TermVector::from_terms(["ireland", "1963", "france"]);
    /// let c = a.cosine(&b);
    /// assert!(c > 0.6 && c < 0.7);
    /// ```
    pub fn cosine(&self, other: &TermVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(0.0, 1.0)
    }

    /// Calls `f` once per distinct term of the union of the two vectors'
    /// term sets, in ascending term order (an O(n + m) merge walk).
    ///
    /// This is the term-set primitive inverted-index builders need (e.g.
    /// the candidate index in `wikimatch`): it lives here, next to the
    /// sorted-entries invariant it depends on, so out-of-crate callers
    /// never hand-roll their own walk over the representation.
    pub fn union_terms<'a>(&'a self, other: &'a TermVector, mut f: impl FnMut(&'a str)) {
        merge_join(self, other, |step| match step {
            MergeStep::Left((id, _)) | MergeStep::Both((id, _), _) => f(self.arena.resolve(*id)),
            MergeStep::Right((id, _)) => f(other.arena.resolve(*id)),
        });
    }

    /// Calls `f` once per distinct term **id** of the union of the two
    /// vectors' term sets, in ascending id order. Both vectors must share
    /// one arena — this is the all-integer variant of
    /// [`union_terms`](Self::union_terms) that the candidate index uses to
    /// key its postings by id instead of by string.
    ///
    /// # Panics
    /// Panics when the vectors are backed by different arenas (their ids
    /// would not be comparable).
    pub fn union_ids(&self, other: &TermVector, mut f: impl FnMut(u32)) {
        assert!(
            Arc::ptr_eq(&self.arena, &other.arena),
            "union_ids requires both vectors on one arena"
        );
        merge_join(self, other, |step| match step {
            MergeStep::Left((id, _)) | MergeStep::Right((id, _)) | MergeStep::Both((id, _), _) => {
                f(*id)
            }
        });
    }

    /// Number of terms present in both vectors (an O(n + m) merge walk).
    fn intersection_size(&self, other: &TermVector) -> usize {
        let mut count = 0;
        merge_join(self, other, |step| {
            if let MergeStep::Both(..) = step {
                count += 1;
            }
        });
        count
    }

    /// Jaccard overlap of the term *sets* (ignores frequencies).
    pub fn jaccard(&self, other: &TermVector) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let intersection = self.intersection_size(other) as f64;
        let union = (self.len() + other.len()) as f64 - intersection;
        if union == 0.0 {
            0.0
        } else {
            intersection / union
        }
    }

    /// Overlap (Szymkiewicz–Simpson) coefficient of the term sets:
    /// `|A ∩ B| / min(|A|, |B|)`. Unlike Jaccard it is not penalised when
    /// one attribute is much more frequent than the other, which is the
    /// right behaviour for per-infobox value-equality matching.
    pub fn overlap_coefficient(&self, other: &TermVector) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let intersection = self.intersection_size(other) as f64;
        intersection / self.len().min(other.len()) as f64
    }

    /// Applies a term-rewriting function, merging rewritten terms.
    ///
    /// Used to translate a value vector through the bilingual dictionary
    /// before computing `vsim`: terms found in the dictionary are replaced by
    /// their translation, others are kept as-is. Rewritten terms that
    /// collide accumulate in source-term order, exactly as the previous
    /// incremental-`add` implementation did.
    pub fn map_terms<F>(&self, mut f: F) -> TermVector
    where
        F: FnMut(&str) -> Option<String>,
    {
        let mut builder = TermVectorBuilder::with_capacity(self.len());
        for (id, w) in self.entries() {
            let term = self.arena.resolve(*id);
            match f(term) {
                Some(new_term) => builder.push(new_term, *w),
                None => builder.push(term, *w),
            }
        }
        builder.finish()
    }

    /// Returns the `k` most frequent terms (ties broken by term order).
    pub fn top_terms(&self, k: usize) -> Vec<(&str, f64)> {
        let mut entries: Vec<(u32, f64)> = self.entries().to_vec();
        // `total_cmp` (not `partial_cmp`) so the ranking is a total order
        // even for pathological weights, with the term as a stable
        // tie-break — id order is term order within one arena.
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
            .into_iter()
            .map(|(id, w)| (self.arena.resolve(id), w))
            .collect()
    }
}

/// Accumulates `(term, weight)` pairs in any order and sorts **once** on
/// [`finish`](Self::finish) — the bulk-construction companion to
/// [`TermVector::add`], which pays a binary search plus an ordered insert
/// (O(n) worst case) per call.
///
/// `finish` reproduces the incremental-`add` semantics bit for bit:
/// zero weights never create an entry, and weights of colliding terms
/// accumulate in push order (the sort is stable).
#[derive(Debug, Default)]
pub struct TermVectorBuilder {
    entries: Vec<(String, f64)>,
}

impl TermVectorBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with room for `capacity` pushes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Records `weight` occurrences of `term` (zero weights are dropped,
    /// matching [`TermVector::add`]).
    pub fn push(&mut self, term: impl Into<String>, weight: f64) {
        if weight == 0.0 {
            return;
        }
        self.entries.push((term.into(), weight));
    }

    /// Number of recorded pushes (not distinct terms).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts, deduplicates and freezes the accumulated entries into a
    /// vector.
    pub fn finish(mut self) -> TermVector {
        // Stable sort: weights of equal terms accumulate in push order, the
        // same order an incremental `add` loop would have applied them.
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut arena_terms: Vec<String> = Vec::new();
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for (term, weight) in self.entries {
            match (arena_terms.last(), entries.last_mut()) {
                (Some(t), Some((_, w))) if *t == term => *w += weight,
                _ => {
                    entries.push((arena_terms.len() as u32, weight));
                    arena_terms.push(term);
                }
            }
        }
        let arena = TermArena::from_sorted_terms(arena_terms)
            .expect("sorted deduplicated terms satisfy the arena invariant");
        TermVector {
            arena: Arc::new(arena),
            store: EntryStore::Owned(entries),
        }
    }
}

/// One step of a [`merge_join`] walk over two id-sorted entry lists.
enum MergeStep<'a> {
    /// The entry's term occurs only in the left vector.
    Left(&'a (u32, f64)),
    /// The entry's term occurs only in the right vector.
    Right(&'a (u32, f64)),
    /// The term occurs in both vectors; both entries are handed over.
    Both(&'a (u32, f64), &'a (u32, f64)),
}

/// Two-pointer merge join over two term vectors, calling `f` once per
/// distinct term in ascending term order.
///
/// When the vectors share one arena each step compares two `u32` ids — the
/// fast path every prepared-schema operation takes. Otherwise the resolved
/// terms are compared, which visits entries in exactly the same order (id
/// order is term order within each arena), so both paths produce identical
/// results. Every pairwise [`TermVector`] operation (`dot`, `merge`,
/// `union_terms`, the intersection behind `jaccard`/`overlap_coefficient`)
/// instantiates this single walk, so the sorted-entries invariant has
/// exactly one consumer to update if the representation ever changes.
fn merge_join<'a>(a: &'a TermVector, b: &'a TermVector, mut f: impl FnMut(MergeStep<'a>)) {
    let (xs, ys) = (a.entries(), b.entries());
    let (mut i, mut j) = (0, 0);
    if Arc::ptr_eq(&a.arena, &b.arena) {
        while i < xs.len() && j < ys.len() {
            match xs[i].0.cmp(&ys[j].0) {
                std::cmp::Ordering::Less => {
                    f(MergeStep::Left(&xs[i]));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    f(MergeStep::Right(&ys[j]));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    f(MergeStep::Both(&xs[i], &ys[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
    } else {
        while i < xs.len() && j < ys.len() {
            match a.arena.resolve(xs[i].0).cmp(b.arena.resolve(ys[j].0)) {
                std::cmp::Ordering::Less => {
                    f(MergeStep::Left(&xs[i]));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    f(MergeStep::Right(&ys[j]));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    f(MergeStep::Both(&xs[i], &ys[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    for entry in &xs[i..] {
        f(MergeStep::Left(entry));
    }
    for entry in &ys[j..] {
        f(MergeStep::Right(entry));
    }
}

/// How many ids the chunked dot kernel skips per block comparison. Eight
/// `(u32, f64)` entries span two cache lines — big enough that one
/// comparison replaces eight per-entry steps through a disjoint region,
/// small enough that the trailing per-entry walk stays short.
const DOT_CHUNK: usize = 8;

/// Chunked u32-id dot-product kernel over two id-sorted entry slices of
/// **one** arena.
///
/// A plain two-pointer merge spends one branch per entry even when the
/// vectors barely overlap — the common case for similarity tables, where
/// most compared attributes share a handful of terms out of hundreds.
/// This walk first checks whole [`DOT_CHUNK`]-id blocks: if the last id of
/// the current block on one side is still below the other side's current
/// id, the whole block provably contains no match and is skipped with a
/// single comparison. Matching products accumulate in ascending id order —
/// the exact float-addition order of the entry-by-entry merge — so the
/// result is bit-identical to [`merge_join`]'s `Both` sum.
fn dot_id_entries(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    let mut sum = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if i + DOT_CHUNK <= a.len() && a[i + DOT_CHUNK - 1].0 < b[j].0 {
            i += DOT_CHUNK;
            continue;
        }
        if j + DOT_CHUNK <= b.len() && b[j + DOT_CHUNK - 1].0 < a[i].0 {
            j += DOT_CHUNK;
            continue;
        }
        let (ia, wa) = a[i];
        let (ib, wb) = b[j];
        match ia.cmp(&ib) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += wa * wb;
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

impl<S: Into<String>> FromIterator<S> for TermVector {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        TermVector::from_terms(iter)
    }
}

impl Serialize for TermVector {
    /// Serializes as `{"entries": [[term, weight], ...]}` — the shape the
    /// previous string-keyed derive produced, so persisted values remain
    /// readable.
    fn serialize_value(&self) -> Value {
        let entries: Vec<Value> = self
            .iter()
            .map(|(t, w)| Value::Array(vec![Value::Str(t.to_string()), Value::Float(w)]))
            .collect();
        Value::Object(vec![("entries".to_string(), Value::Array(entries))])
    }
}

impl Deserialize for TermVector {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        let entries = value
            .get_field("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| serde::Error::custom("TermVector: missing entries array"))?;
        let mut decoded = Vec::with_capacity(entries.len());
        for entry in entries {
            let pair = entry
                .as_array()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| serde::Error::custom("TermVector: entry is not a [term, weight]"))?;
            let term = pair[0]
                .as_str()
                .ok_or_else(|| serde::Error::custom("TermVector: term is not a string"))?;
            let weight = f64::deserialize_value(&pair[1])?;
            decoded.push((term.to_string(), weight));
        }
        TermVector::from_sorted_entries(decoded)
            .ok_or_else(|| serde::Error::custom("TermVector: entries out of term order"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let v = TermVector::from_terms(["a", "b", "a", "a"]);
        assert_eq!(v.get("a"), 3.0);
        assert_eq!(v.get("b"), 1.0);
        assert_eq!(v.get("c"), 0.0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.total(), 4.0);
    }

    #[test]
    fn entries_stay_sorted_under_mixed_insertions() {
        let mut v = TermVector::new();
        for t in ["zebra", "apple", "mango", "apple", "banana", "zebra"] {
            v.add(t, 1.0);
        }
        let terms: Vec<&str> = v.iter().map(|(t, _)| t).collect();
        assert_eq!(terms, vec!["apple", "banana", "mango", "zebra"]);
        assert_eq!(v.get("apple"), 2.0);
        assert_eq!(v.get("zebra"), 2.0);
        // Ids are strictly increasing (the arena invariant).
        assert!(v.id_entries().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn add_into_a_shared_arena_copies_on_write() {
        let a = TermVector::from_terms(["apple", "mango"]);
        let mut b = a.clone();
        // Same arena after the cheap clone.
        assert!(Arc::ptr_eq(a.arena(), b.arena()));
        b.add("banana", 1.0);
        // The clone grew its own arena; the original is untouched.
        assert!(!Arc::ptr_eq(a.arena(), b.arena()));
        assert_eq!(a.get("banana"), 0.0);
        assert_eq!(b.get("banana"), 1.0);
        assert_eq!(b.get("mango"), 1.0);
        let terms: Vec<&str> = b.iter().map(|(t, _)| t).collect();
        assert_eq!(terms, vec!["apple", "banana", "mango"]);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = TermVector::from_terms(["x", "y", "z", "x"]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let a = TermVector::from_terms(["a", "b"]);
        let b = TermVector::from_terms(["c", "d"]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_with_empty_vector_is_zero() {
        let a = TermVector::from_terms(["a"]);
        let b = TermVector::new();
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(b.cosine(&b), 0.0);
    }

    #[test]
    fn dot_matches_lookup_based_reference() {
        let a = TermVector::from_terms(["a", "b", "b", "d", "e"]);
        let b = TermVector::from_terms(["b", "c", "d", "d", "f"]);
        // Reference: per-term lookups, the pre-merge-walk implementation.
        let reference: f64 = a.iter().map(|(t, w)| w * b.get(t)).sum();
        assert_eq!(a.dot(&b), reference);
        assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn chunked_dot_kernel_is_bit_identical_to_the_entry_merge() {
        // Long, mostly disjoint vectors with scattered matches, plus
        // skewed lengths — every chunk-skip branch fires, and short tails
        // (< DOT_CHUNK) exercise the per-entry fallback.
        let long: Vec<String> = (0..200).map(|i| format!("t{:04}", i * 3)).collect();
        let sparse: Vec<String> = (0..40).map(|i| format!("t{:04}", i * 17)).collect();
        // One arena over the union, so `add` never copy-on-writes a vector
        // onto a private arena mid-fixture.
        let anchor = TermVector::from_terms(long.iter().chain(sparse.iter()).map(String::as_str));
        for (xs, ys) in [(&long, &sparse), (&sparse, &long), (&long, &long)] {
            let mut a = TermVector::in_arena(Arc::clone(anchor.arena()));
            for (k, t) in xs.iter().enumerate() {
                a.add(t, 1.0 + k as f64 * 0.5);
            }
            let mut b = TermVector::in_arena(Arc::clone(anchor.arena()));
            for (k, t) in ys.iter().enumerate() {
                b.add(t, 1.0 + k as f64 * 0.25);
            }
            assert!(Arc::ptr_eq(a.arena(), b.arena()));
            // Reference: the merge-walk sum in the same ascending order.
            let mut reference = 0.0;
            merge_join(&a, &b, |step| {
                if let MergeStep::Both((_, wa), (_, wb)) = step {
                    reference += wa * wb;
                }
            });
            assert!(reference > 0.0, "fixture must actually intersect");
            assert_eq!(a.dot(&b).to_bits(), reference.to_bits());
            assert_eq!(b.dot(&a).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn cross_arena_operations_match_shared_arena_results() {
        // The same logical vectors once on a shared arena, once on private
        // per-vector arenas: every pairwise operation must agree bit for
        // bit.
        let shared_a = TermVector::from_terms(["a", "b", "b", "d"]);
        let shared_b_on_a: TermVector = {
            // Rebuild b's terms *inside* a's arena via add (all terms of b
            // that a knows stay on a's arena when possible).
            let mut v = TermVector::in_arena(Arc::clone(shared_a.arena()));
            v.add("b", 1.0);
            v.add("d", 2.0);
            v
        };
        let private_b = {
            let mut v = TermVector::new();
            v.add("b", 1.0);
            v.add("d", 2.0);
            v
        };
        assert!(Arc::ptr_eq(shared_a.arena(), shared_b_on_a.arena()));
        assert!(!Arc::ptr_eq(shared_a.arena(), private_b.arena()));
        assert_eq!(shared_b_on_a, private_b);
        assert_eq!(
            shared_a.dot(&shared_b_on_a).to_bits(),
            shared_a.dot(&private_b).to_bits()
        );
        assert_eq!(
            shared_a.cosine(&shared_b_on_a).to_bits(),
            shared_a.cosine(&private_b).to_bits()
        );
        assert_eq!(
            shared_a.jaccard(&shared_b_on_a),
            shared_a.jaccard(&private_b)
        );
    }

    #[test]
    fn paper_example_one_translation_raises_similarity() {
        // Example 1 of the paper: nascimento vs born after dictionary
        // translation should have cosine ≈ 0.71-0.75.
        let mut va_t = TermVector::new();
        va_t.add("1963", 1.0);
        va_t.add("ireland", 1.0);
        va_t.add("december 18 1950", 1.0);
        va_t.add("united states", 1.0);
        let mut vb = TermVector::new();
        vb.add("1963", 1.0);
        vb.add("ireland", 1.0);
        vb.add("june 4 1975", 1.0);
        vb.add("united states", 2.0);
        let sim = va_t.cosine(&vb);
        assert!(sim > 0.65 && sim < 0.80, "sim = {sim}");
    }

    #[test]
    fn merge_and_map_terms() {
        let mut a = TermVector::from_terms(["estados unidos", "irlanda"]);
        let b = TermVector::from_terms(["estados unidos"]);
        a.merge(&b);
        assert_eq!(a.get("estados unidos"), 2.0);

        let translated = a.map_terms(|t| match t {
            "estados unidos" => Some("united states".to_string()),
            "irlanda" => Some("ireland".to_string()),
            _ => None,
        });
        assert_eq!(translated.get("united states"), 2.0);
        assert_eq!(translated.get("ireland"), 1.0);
        assert_eq!(translated.get("estados unidos"), 0.0);
    }

    #[test]
    fn merge_within_one_arena_stays_on_it() {
        let a = TermVector::from_terms(["a", "b", "c"]);
        let mut x = a.clone();
        let y = {
            let mut v = TermVector::in_arena(Arc::clone(a.arena()));
            v.add("b", 2.0);
            v
        };
        x.merge(&y);
        assert!(Arc::ptr_eq(x.arena(), a.arena()));
        assert_eq!(x.get("b"), 3.0);
    }

    #[test]
    fn union_terms_visits_each_distinct_term_once_in_order() {
        let a = TermVector::from_terms(["b", "d", "a"]);
        let b = TermVector::from_terms(["c", "b", "e"]);
        let mut seen = Vec::new();
        a.union_terms(&b, |t| seen.push(t.to_string()));
        assert_eq!(seen, vec!["a", "b", "c", "d", "e"]);
        let mut left_only = Vec::new();
        a.union_terms(&TermVector::new(), |t| left_only.push(t.to_string()));
        assert_eq!(left_only, vec!["a", "b", "d"]);
    }

    #[test]
    fn union_ids_matches_union_terms_on_a_shared_arena() {
        let a = TermVector::from_terms(["b", "d", "a"]);
        let b = {
            let mut v = TermVector::in_arena(Arc::clone(a.arena()));
            v.add("b", 1.0);
            v.add("d", 3.0);
            v
        };
        let mut by_term = Vec::new();
        a.union_terms(&b, |t| by_term.push(t.to_string()));
        let mut by_id = Vec::new();
        a.union_ids(&b, |id| by_id.push(a.arena().resolve(id).to_string()));
        assert_eq!(by_term, by_id);
    }

    #[test]
    #[should_panic(expected = "union_ids requires both vectors on one arena")]
    fn union_ids_rejects_mixed_arenas() {
        let a = TermVector::from_terms(["a"]);
        let b = TermVector::from_terms(["a"]);
        a.union_ids(&b, |_| {});
    }

    #[test]
    fn remapped_vectors_are_bit_identical_on_the_extended_arena() {
        let a = TermVector::from_terms(["banana", "mango", "banana", "zebra"]);
        let b = {
            let mut v = TermVector::in_arena(Arc::clone(a.arena()));
            v.add("mango", 2.0);
            v.add("zebra", 1.0);
            v
        };
        let (extended, remap) = a.arena().extended_with(["apple", "papaya"]);
        let a2 = a.remapped(Arc::clone(&extended), &remap);
        let b2 = b.remapped(Arc::clone(&extended), &remap);
        assert!(Arc::ptr_eq(a2.arena(), &extended));
        assert_eq!(a2, a);
        assert_eq!(a2.get("banana"), 2.0);
        assert_eq!(a2.dot(&b2).to_bits(), a.dot(&b).to_bits());
        assert_eq!(a2.cosine(&b2).to_bits(), a.cosine(&b).to_bits());
        // Fresh entries interned directly in the extended arena interoperate.
        let c = TermVector::from_id_occurrences(
            Arc::clone(&extended),
            vec![
                extended.intern("apple").unwrap(),
                extended.intern("banana").unwrap(),
            ],
        );
        assert_eq!(a2.dot(&c), 2.0);
    }

    #[test]
    fn jaccard_behaviour() {
        let a = TermVector::from_terms(["a", "b", "c"]);
        let b = TermVector::from_terms(["b", "c", "d"]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(TermVector::new().jaccard(&TermVector::new()), 0.0);
    }

    #[test]
    fn overlap_coefficient_behaviour() {
        let small = TermVector::from_terms(["a", "b"]);
        let large = TermVector::from_terms(["a", "b", "c", "d", "e", "f"]);
        // The small vector is fully contained in the large one.
        assert!((small.overlap_coefficient(&large) - 1.0).abs() < 1e-12);
        assert!((large.overlap_coefficient(&small) - 1.0).abs() < 1e-12);
        assert!(small.overlap_coefficient(&large) > small.jaccard(&large));
        assert_eq!(small.overlap_coefficient(&TermVector::new()), 0.0);
    }

    #[test]
    fn from_sorted_entries_round_trips_and_validates() {
        let v = TermVector::from_terms(["b", "a", "a", "c"]);
        let entries: Vec<(String, f64)> = v.iter().map(|(t, w)| (t.to_string(), w)).collect();
        let rebuilt = TermVector::from_sorted_entries(entries).expect("iter output is sorted");
        assert_eq!(rebuilt, v);
        // Out-of-order and duplicate entries are rejected.
        assert!(TermVector::from_sorted_entries(vec![
            ("b".to_string(), 1.0),
            ("a".to_string(), 1.0)
        ])
        .is_none());
        assert!(TermVector::from_sorted_entries(vec![
            ("a".to_string(), 1.0),
            ("a".to_string(), 2.0)
        ])
        .is_none());
        assert!(TermVector::from_sorted_entries(Vec::new()).is_some());
    }

    #[test]
    fn from_ids_validates_order_and_range() {
        let arena = TermVector::from_terms(["a", "b", "c"]).arena().clone();
        assert!(TermVector::from_ids(Arc::clone(&arena), vec![(0, 1.0), (2, 2.0)]).is_some());
        assert!(TermVector::from_ids(Arc::clone(&arena), vec![(2, 1.0), (0, 2.0)]).is_none());
        assert!(TermVector::from_ids(Arc::clone(&arena), vec![(1, 1.0), (1, 2.0)]).is_none());
        assert!(TermVector::from_ids(Arc::clone(&arena), vec![(3, 1.0)]).is_none());
        assert!(TermVector::from_ids(arena, Vec::new()).is_some());
    }

    #[test]
    fn builder_matches_incremental_add_bit_for_bit() {
        let pushes = [
            ("zebra", 1.5),
            ("apple", 2.0),
            ("zebra", 0.25),
            ("mango", 0.0), // dropped, like add
            ("apple", -1.0),
            ("banana", 3.0),
        ];
        let mut incremental = TermVector::new();
        let mut builder = TermVectorBuilder::new();
        for (t, w) in pushes {
            incremental.add(t, w);
            builder.push(t, w);
        }
        let built = builder.finish();
        assert_eq!(built, incremental);
        for ((ta, wa), (tb, wb)) in built.iter().zip(incremental.iter()) {
            assert_eq!(ta, tb);
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
    }

    #[test]
    fn serde_round_trip_keeps_entries() {
        let v = TermVector::from_terms(["b", "a", "a"]);
        let value = v.serialize_value();
        let back = TermVector::deserialize_value(&value).unwrap();
        assert_eq!(back, v);
    }

    /// Serializes a vector's entries into the mapped layout (`len` LE u32
    /// ids, then `len` LE u64 weight bits), returning the two ranges.
    fn mapped_entry_layout(entries: &[(u32, f64)]) -> (Vec<u8>, Range<usize>, Range<usize>) {
        let mut buf = Vec::new();
        for (id, _) in entries {
            buf.extend_from_slice(&id.to_le_bytes());
        }
        let ids = 0..buf.len();
        let start = buf.len();
        for (_, w) in entries {
            buf.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        (buf.clone(), ids, start..buf.len())
    }

    /// A region that counts page-in notifications, standing in for the
    /// mmap-backed region of the snapshot layer.
    #[derive(Debug, Default)]
    struct CountingRegion {
        data: Vec<u8>,
        page_ins: std::sync::atomic::AtomicUsize,
        paged_bytes: std::sync::atomic::AtomicUsize,
    }

    impl ByteRegion for CountingRegion {
        fn bytes(&self) -> &[u8] {
            &self.data
        }
        fn note_page_in(&self, bytes: usize) {
            use std::sync::atomic::Ordering;
            self.page_ins.fetch_add(1, Ordering::Relaxed);
            self.paged_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    #[test]
    fn mapped_vector_materializes_lazily_and_matches_owned_bit_for_bit() {
        use std::sync::atomic::Ordering;
        let owned = TermVector::from_terms(["apple", "mango", "mango", "zebra"]);
        let entries: Vec<(u32, f64)> = owned.id_entries().to_vec();
        let (buf, ids, weights) = mapped_entry_layout(&entries);
        let region = Arc::new(CountingRegion {
            data: buf,
            ..CountingRegion::default()
        });
        let mapped = TermVector::from_mapped(
            Arc::clone(owned.arena()),
            Arc::clone(&region) as Arc<dyn ByteRegion>,
            ids.clone(),
            weights.clone(),
            entries.len(),
        )
        .expect("valid layout");
        // Length is part of the layout: no page-in yet.
        assert_eq!(mapped.len(), owned.len());
        assert!(!mapped.is_materialized());
        assert_eq!(region.page_ins.load(Ordering::Relaxed), 0);
        // First read materializes once and reports the page-in.
        for ((ta, wa), (tb, wb)) in mapped.iter().zip(owned.iter()) {
            assert_eq!(ta, tb);
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
        assert!(mapped.is_materialized());
        assert_eq!(mapped.dot(&owned).to_bits(), owned.dot(&owned).to_bits());
        assert_eq!(mapped, owned);
        assert_eq!(region.page_ins.load(Ordering::Relaxed), 1);
        assert_eq!(
            region.paged_bytes.load(Ordering::Relaxed),
            ids.len() + weights.len()
        );
    }

    #[test]
    fn mapped_vector_rejects_broken_streams() {
        let owned = TermVector::from_terms(["a", "b", "c"]);
        let entries: Vec<(u32, f64)> = owned.id_entries().to_vec();
        let (buf, ids, weights) = mapped_entry_layout(&entries);
        let region: Arc<dyn ByteRegion> = Arc::new(buf.clone());
        let arena = Arc::clone(owned.arena());
        // Wrong length / out-of-bounds ranges.
        assert!(TermVector::from_mapped(
            Arc::clone(&arena),
            Arc::clone(&region),
            ids.clone(),
            weights.clone(),
            entries.len() + 1
        )
        .is_none());
        assert!(TermVector::from_mapped(
            Arc::clone(&arena),
            Arc::clone(&region),
            ids.clone(),
            weights.start..weights.end + 8,
            entries.len()
        )
        .is_none());
        // Non-increasing ids are rejected at construction.
        let mut dup = buf.clone();
        dup[ids.start + 4..ids.start + 8].copy_from_slice(&0u32.to_le_bytes());
        assert!(TermVector::from_mapped(
            Arc::clone(&arena),
            Arc::new(dup),
            ids.clone(),
            weights.clone(),
            entries.len()
        )
        .is_none());
        // Ids past the arena are rejected.
        let mut oob = buf;
        oob[ids.start + 8..ids.start + 12].copy_from_slice(&9u32.to_le_bytes());
        assert!(
            TermVector::from_mapped(arena, Arc::new(oob), ids, weights, entries.len()).is_none()
        );
    }

    #[test]
    fn mutating_a_mapped_vector_converts_it_to_owned() {
        let owned = TermVector::from_terms(["a", "b"]);
        let entries: Vec<(u32, f64)> = owned.id_entries().to_vec();
        let (buf, ids, weights) = mapped_entry_layout(&entries);
        let mut mapped = TermVector::from_mapped(
            Arc::clone(owned.arena()),
            Arc::new(buf),
            ids,
            weights,
            entries.len(),
        )
        .unwrap();
        mapped.add("b", 2.0);
        assert!(mapped.is_materialized());
        assert_eq!(mapped.get("b"), 3.0);
        assert_eq!(mapped.get("a"), 1.0);
    }

    #[test]
    fn top_terms_ordering() {
        let v = TermVector::from_terms(["b", "a", "a", "c", "c", "c"]);
        let top = v.top_terms(2);
        assert_eq!(top[0].0, "c");
        assert_eq!(top[1].0, "a");
    }
}
