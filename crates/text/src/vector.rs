//! Sparse term-frequency vectors and cosine similarity.
//!
//! The paper's `vsim` and `lsim` measures are cosines between raw frequency
//! vectors (Section 3.2): value vectors are built from the value atoms
//! observed for an attribute across all infoboxes of a type, link-structure
//! vectors from the articles those values link to. [`TermVector`] is the
//! shared representation for both.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A sparse vector keyed by term, storing raw frequencies (`tf`).
///
/// Terms are kept in a [`BTreeMap`] so iteration order — and therefore all
/// derived results — is deterministic, which matters for reproducibility of
/// the experiment harness.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TermVector {
    counts: BTreeMap<String, f64>,
}

impl TermVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from an iterator of terms, counting occurrences.
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut v = Self::new();
        for t in terms {
            v.add(t, 1.0);
        }
        v
    }

    /// Adds `weight` occurrences of `term`.
    pub fn add<S: Into<String>>(&mut self, term: S, weight: f64) {
        if weight == 0.0 {
            return;
        }
        *self.counts.entry(term.into()).or_insert(0.0) += weight;
    }

    /// Merges another vector into this one (component-wise sum).
    pub fn merge(&mut self, other: &TermVector) {
        for (t, w) in &other.counts {
            self.add(t.clone(), *w);
        }
    }

    /// Frequency of a term (0.0 when absent).
    pub fn get(&self, term: &str) -> f64 {
        self.counts.get(term).copied().unwrap_or(0.0)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the vector has no terms.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Sum of all frequencies.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Iterates over `(term, frequency)` pairs in term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counts.iter().map(|(t, w)| (t.as_str(), *w))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.counts.values().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another vector.
    pub fn dot(&self, other: &TermVector) -> f64 {
        // Iterate over the smaller vector for efficiency.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.counts.iter().map(|(t, w)| w * large.get(t)).sum()
    }

    /// Cosine similarity with another vector; 0.0 when either is empty.
    ///
    /// ```
    /// use wiki_text::TermVector;
    /// let a = TermVector::from_terms(["ireland", "1963", "united states"]);
    /// let b = TermVector::from_terms(["ireland", "1963", "france"]);
    /// let c = a.cosine(&b);
    /// assert!(c > 0.6 && c < 0.7);
    /// ```
    pub fn cosine(&self, other: &TermVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(0.0, 1.0)
    }

    /// Jaccard overlap of the term *sets* (ignores frequencies).
    pub fn jaccard(&self, other: &TermVector) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let intersection = self
            .counts
            .keys()
            .filter(|t| other.counts.contains_key(*t))
            .count() as f64;
        let union = (self.len() + other.len()) as f64 - intersection;
        if union == 0.0 {
            0.0
        } else {
            intersection / union
        }
    }

    /// Overlap (Szymkiewicz–Simpson) coefficient of the term sets:
    /// `|A ∩ B| / min(|A|, |B|)`. Unlike Jaccard it is not penalised when
    /// one attribute is much more frequent than the other, which is the
    /// right behaviour for per-infobox value-equality matching.
    pub fn overlap_coefficient(&self, other: &TermVector) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let intersection = self
            .counts
            .keys()
            .filter(|t| other.counts.contains_key(*t))
            .count() as f64;
        intersection / self.len().min(other.len()) as f64
    }

    /// Applies a term-rewriting function, merging rewritten terms.
    ///
    /// Used to translate a value vector through the bilingual dictionary
    /// before computing `vsim`: terms found in the dictionary are replaced by
    /// their translation, others are kept as-is.
    pub fn map_terms<F>(&self, mut f: F) -> TermVector
    where
        F: FnMut(&str) -> Option<String>,
    {
        let mut out = TermVector::new();
        for (t, w) in &self.counts {
            match f(t) {
                Some(new_term) => out.add(new_term, *w),
                None => out.add(t.clone(), *w),
            }
        }
        out
    }

    /// Returns the `k` most frequent terms (ties broken by term order).
    pub fn top_terms(&self, k: usize) -> Vec<(&str, f64)> {
        let mut entries: Vec<(&str, f64)> = self.iter().collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        entries.truncate(k);
        entries
    }
}

impl<S: Into<String>> FromIterator<S> for TermVector {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        TermVector::from_terms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let v = TermVector::from_terms(["a", "b", "a", "a"]);
        assert_eq!(v.get("a"), 3.0);
        assert_eq!(v.get("b"), 1.0);
        assert_eq!(v.get("c"), 0.0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.total(), 4.0);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = TermVector::from_terms(["x", "y", "z", "x"]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let a = TermVector::from_terms(["a", "b"]);
        let b = TermVector::from_terms(["c", "d"]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_with_empty_vector_is_zero() {
        let a = TermVector::from_terms(["a"]);
        let b = TermVector::new();
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(b.cosine(&b), 0.0);
    }

    #[test]
    fn paper_example_one_translation_raises_similarity() {
        // Example 1 of the paper: nascimento vs born after dictionary
        // translation should have cosine ≈ 0.71-0.75.
        let mut va_t = TermVector::new();
        va_t.add("1963", 1.0);
        va_t.add("ireland", 1.0);
        va_t.add("december 18 1950", 1.0);
        va_t.add("united states", 1.0);
        let mut vb = TermVector::new();
        vb.add("1963", 1.0);
        vb.add("ireland", 1.0);
        vb.add("june 4 1975", 1.0);
        vb.add("united states", 2.0);
        let sim = va_t.cosine(&vb);
        assert!(sim > 0.65 && sim < 0.80, "sim = {sim}");
    }

    #[test]
    fn merge_and_map_terms() {
        let mut a = TermVector::from_terms(["estados unidos", "irlanda"]);
        let b = TermVector::from_terms(["estados unidos"]);
        a.merge(&b);
        assert_eq!(a.get("estados unidos"), 2.0);

        let translated = a.map_terms(|t| match t {
            "estados unidos" => Some("united states".to_string()),
            "irlanda" => Some("ireland".to_string()),
            _ => None,
        });
        assert_eq!(translated.get("united states"), 2.0);
        assert_eq!(translated.get("ireland"), 1.0);
        assert_eq!(translated.get("estados unidos"), 0.0);
    }

    #[test]
    fn jaccard_behaviour() {
        let a = TermVector::from_terms(["a", "b", "c"]);
        let b = TermVector::from_terms(["b", "c", "d"]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(TermVector::new().jaccard(&TermVector::new()), 0.0);
    }

    #[test]
    fn overlap_coefficient_behaviour() {
        let small = TermVector::from_terms(["a", "b"]);
        let large = TermVector::from_terms(["a", "b", "c", "d", "e", "f"]);
        // The small vector is fully contained in the large one.
        assert!((small.overlap_coefficient(&large) - 1.0).abs() < 1e-12);
        assert!((large.overlap_coefficient(&small) - 1.0).abs() < 1e-12);
        assert!(small.overlap_coefficient(&large) > small.jaccard(&large));
        assert_eq!(small.overlap_coefficient(&TermVector::new()), 0.0);
    }

    #[test]
    fn top_terms_ordering() {
        let v = TermVector::from_terms(["b", "a", "a", "c", "c", "c"]);
        let top = v.top_terms(2);
        assert_eq!(top[0].0, "c");
        assert_eq!(top[1].0, "a");
    }
}
