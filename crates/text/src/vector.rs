//! Sparse term-frequency vectors and cosine similarity.
//!
//! The paper's `vsim` and `lsim` measures are cosines between raw frequency
//! vectors (Section 3.2): value vectors are built from the value atoms
//! observed for an attribute across all infoboxes of a type, link-structure
//! vectors from the articles those values link to. [`TermVector`] is the
//! shared representation for both.
//!
//! ## Representation
//!
//! A [`TermVector`] stores its entries as a **term-sorted `Vec` of
//! `(term, weight)` pairs**. Compared to a tree or hash map this keeps the
//! data in one contiguous allocation and makes every pairwise operation —
//! [`dot`](TermVector::dot), [`cosine`](TermVector::cosine),
//! [`jaccard`](TermVector::jaccard),
//! [`overlap_coefficient`](TermVector::overlap_coefficient),
//! [`merge`](TermVector::merge) — a single **O(n + m) merge walk** over the
//! two sorted entry lists, which is what makes the pruned similarity-table
//! build in `wikimatch` cheap even on the large synthetic corpus tiers.
//! Incremental [`add`](TermVector::add) is a binary search plus an ordered
//! insert (O(n) worst case per new term — fine for the short per-attribute
//! vectors this workspace builds); bulk construction via
//! [`from_terms`](TermVector::from_terms) sorts once instead.
//! Iteration order (and therefore every derived float result) remains
//! deterministic: entries are always visited in ascending term order,
//! exactly as the previous `BTreeMap`-backed representation did.

use serde::{Deserialize, Serialize};

/// A sparse vector keyed by term, storing raw frequencies (`tf`).
///
/// Entries are kept sorted by term so iteration order — and therefore all
/// derived results — is deterministic, which matters for reproducibility of
/// the experiment harness, and so pairwise operations run as linear merge
/// walks instead of per-term lookups.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TermVector {
    /// `(term, weight)` entries sorted by term, one entry per distinct term.
    entries: Vec<(String, f64)>,
}

impl TermVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from an iterator of terms, counting occurrences.
    ///
    /// Sorts the terms once and accumulates runs — O(k log k) for k terms,
    /// instead of k ordered insertions.
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut terms: Vec<String> = terms.into_iter().map(Into::into).collect();
        terms.sort_unstable();
        let mut entries: Vec<(String, f64)> = Vec::new();
        for term in terms {
            match entries.last_mut() {
                Some((t, w)) if *t == term => *w += 1.0,
                _ => entries.push((term, 1.0)),
            }
        }
        Self { entries }
    }

    /// Rebuilds a vector from entries that are **already strictly sorted**
    /// by term (no duplicates), e.g. the output of [`iter`](Self::iter)
    /// captured by a persistence layer. Returns `None` when the entries are
    /// out of order or contain a duplicate term — the invariant every
    /// pairwise operation depends on.
    ///
    /// Weights are taken verbatim (no zero-filtering), so a round trip
    /// through `iter` → `from_sorted_entries` reproduces the vector exactly,
    /// bit for bit.
    pub fn from_sorted_entries(entries: Vec<(String, f64)>) -> Option<Self> {
        if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
            return None;
        }
        Some(Self { entries })
    }

    /// Adds `weight` occurrences of `term`.
    pub fn add<S: Into<String>>(&mut self, term: S, weight: f64) {
        if weight == 0.0 {
            return;
        }
        let term = term.into();
        match self
            .entries
            .binary_search_by(|(t, _)| t.as_str().cmp(&term))
        {
            Ok(i) => self.entries[i].1 += weight,
            Err(i) => self.entries.insert(i, (term, weight)),
        }
    }

    /// Merges another vector into this one (component-wise sum), as an
    /// O(n + m) merge walk over the two sorted entry lists.
    pub fn merge(&mut self, other: &TermVector) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        merge_join(&self.entries, &other.entries, |step| match step {
            MergeStep::Left(a) => merged.push(a.clone()),
            // A zero-weight entry never creates a new term (matching the
            // `add` semantics this walk replaces).
            MergeStep::Right(b) => {
                if b.1 != 0.0 {
                    merged.push(b.clone());
                }
            }
            MergeStep::Both((ta, wa), (_, wb)) => {
                let sum = if *wb == 0.0 { *wa } else { *wa + *wb };
                merged.push((ta.clone(), sum));
            }
        });
        self.entries = merged;
    }

    /// Frequency of a term (0.0 when absent).
    pub fn get(&self, term: &str) -> f64 {
        self.entries
            .binary_search_by(|(t, _)| t.as_str().cmp(term))
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the vector has no terms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all frequencies.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    /// Iterates over `(term, frequency)` pairs in term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(t, w)| (t.as_str(), *w))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another vector, computed as an O(n + m) merge walk
    /// over the two sorted entry lists.
    pub fn dot(&self, other: &TermVector) -> f64 {
        let mut sum = 0.0;
        merge_join(&self.entries, &other.entries, |step| {
            if let MergeStep::Both((_, wa), (_, wb)) = step {
                sum += wa * wb;
            }
        });
        sum
    }

    /// Cosine similarity with another vector; 0.0 when either is empty.
    ///
    /// ```
    /// use wiki_text::TermVector;
    /// let a = TermVector::from_terms(["ireland", "1963", "united states"]);
    /// let b = TermVector::from_terms(["ireland", "1963", "france"]);
    /// let c = a.cosine(&b);
    /// assert!(c > 0.6 && c < 0.7);
    /// ```
    pub fn cosine(&self, other: &TermVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(0.0, 1.0)
    }

    /// Calls `f` once per distinct term of the union of the two vectors'
    /// term sets, in ascending term order (an O(n + m) merge walk).
    ///
    /// This is the term-set primitive inverted-index builders need (e.g.
    /// the candidate index in `wikimatch`): it lives here, next to the
    /// sorted-entries invariant it depends on, so out-of-crate callers
    /// never hand-roll their own walk over the representation.
    pub fn union_terms<'a>(&'a self, other: &'a TermVector, mut f: impl FnMut(&'a str)) {
        merge_join(&self.entries, &other.entries, |step| match step {
            MergeStep::Left((t, _)) | MergeStep::Right((t, _)) | MergeStep::Both((t, _), _) => f(t),
        });
    }

    /// Number of terms present in both vectors (an O(n + m) merge walk).
    fn intersection_size(&self, other: &TermVector) -> usize {
        let mut count = 0;
        merge_join(&self.entries, &other.entries, |step| {
            if let MergeStep::Both(..) = step {
                count += 1;
            }
        });
        count
    }

    /// Jaccard overlap of the term *sets* (ignores frequencies).
    pub fn jaccard(&self, other: &TermVector) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let intersection = self.intersection_size(other) as f64;
        let union = (self.len() + other.len()) as f64 - intersection;
        if union == 0.0 {
            0.0
        } else {
            intersection / union
        }
    }

    /// Overlap (Szymkiewicz–Simpson) coefficient of the term sets:
    /// `|A ∩ B| / min(|A|, |B|)`. Unlike Jaccard it is not penalised when
    /// one attribute is much more frequent than the other, which is the
    /// right behaviour for per-infobox value-equality matching.
    pub fn overlap_coefficient(&self, other: &TermVector) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let intersection = self.intersection_size(other) as f64;
        intersection / self.len().min(other.len()) as f64
    }

    /// Applies a term-rewriting function, merging rewritten terms.
    ///
    /// Used to translate a value vector through the bilingual dictionary
    /// before computing `vsim`: terms found in the dictionary are replaced by
    /// their translation, others are kept as-is.
    pub fn map_terms<F>(&self, mut f: F) -> TermVector
    where
        F: FnMut(&str) -> Option<String>,
    {
        let mut out = TermVector::new();
        for (t, w) in &self.entries {
            match f(t) {
                Some(new_term) => out.add(new_term, *w),
                None => out.add(t.clone(), *w),
            }
        }
        out
    }

    /// Returns the `k` most frequent terms (ties broken by term order).
    pub fn top_terms(&self, k: usize) -> Vec<(&str, f64)> {
        let mut entries: Vec<(&str, f64)> = self.iter().collect();
        // `total_cmp` (not `partial_cmp`) so the ranking is a total order
        // even for pathological weights, with the term as a stable tie-break.
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        entries.truncate(k);
        entries
    }
}

/// One step of a [`merge_join`] walk over two term-sorted entry lists.
enum MergeStep<'a> {
    /// The entry's term occurs only in the left vector.
    Left(&'a (String, f64)),
    /// The entry's term occurs only in the right vector.
    Right(&'a (String, f64)),
    /// The term occurs in both vectors; both entries are handed over.
    Both(&'a (String, f64), &'a (String, f64)),
}

/// Two-pointer merge join over two term-sorted entry slices, calling `f`
/// once per distinct term in ascending term order.
///
/// Every pairwise [`TermVector`] operation (`dot`, `merge`, `union_terms`,
/// the intersection behind `jaccard`/`overlap_coefficient`) instantiates
/// this single walk, so the sorted-entries invariant has exactly one
/// consumer to update if the representation ever changes.
fn merge_join<'a>(
    a: &'a [(String, f64)],
    b: &'a [(String, f64)],
    mut f: impl FnMut(MergeStep<'a>),
) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                f(MergeStep::Left(&a[i]));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                f(MergeStep::Right(&b[j]));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                f(MergeStep::Both(&a[i], &b[j]));
                i += 1;
                j += 1;
            }
        }
    }
    for entry in &a[i..] {
        f(MergeStep::Left(entry));
    }
    for entry in &b[j..] {
        f(MergeStep::Right(entry));
    }
}

impl<S: Into<String>> FromIterator<S> for TermVector {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        TermVector::from_terms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let v = TermVector::from_terms(["a", "b", "a", "a"]);
        assert_eq!(v.get("a"), 3.0);
        assert_eq!(v.get("b"), 1.0);
        assert_eq!(v.get("c"), 0.0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.total(), 4.0);
    }

    #[test]
    fn entries_stay_sorted_under_mixed_insertions() {
        let mut v = TermVector::new();
        for t in ["zebra", "apple", "mango", "apple", "banana", "zebra"] {
            v.add(t, 1.0);
        }
        let terms: Vec<&str> = v.iter().map(|(t, _)| t).collect();
        assert_eq!(terms, vec!["apple", "banana", "mango", "zebra"]);
        assert_eq!(v.get("apple"), 2.0);
        assert_eq!(v.get("zebra"), 2.0);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = TermVector::from_terms(["x", "y", "z", "x"]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let a = TermVector::from_terms(["a", "b"]);
        let b = TermVector::from_terms(["c", "d"]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_with_empty_vector_is_zero() {
        let a = TermVector::from_terms(["a"]);
        let b = TermVector::new();
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(b.cosine(&b), 0.0);
    }

    #[test]
    fn dot_matches_lookup_based_reference() {
        let a = TermVector::from_terms(["a", "b", "b", "d", "e"]);
        let b = TermVector::from_terms(["b", "c", "d", "d", "f"]);
        // Reference: per-term lookups, the pre-merge-walk implementation.
        let reference: f64 = a.iter().map(|(t, w)| w * b.get(t)).sum();
        assert_eq!(a.dot(&b), reference);
        assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn paper_example_one_translation_raises_similarity() {
        // Example 1 of the paper: nascimento vs born after dictionary
        // translation should have cosine ≈ 0.71-0.75.
        let mut va_t = TermVector::new();
        va_t.add("1963", 1.0);
        va_t.add("ireland", 1.0);
        va_t.add("december 18 1950", 1.0);
        va_t.add("united states", 1.0);
        let mut vb = TermVector::new();
        vb.add("1963", 1.0);
        vb.add("ireland", 1.0);
        vb.add("june 4 1975", 1.0);
        vb.add("united states", 2.0);
        let sim = va_t.cosine(&vb);
        assert!(sim > 0.65 && sim < 0.80, "sim = {sim}");
    }

    #[test]
    fn merge_and_map_terms() {
        let mut a = TermVector::from_terms(["estados unidos", "irlanda"]);
        let b = TermVector::from_terms(["estados unidos"]);
        a.merge(&b);
        assert_eq!(a.get("estados unidos"), 2.0);

        let translated = a.map_terms(|t| match t {
            "estados unidos" => Some("united states".to_string()),
            "irlanda" => Some("ireland".to_string()),
            _ => None,
        });
        assert_eq!(translated.get("united states"), 2.0);
        assert_eq!(translated.get("ireland"), 1.0);
        assert_eq!(translated.get("estados unidos"), 0.0);
    }

    #[test]
    fn union_terms_visits_each_distinct_term_once_in_order() {
        let a = TermVector::from_terms(["b", "d", "a"]);
        let b = TermVector::from_terms(["c", "b", "e"]);
        let mut seen = Vec::new();
        a.union_terms(&b, |t| seen.push(t.to_string()));
        assert_eq!(seen, vec!["a", "b", "c", "d", "e"]);
        let mut left_only = Vec::new();
        a.union_terms(&TermVector::new(), |t| left_only.push(t.to_string()));
        assert_eq!(left_only, vec!["a", "b", "d"]);
    }

    #[test]
    fn jaccard_behaviour() {
        let a = TermVector::from_terms(["a", "b", "c"]);
        let b = TermVector::from_terms(["b", "c", "d"]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(TermVector::new().jaccard(&TermVector::new()), 0.0);
    }

    #[test]
    fn overlap_coefficient_behaviour() {
        let small = TermVector::from_terms(["a", "b"]);
        let large = TermVector::from_terms(["a", "b", "c", "d", "e", "f"]);
        // The small vector is fully contained in the large one.
        assert!((small.overlap_coefficient(&large) - 1.0).abs() < 1e-12);
        assert!((large.overlap_coefficient(&small) - 1.0).abs() < 1e-12);
        assert!(small.overlap_coefficient(&large) > small.jaccard(&large));
        assert_eq!(small.overlap_coefficient(&TermVector::new()), 0.0);
    }

    #[test]
    fn from_sorted_entries_round_trips_and_validates() {
        let v = TermVector::from_terms(["b", "a", "a", "c"]);
        let entries: Vec<(String, f64)> = v.iter().map(|(t, w)| (t.to_string(), w)).collect();
        let rebuilt = TermVector::from_sorted_entries(entries).expect("iter output is sorted");
        assert_eq!(rebuilt, v);
        // Out-of-order and duplicate entries are rejected.
        assert!(TermVector::from_sorted_entries(vec![
            ("b".to_string(), 1.0),
            ("a".to_string(), 1.0)
        ])
        .is_none());
        assert!(TermVector::from_sorted_entries(vec![
            ("a".to_string(), 1.0),
            ("a".to_string(), 2.0)
        ])
        .is_none());
        assert!(TermVector::from_sorted_entries(Vec::new()).is_some());
    }

    #[test]
    fn top_terms_ordering() {
        let v = TermVector::from_terms(["b", "a", "a", "c", "c", "c"]);
        let top = v.top_terms(2);
        assert_eq!(top[0].0, "c");
        assert_eq!(top[1].0, "a");
    }
}
