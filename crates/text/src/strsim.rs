//! String similarity functions.
//!
//! WikiMatch itself deliberately does **not** rely on string similarity
//! between attribute names (Section 1 of the paper: *editora* vs *editor* is
//! a false cognate). These functions exist for the baselines: the
//! COMA++-style composite matcher uses a name matcher built from
//! Levenshtein, Jaro-Winkler, character-trigram and token-overlap scores, and
//! the experiment harness reports how poorly name matching does across
//! morphologically distant languages (Figure 7).

use crate::normalize::normalize;

/// Levenshtein edit distance between two strings (in Unicode scalar values).
///
/// ```
/// use wiki_text::levenshtein;
/// assert_eq!(levenshtein("editora", "editor"), 1);
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Normalised Levenshtein similarity in `[0, 1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity between two strings.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matched = vec![false; a.len()];
    let mut matches = 0usize;
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions.
    let mut transpositions = 0usize;
    let mut j = 0usize;
    for (i, &matched) in a_matched.iter().enumerate() {
        if matched {
            while !b_matched[j] {
                j += 1;
            }
            if a[i] != b[j] {
                transpositions += 1;
            }
            j += 1;
        }
    }
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64 / 2.0) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard 0.1 prefix scale.
///
/// ```
/// use wiki_text::jaro_winkler;
/// assert!(jaro_winkler("director", "direção") > jaro_winkler("director", "writer"));
/// assert_eq!(jaro_winkler("same", "same"), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).clamp(0.0, 1.0)
}

/// Character n-gram (default use: trigram) Dice similarity.
///
/// The string is padded with `#` on both sides, as is conventional for
/// q-gram matchers, so that short strings still produce grams.
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    assert!(n >= 1, "n-gram size must be at least 1");
    let grams_a = ngrams(a, n);
    let grams_b = ngrams(b, n);
    if grams_a.is_empty() && grams_b.is_empty() {
        return 1.0;
    }
    if grams_a.is_empty() || grams_b.is_empty() {
        return 0.0;
    }
    let mut b_used = vec![false; grams_b.len()];
    let mut common = 0usize;
    for g in &grams_a {
        if let Some(pos) = grams_b
            .iter()
            .enumerate()
            .position(|(i, h)| !b_used[i] && h == g)
        {
            b_used[pos] = true;
            common += 1;
        }
    }
    2.0 * common as f64 / (grams_a.len() + grams_b.len()) as f64
}

fn ngrams(s: &str, n: usize) -> Vec<String> {
    let padded: Vec<char> = std::iter::repeat_n('#', n - 1)
        .chain(s.chars())
        .chain(std::iter::repeat_n('#', n - 1))
        .collect();
    if padded.len() < n {
        return Vec::new();
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// Token-level overlap similarity (Dice over word sets) after normalisation.
///
/// ```
/// use wiki_text::token_overlap;
/// assert_eq!(token_overlap("release date", "date of release"), 0.8);
/// ```
pub fn token_overlap(a: &str, b: &str) -> f64 {
    let ta: Vec<String> = normalize(a).split_whitespace().map(String::from).collect();
    let tb: Vec<String> = normalize(b).split_whitespace().map(String::from).collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut used = vec![false; tb.len()];
    let mut common = 0usize;
    for t in &ta {
        if let Some(i) = tb.iter().enumerate().position(|(i, u)| !used[i] && u == t) {
            used[i] = true;
            common += 1;
        }
    }
    2.0 * common as f64 / (ta.len() + tb.len()) as f64
}

/// Composite name similarity used by the COMA++-style name matcher:
/// the maximum of Jaro-Winkler, trigram and token-overlap similarity over the
/// normalised strings.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    jaro_winkler(&na, &nb)
        .max(ngram_similarity(&na, &nb, 3))
        .max(token_overlap(&na, &nb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basic() {
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.9444).abs() < 1e-3);
        assert!((jaro("dixon", "dicksonx") - 0.7667).abs() < 1e-3);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler("martha", "marhta") - 0.9611).abs() < 1e-3);
        assert!((jaro_winkler("dwayne", "duane") - 0.84).abs() < 1e-2);
    }

    #[test]
    fn false_cognates_score_high_on_string_similarity() {
        // The paper's motivating example: editora (publisher) vs editor.
        // String similarity is misleadingly high, which is why WikiMatch
        // avoids name-based matching.
        assert!(jaro_winkler("editora", "editor") > 0.9);
        assert!(ngram_similarity("editora", "editor", 3) > 0.7);
    }

    #[test]
    fn trigram_similarity_bounds() {
        assert_eq!(ngram_similarity("", "", 3), 1.0);
        assert_eq!(ngram_similarity("abc", "", 3), 0.0);
        assert!((ngram_similarity("night", "night", 3) - 1.0).abs() < 1e-12);
        let s = ngram_similarity("night", "nacht", 3);
        assert!(s > 0.0 && s < 0.5, "s = {s}");
    }

    #[test]
    fn token_overlap_handles_reordering() {
        assert!(token_overlap("data de nascimento", "nascimento data de") > 0.99);
        assert_eq!(token_overlap("born", "morte"), 0.0);
    }

    #[test]
    fn name_similarity_is_symmetric_and_bounded() {
        for (a, b) in [
            ("directed by", "direção"),
            ("starring", "elenco original"),
            ("đạo diễn", "directed by"),
        ] {
            let s1 = name_similarity(a, b);
            let s2 = name_similarity(b, a);
            assert!((s1 - s2).abs() < 1e-9);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    #[should_panic]
    fn zero_gram_panics() {
        ngram_similarity("a", "b", 0);
    }
}
