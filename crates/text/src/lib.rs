//! # wiki-text
//!
//! Text-processing primitives shared across the WikiMatch reproduction.
//!
//! The crate provides:
//!
//! * [`arena`] — vocabulary interning: a frozen, lexicographically sorted
//!   string table assigning dense `u32` term ids in term order, so id
//!   comparisons are term comparisons and interned vectors reproduce the
//!   string-keyed results bit for bit.
//! * [`mod@normalize`] — Unicode-aware lowercasing, diacritic folding for the
//!   Latin-based languages used in the paper (English, Portuguese,
//!   Vietnamese) and whitespace/punctuation canonicalisation.
//! * [`tokenize`] — word and value tokenisation used when building attribute
//!   value vectors.
//! * [`vector`] — sparse term-frequency vectors with cosine similarity, the
//!   workhorse of the paper's `vsim`/`lsim` measures.
//! * [`region`] — the [`ByteRegion`] handle that lets arenas and vectors
//!   *borrow* their storage from an externally-owned byte buffer (a mapped
//!   snapshot) instead of owning heap copies.
//! * [`strsim`] — classic string-similarity functions (Levenshtein,
//!   Jaro-Winkler, character n-grams, token overlap) needed by the
//!   COMA++-style name matcher baseline.
//! * [`value`] — light-weight typed interpretation of infobox values
//!   (dates, numbers, plain text) so that e.g. "18 de Dezembro 1950" and
//!   "December 18 1950" canonicalise to the same token.
//!
//! None of these helpers know anything about Wikipedia or schema matching;
//! they are reusable building blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod normalize;
pub mod region;
pub mod strsim;
pub mod tokenize;
pub mod value;
pub mod vector;

pub use arena::{TermArena, TermArenaBuilder};
pub use normalize::{fold_diacritics, normalize, normalize_label};
pub use region::ByteRegion;
pub use strsim::{jaro_winkler, levenshtein, ngram_similarity, token_overlap};
pub use tokenize::{tokenize_value, tokenize_words};
pub use value::{parse_value, CanonicalValue};
pub use vector::{TermVector, TermVectorBuilder};
