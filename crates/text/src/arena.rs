//! Vocabulary interning: [`TermArena`] and [`TermArenaBuilder`].
//!
//! A [`TermArena`] is a frozen, lexicographically sorted string table that
//! assigns every distinct term a dense `u32` id. The crucial invariant is
//! that **ids are assigned in lexicographic term order**:
//!
//! ```text
//! id(a) < id(b)  ⇔  a < b      (for terms a, b of the same arena)
//! ```
//!
//! Because of this, a term-vector entry list sorted by id is sorted by term,
//! every merge walk visits terms in exactly the order the string-keyed
//! representation did, and every derived float accumulates in exactly the
//! same order — which is what lets the interned representation in
//! [`crate::vector`] produce **bit-identical** similarity results while
//! replacing string comparisons in the hottest loops of the similarity
//! pipeline with integer comparisons.
//!
//! Construction is two-phase: a [`TermArenaBuilder`] collects terms in any
//! order (handing out *provisional* first-seen ids so callers can record
//! term occurrences cheaply), and [`TermArenaBuilder::freeze`] sorts the
//! vocabulary once, producing the arena plus the provisional → final id
//! remap.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A frozen, lexicographically sorted vocabulary assigning dense `u32` term
/// ids in term order (see the module docs for the id-order invariant).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TermArena {
    /// Strictly sorted, duplicate-free terms; index = id.
    terms: Vec<String>,
    /// Total bytes of interned term text (the memory-footprint gauge).
    bytes: usize,
}

impl TermArena {
    /// The shared empty arena — the backing of [`crate::TermVector::new`],
    /// allocated once per process.
    pub fn empty() -> Arc<TermArena> {
        static EMPTY: OnceLock<Arc<TermArena>> = OnceLock::new();
        Arc::clone(EMPTY.get_or_init(|| Arc::new(TermArena::default())))
    }

    /// Builds an arena from terms that are **already strictly sorted**
    /// (no duplicates). Returns `None` when the order invariant is violated
    /// — the check persistence layers rely on when adopting a string table
    /// read from disk.
    pub fn from_sorted_terms(terms: Vec<String>) -> Option<TermArena> {
        if terms.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let bytes = terms.iter().map(String::len).sum();
        Some(TermArena { terms, bytes })
    }

    /// The id of `term`, or `None` when the term is not in the vocabulary.
    #[inline]
    pub fn intern(&self, term: &str) -> Option<u32> {
        self.terms
            .binary_search_by(|t| t.as_str().cmp(term))
            .ok()
            .map(|i| i as u32)
    }

    /// The term behind `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range — ids are only minted by this
    /// arena's builder, so an out-of-range id is a logic error.
    #[inline]
    pub fn resolve(&self, id: u32) -> &str {
        &self.terms[id as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the arena holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total bytes of interned term text (excluding per-`String` overhead).
    pub fn term_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterates over the terms in id (= lexicographic) order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(String::as_str)
    }

    /// Builds the sorted union of this arena's vocabulary and `new_terms`
    /// (any order, duplicates and already-known terms allowed), returning
    /// the extended arena together with the **monotone** old → new id remap
    /// (`new_id = remap[old_id as usize]`).
    ///
    /// Because the merge preserves the relative order of the surviving
    /// terms, the remap is strictly increasing: an entry list sorted by old
    /// id stays sorted (by id *and* by term) after mapping each id through
    /// `remap`, so term vectors migrate to the extended arena with one
    /// linear pass and no re-sorting — the operation delta ingestion uses to
    /// keep clean vectors bit-identical while new terms join the
    /// vocabulary.
    pub fn extended_with<I, S>(&self, new_terms: I) -> (Arc<TermArena>, Vec<u32>)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut additions: Vec<String> = new_terms
            .into_iter()
            .map(Into::into)
            .filter(|t| self.intern(t).is_none())
            .collect();
        additions.sort_unstable();
        additions.dedup();

        let mut terms = Vec::with_capacity(self.terms.len() + additions.len());
        let mut remap = Vec::with_capacity(self.terms.len());
        let mut extra = additions.into_iter().peekable();
        for old in &self.terms {
            while extra.peek().is_some_and(|t| t.as_str() < old.as_str()) {
                terms.push(extra.next().expect("peeked"));
            }
            remap.push(terms.len() as u32);
            terms.push(old.clone());
        }
        terms.extend(extra);
        let bytes = terms.iter().map(String::len).sum();
        (Arc::new(TermArena { terms, bytes }), remap)
    }

    /// Inserts `term` at its sorted position, returning its id. Existing ids
    /// at or after that position shift up by one — callers holding entry
    /// lists must remap them. Only used by the copy-on-write `add` path of
    /// [`crate::TermVector`]; frozen shared arenas are never mutated.
    pub(crate) fn insert(&mut self, term: String) -> (u32, bool) {
        match self.terms.binary_search_by(|t| t.as_str().cmp(&term)) {
            Ok(i) => (i as u32, false),
            Err(i) => {
                self.bytes += term.len();
                self.terms.insert(i, term);
                (i as u32, true)
            }
        }
    }
}

/// Accumulates a vocabulary in any order, handing out *provisional*
/// first-seen ids; [`freeze`](Self::freeze) sorts the vocabulary once and
/// returns the final arena together with the provisional → final remap.
#[derive(Debug, Default)]
pub struct TermArenaBuilder {
    map: HashMap<String, u32>,
    terms: Vec<String>,
}

impl TermArenaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its provisional (first-seen order) id.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        self.intern_new(term.to_string())
    }

    /// Interns an owned term, returning its provisional id.
    pub fn intern_owned(&mut self, term: String) -> u32 {
        if let Some(&id) = self.map.get(&term) {
            return id;
        }
        self.intern_new(term)
    }

    fn intern_new(&mut self, term: String) -> u32 {
        let id = self.terms.len() as u32;
        self.terms.push(term.clone());
        self.map.insert(term, id);
        id
    }

    /// Number of distinct terms collected so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term behind a provisional id.
    pub fn term(&self, provisional: u32) -> &str {
        &self.terms[provisional as usize]
    }

    /// Sorts the vocabulary and freezes it into an arena. The second return
    /// value maps every provisional id to its final (lexicographic) id:
    /// `final_id = remap[provisional_id as usize]`.
    pub fn freeze(self) -> (Arc<TermArena>, Vec<u32>) {
        let _span = wiki_obs::Span::enter("arena_freeze");
        let TermArenaBuilder { map: _, terms } = self;
        let mut order: Vec<u32> = (0..terms.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| terms[a as usize].cmp(&terms[b as usize]));
        let mut remap = vec![0u32; terms.len()];
        for (final_id, &prov) in order.iter().enumerate() {
            remap[prov as usize] = final_id as u32;
        }
        let mut sorted: Vec<String> = vec![String::new(); terms.len()];
        for (prov, term) in terms.into_iter().enumerate() {
            sorted[remap[prov] as usize] = term;
        }
        let bytes = sorted.iter().map(String::len).sum();
        (
            Arc::new(TermArena {
                terms: sorted,
                bytes,
            }),
            remap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_hands_out_first_seen_ids_and_freezes_sorted() {
        let mut builder = TermArenaBuilder::new();
        let zebra = builder.intern("zebra");
        let apple = builder.intern("apple");
        let mango = builder.intern_owned("mango".to_string());
        assert_eq!(builder.intern("zebra"), zebra);
        assert_eq!(builder.term(apple), "apple");
        assert_eq!(builder.len(), 3);
        let (arena, remap) = builder.freeze();
        assert_eq!(arena.len(), 3);
        let terms: Vec<&str> = arena.terms().collect();
        assert_eq!(terms, vec!["apple", "mango", "zebra"]);
        assert_eq!(arena.resolve(remap[zebra as usize]), "zebra");
        assert_eq!(arena.resolve(remap[apple as usize]), "apple");
        assert_eq!(arena.resolve(remap[mango as usize]), "mango");
        assert_eq!(arena.intern("mango"), Some(remap[mango as usize]));
        assert_eq!(arena.intern("missing"), None);
        assert_eq!(arena.term_bytes(), "applemangozebra".len());
    }

    #[test]
    fn id_order_is_lexicographic_order() {
        let mut builder = TermArenaBuilder::new();
        for t in ["delta", "alpha", "charlie", "bravo", "echo"] {
            builder.intern(t);
        }
        let (arena, _) = builder.freeze();
        for a in 0..arena.len() as u32 {
            for b in 0..arena.len() as u32 {
                assert_eq!(a < b, arena.resolve(a) < arena.resolve(b));
            }
        }
    }

    #[test]
    fn from_sorted_terms_validates() {
        assert!(TermArena::from_sorted_terms(vec!["a".into(), "b".into()]).is_some());
        assert!(TermArena::from_sorted_terms(vec!["b".into(), "a".into()]).is_none());
        assert!(TermArena::from_sorted_terms(vec!["a".into(), "a".into()]).is_none());
        assert!(TermArena::from_sorted_terms(Vec::new()).is_some());
    }

    #[test]
    fn extended_with_merges_and_returns_a_monotone_remap() {
        let base =
            TermArena::from_sorted_terms(vec!["banana".into(), "mango".into(), "zebra".into()])
                .unwrap();
        let (extended, remap) = base.extended_with(["apple", "mango", "papaya", "apple"]);
        let terms: Vec<&str> = extended.terms().collect();
        assert_eq!(terms, vec!["apple", "banana", "mango", "papaya", "zebra"]);
        assert_eq!(remap, vec![1, 2, 4]);
        // The remap is strictly increasing and points at the same terms.
        assert!(remap.windows(2).all(|w| w[0] < w[1]));
        for (old, term) in base.terms().enumerate() {
            assert_eq!(extended.resolve(remap[old]), term);
        }
        assert_eq!(extended.term_bytes(), "applebananamangopapayazebra".len());
        // No additions → identity remap, identical vocabulary.
        let (same, identity) = base.extended_with(Vec::<String>::new());
        assert_eq!(same.len(), base.len());
        assert_eq!(identity, vec![0, 1, 2]);
    }

    #[test]
    fn empty_arena_is_shared() {
        let a = TermArena::empty();
        let b = TermArena::empty();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.is_empty());
    }
}
