//! Vocabulary interning: [`TermArena`] and [`TermArenaBuilder`].
//!
//! A [`TermArena`] is a frozen, lexicographically sorted string table that
//! assigns every distinct term a dense `u32` id. The crucial invariant is
//! that **ids are assigned in lexicographic term order**:
//!
//! ```text
//! id(a) < id(b)  ⇔  a < b      (for terms a, b of the same arena)
//! ```
//!
//! Because of this, a term-vector entry list sorted by id is sorted by term,
//! every merge walk visits terms in exactly the order the string-keyed
//! representation did, and every derived float accumulates in exactly the
//! same order — which is what lets the interned representation in
//! [`crate::vector`] produce **bit-identical** similarity results while
//! replacing string comparisons in the hottest loops of the similarity
//! pipeline with integer comparisons.
//!
//! Construction is two-phase: a [`TermArenaBuilder`] collects terms in any
//! order (handing out *provisional* first-seen ids so callers can record
//! term occurrences cheaply), and [`TermArenaBuilder::freeze`] sorts the
//! vocabulary once, producing the arena plus the provisional → final id
//! remap.
//!
//! ## Owned vs mapped storage
//!
//! An arena normally owns its string table on the heap. It can instead be a
//! zero-copy *view* over an externally-owned [`ByteRegion`]
//! ([`TermArena::from_mapped`]): a `(len + 1)`-entry little-endian `u32`
//! offset table plus the concatenated UTF-8 term bytes. `resolve` then
//! slices straight out of the region — no per-term allocation ever happens,
//! so a mapped arena contributes zero resident heap bytes
//! ([`TermArena::heap_bytes`]). All order/UTF-8 invariants are validated
//! once at construction; lookups stay infallible. Rust's `str` ordering is
//! plain byte-wise comparison, so the sortedness check over raw bytes is
//! exactly the invariant `intern`'s binary search needs.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use crate::region::ByteRegion;

/// Backing storage of a [`TermArena`]: heap-owned strings or a zero-copy
/// view into an externally-owned byte region.
#[derive(Debug, Clone)]
enum Store {
    /// Strictly sorted, duplicate-free terms; index = id.
    Owned(Vec<String>),
    /// Borrowed view: `offsets` holds `(len + 1)` little-endian `u32`s into
    /// `bytes` (both ranges index into the region), validated at
    /// construction to be monotone, in-bounds, UTF-8 and strictly sorted.
    Mapped {
        region: Arc<dyn ByteRegion>,
        offsets: Range<usize>,
        bytes: Range<usize>,
        len: usize,
    },
}

/// A frozen, lexicographically sorted vocabulary assigning dense `u32` term
/// ids in term order (see the module docs for the id-order invariant).
#[derive(Debug, Clone)]
pub struct TermArena {
    store: Store,
    /// Total bytes of term text (the memory-footprint gauge), whether the
    /// text lives on the heap or in the mapped region.
    bytes: usize,
}

impl Default for TermArena {
    fn default() -> Self {
        TermArena {
            store: Store::Owned(Vec::new()),
            bytes: 0,
        }
    }
}

impl PartialEq for TermArena {
    fn eq(&self, other: &Self) -> bool {
        // Owned/owned is the common case and compares the vectors directly;
        // any mapped side falls back to the term walk (identical content is
        // equal regardless of where the bytes live).
        if let (Store::Owned(a), Store::Owned(b)) = (&self.store, &other.store) {
            return a == b;
        }
        self.len() == other.len() && self.terms().eq(other.terms())
    }
}

impl TermArena {
    /// The shared empty arena — the backing of [`crate::TermVector::new`],
    /// allocated once per process.
    pub fn empty() -> Arc<TermArena> {
        static EMPTY: OnceLock<Arc<TermArena>> = OnceLock::new();
        Arc::clone(EMPTY.get_or_init(|| Arc::new(TermArena::default())))
    }

    /// Builds an arena from terms that are **already strictly sorted**
    /// (no duplicates). Returns `None` when the order invariant is violated
    /// — the check persistence layers rely on when adopting a string table
    /// read from disk.
    pub fn from_sorted_terms(terms: Vec<String>) -> Option<TermArena> {
        if terms.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let bytes = terms.iter().map(String::len).sum();
        Some(TermArena {
            store: Store::Owned(terms),
            bytes,
        })
    }

    /// Builds a zero-copy arena view over `region`: `offsets` is the byte
    /// range of a `(len + 1)`-entry little-endian `u32` offset table into
    /// the term text at `bytes` (offsets are relative to the start of the
    /// `bytes` range). Returns `None` unless every invariant holds: ranges
    /// in bounds, offset table exactly sized, offsets monotone from `0` to
    /// `bytes.len()`, every term valid UTF-8, and the terms strictly sorted
    /// — after which `resolve`/`intern` are infallible and allocation-free.
    pub fn from_mapped(
        region: Arc<dyn ByteRegion>,
        offsets: Range<usize>,
        bytes: Range<usize>,
        len: usize,
    ) -> Option<TermArena> {
        let data = region.bytes();
        if offsets.end > data.len() || offsets.start > offsets.end {
            return None;
        }
        if bytes.end > data.len() || bytes.start > bytes.end {
            return None;
        }
        if offsets.len() != len.checked_add(1)?.checked_mul(4)? {
            return None;
        }
        let text_len = bytes.len();
        let offset_at = |i: usize| -> usize {
            let at = offsets.start + i * 4;
            u32::from_le_bytes(data[at..at + 4].try_into().expect("4-byte slice")) as usize
        };
        if len == 0 {
            if offset_at(0) != 0 || text_len != 0 {
                return None;
            }
            return Some(TermArena {
                store: Store::Mapped {
                    region,
                    offsets,
                    bytes,
                    len,
                },
                bytes: 0,
            });
        }
        if offset_at(0) != 0 || offset_at(len) != text_len {
            return None;
        }
        let mut prev: Option<&[u8]> = None;
        for i in 0..len {
            let (start, end) = (offset_at(i), offset_at(i + 1));
            if start > end || end > text_len {
                return None;
            }
            let term = &data[bytes.start + start..bytes.start + end];
            if std::str::from_utf8(term).is_err() {
                return None;
            }
            // Strict byte-wise sortedness == strict `str` sortedness.
            if prev.is_some_and(|p| p >= term) {
                return None;
            }
            prev = Some(term);
        }
        Some(TermArena {
            store: Store::Mapped {
                region,
                offsets,
                bytes,
                len,
            },
            bytes: text_len,
        })
    }

    /// The term at index `i`, from either store.
    #[inline]
    fn term_at(&self, i: usize) -> &str {
        match &self.store {
            Store::Owned(terms) => &terms[i],
            Store::Mapped {
                region,
                offsets,
                bytes,
                ..
            } => {
                let data = region.bytes();
                let at = offsets.start + i * 4;
                let lo =
                    u32::from_le_bytes(data[at..at + 4].try_into().expect("4-byte slice")) as usize;
                let hi = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("4-byte slice"))
                    as usize;
                std::str::from_utf8(&data[bytes.start + lo..bytes.start + hi])
                    .expect("validated UTF-8 at construction")
            }
        }
    }

    /// The id of `term`, or `None` when the term is not in the vocabulary.
    #[inline]
    pub fn intern(&self, term: &str) -> Option<u32> {
        // Manual binary search over `term_at` so both stores share one
        // lookup path (the owned store's slice search would be identical).
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.term_at(mid).cmp(term) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid as u32),
            }
        }
        None
    }

    /// The term behind `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range — ids are only minted by this
    /// arena's builder, so an out-of-range id is a logic error.
    #[inline]
    pub fn resolve(&self, id: u32) -> &str {
        self.term_at(id as usize)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Owned(terms) => terms.len(),
            Store::Mapped { len, .. } => *len,
        }
    }

    /// True when the arena holds no terms.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of interned term text (excluding per-`String` overhead),
    /// wherever the text lives.
    pub fn term_bytes(&self) -> usize {
        self.bytes
    }

    /// Bytes of term text held on the *heap*: equal to
    /// [`term_bytes`](Self::term_bytes) for an owned arena, `0` for a
    /// mapped view (its text belongs to the region) — the split the
    /// out-of-core accounting reports as resident vs mapped.
    pub fn heap_bytes(&self) -> usize {
        match &self.store {
            Store::Owned(_) => self.bytes,
            Store::Mapped { .. } => 0,
        }
    }

    /// True when the string table is a zero-copy view into a byte region.
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, Store::Mapped { .. })
    }

    /// Iterates over the terms in id (= lexicographic) order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(|i| self.term_at(i))
    }

    /// Builds the sorted union of this arena's vocabulary and `new_terms`
    /// (any order, duplicates and already-known terms allowed), returning
    /// the extended arena together with the **monotone** old → new id remap
    /// (`new_id = remap[old_id as usize]`).
    ///
    /// Because the merge preserves the relative order of the surviving
    /// terms, the remap is strictly increasing: an entry list sorted by old
    /// id stays sorted (by id *and* by term) after mapping each id through
    /// `remap`, so term vectors migrate to the extended arena with one
    /// linear pass and no re-sorting — the operation delta ingestion uses to
    /// keep clean vectors bit-identical while new terms join the
    /// vocabulary. The extended arena always owns its table (it carries
    /// terms the region does not have).
    pub fn extended_with<I, S>(&self, new_terms: I) -> (Arc<TermArena>, Vec<u32>)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut additions: Vec<String> = new_terms
            .into_iter()
            .map(Into::into)
            .filter(|t| self.intern(t).is_none())
            .collect();
        additions.sort_unstable();
        additions.dedup();

        let mut terms = Vec::with_capacity(self.len() + additions.len());
        let mut remap = Vec::with_capacity(self.len());
        let mut extra = additions.into_iter().peekable();
        for old in self.terms() {
            while extra.peek().is_some_and(|t| t.as_str() < old) {
                terms.push(extra.next().expect("peeked"));
            }
            remap.push(terms.len() as u32);
            terms.push(old.to_string());
        }
        terms.extend(extra);
        let bytes = terms.iter().map(String::len).sum();
        (
            Arc::new(TermArena {
                store: Store::Owned(terms),
                bytes,
            }),
            remap,
        )
    }

    /// Inserts `term` at its sorted position, returning its id. Existing ids
    /// at or after that position shift up by one — callers holding entry
    /// lists must remap them. Only used by the copy-on-write `add` path of
    /// [`crate::TermVector`]; frozen shared arenas are never mutated. A
    /// mapped view converts to an owned table first (mutation cannot touch
    /// the region).
    pub(crate) fn insert(&mut self, term: String) -> (u32, bool) {
        if let Store::Mapped { .. } = self.store {
            let owned: Vec<String> = self.terms().map(str::to_string).collect();
            self.store = Store::Owned(owned);
        }
        let Store::Owned(terms) = &mut self.store else {
            unreachable!("mapped store converted above");
        };
        match terms.binary_search_by(|t| t.as_str().cmp(&term)) {
            Ok(i) => (i as u32, false),
            Err(i) => {
                self.bytes += term.len();
                terms.insert(i, term);
                (i as u32, true)
            }
        }
    }
}

/// Accumulates a vocabulary in any order, handing out *provisional*
/// first-seen ids; [`freeze`](Self::freeze) sorts the vocabulary once and
/// returns the final arena together with the provisional → final remap.
#[derive(Debug, Default)]
pub struct TermArenaBuilder {
    map: HashMap<String, u32>,
    terms: Vec<String>,
}

impl TermArenaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its provisional (first-seen order) id.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        self.intern_new(term.to_string())
    }

    /// Interns an owned term, returning its provisional id.
    pub fn intern_owned(&mut self, term: String) -> u32 {
        if let Some(&id) = self.map.get(&term) {
            return id;
        }
        self.intern_new(term)
    }

    fn intern_new(&mut self, term: String) -> u32 {
        let id = self.terms.len() as u32;
        self.terms.push(term.clone());
        self.map.insert(term, id);
        id
    }

    /// Number of distinct terms collected so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term behind a provisional id.
    pub fn term(&self, provisional: u32) -> &str {
        &self.terms[provisional as usize]
    }

    /// Sorts the vocabulary and freezes it into an arena. The second return
    /// value maps every provisional id to its final (lexicographic) id:
    /// `final_id = remap[provisional_id as usize]`.
    pub fn freeze(self) -> (Arc<TermArena>, Vec<u32>) {
        let _span = wiki_obs::Span::enter("arena_freeze");
        let TermArenaBuilder { map: _, terms } = self;
        let mut order: Vec<u32> = (0..terms.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| terms[a as usize].cmp(&terms[b as usize]));
        let mut remap = vec![0u32; terms.len()];
        for (final_id, &prov) in order.iter().enumerate() {
            remap[prov as usize] = final_id as u32;
        }
        let mut sorted: Vec<String> = vec![String::new(); terms.len()];
        for (prov, term) in terms.into_iter().enumerate() {
            sorted[remap[prov] as usize] = term;
        }
        let bytes = sorted.iter().map(String::len).sum();
        (
            Arc::new(TermArena {
                store: Store::Owned(sorted),
                bytes,
            }),
            remap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_hands_out_first_seen_ids_and_freezes_sorted() {
        let mut builder = TermArenaBuilder::new();
        let zebra = builder.intern("zebra");
        let apple = builder.intern("apple");
        let mango = builder.intern_owned("mango".to_string());
        assert_eq!(builder.intern("zebra"), zebra);
        assert_eq!(builder.term(apple), "apple");
        assert_eq!(builder.len(), 3);
        let (arena, remap) = builder.freeze();
        assert_eq!(arena.len(), 3);
        let terms: Vec<&str> = arena.terms().collect();
        assert_eq!(terms, vec!["apple", "mango", "zebra"]);
        assert_eq!(arena.resolve(remap[zebra as usize]), "zebra");
        assert_eq!(arena.resolve(remap[apple as usize]), "apple");
        assert_eq!(arena.resolve(remap[mango as usize]), "mango");
        assert_eq!(arena.intern("mango"), Some(remap[mango as usize]));
        assert_eq!(arena.intern("missing"), None);
        assert_eq!(arena.term_bytes(), "applemangozebra".len());
        assert_eq!(arena.heap_bytes(), arena.term_bytes());
        assert!(!arena.is_mapped());
    }

    #[test]
    fn id_order_is_lexicographic_order() {
        let mut builder = TermArenaBuilder::new();
        for t in ["delta", "alpha", "charlie", "bravo", "echo"] {
            builder.intern(t);
        }
        let (arena, _) = builder.freeze();
        for a in 0..arena.len() as u32 {
            for b in 0..arena.len() as u32 {
                assert_eq!(a < b, arena.resolve(a) < arena.resolve(b));
            }
        }
    }

    #[test]
    fn from_sorted_terms_validates() {
        assert!(TermArena::from_sorted_terms(vec!["a".into(), "b".into()]).is_some());
        assert!(TermArena::from_sorted_terms(vec!["b".into(), "a".into()]).is_none());
        assert!(TermArena::from_sorted_terms(vec!["a".into(), "a".into()]).is_none());
        assert!(TermArena::from_sorted_terms(Vec::new()).is_some());
    }

    #[test]
    fn extended_with_merges_and_returns_a_monotone_remap() {
        let base =
            TermArena::from_sorted_terms(vec!["banana".into(), "mango".into(), "zebra".into()])
                .unwrap();
        let (extended, remap) = base.extended_with(["apple", "mango", "papaya", "apple"]);
        let terms: Vec<&str> = extended.terms().collect();
        assert_eq!(terms, vec!["apple", "banana", "mango", "papaya", "zebra"]);
        assert_eq!(remap, vec![1, 2, 4]);
        // The remap is strictly increasing and points at the same terms.
        assert!(remap.windows(2).all(|w| w[0] < w[1]));
        for (old, term) in base.terms().enumerate() {
            assert_eq!(extended.resolve(remap[old]), term);
        }
        assert_eq!(extended.term_bytes(), "applebananamangopapayazebra".len());
        // No additions → identity remap, identical vocabulary.
        let (same, identity) = base.extended_with(Vec::<String>::new());
        assert_eq!(same.len(), base.len());
        assert_eq!(identity, vec![0, 1, 2]);
    }

    #[test]
    fn empty_arena_is_shared() {
        let a = TermArena::empty();
        let b = TermArena::empty();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.is_empty());
    }

    /// Serializes an arena into the mapped layout: `(len + 1)` LE u32
    /// offsets followed by the term bytes, returning the two ranges.
    fn mapped_layout(terms: &[&str]) -> (Vec<u8>, Range<usize>, Range<usize>) {
        let mut buf = Vec::new();
        let mut offset = 0u32;
        buf.extend_from_slice(&offset.to_le_bytes());
        for t in terms {
            offset += t.len() as u32;
            buf.extend_from_slice(&offset.to_le_bytes());
        }
        let offsets = 0..buf.len();
        let start = buf.len();
        for t in terms {
            buf.extend_from_slice(t.as_bytes());
        }
        (buf.clone(), offsets, start..buf.len())
    }

    #[test]
    fn mapped_view_resolves_interns_and_compares_like_the_owned_arena() {
        let terms = ["apple", "mango", "zebra"];
        let (buf, offsets, bytes) = mapped_layout(&terms);
        let region: Arc<dyn ByteRegion> = Arc::new(buf);
        let mapped = TermArena::from_mapped(region, offsets, bytes, terms.len()).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.len(), 3);
        assert_eq!(mapped.resolve(1), "mango");
        assert_eq!(mapped.intern("zebra"), Some(2));
        assert_eq!(mapped.intern("missing"), None);
        assert_eq!(mapped.term_bytes(), "applemangozebra".len());
        assert_eq!(mapped.heap_bytes(), 0);
        let owned =
            TermArena::from_sorted_terms(terms.iter().map(|t| t.to_string()).collect()).unwrap();
        assert_eq!(mapped, owned);
        assert_eq!(owned, mapped);
    }

    #[test]
    fn mapped_view_rejects_broken_invariants() {
        let terms = ["apple", "mango", "zebra"];
        let (buf, offsets, bytes) = mapped_layout(&terms);
        let region: Arc<dyn ByteRegion> = Arc::new(buf.clone());
        // Wrong length, out-of-bounds ranges, short offset tables.
        assert!(
            TermArena::from_mapped(Arc::clone(&region), offsets.clone(), bytes.clone(), 4)
                .is_none()
        );
        assert!(TermArena::from_mapped(
            Arc::clone(&region),
            offsets.clone(),
            bytes.start..bytes.end + 8,
            3
        )
        .is_none());
        assert!(TermArena::from_mapped(
            Arc::clone(&region),
            offsets.start..offsets.end - 4,
            bytes.clone(),
            3
        )
        .is_none());
        // Unsorted terms are rejected.
        let (ubuf, uoff, ubytes) = mapped_layout(&["zebra", "apple"]);
        assert!(TermArena::from_mapped(Arc::new(ubuf), uoff, ubytes, 2).is_none());
        // Invalid UTF-8 in the text section is rejected.
        let mut bad = buf;
        bad[bytes.start] = 0xff;
        assert!(TermArena::from_mapped(Arc::new(bad), offsets, bytes, 3).is_none());
    }

    #[test]
    fn mapped_insert_converts_to_owned_first() {
        let (buf, offsets, bytes) = mapped_layout(&["b", "d"]);
        let mut arena = TermArena::from_mapped(Arc::new(buf), offsets, bytes, 2).unwrap();
        let (id, inserted) = arena.insert("c".to_string());
        assert!(inserted);
        assert_eq!(id, 1);
        assert!(!arena.is_mapped());
        let terms: Vec<&str> = arena.terms().collect();
        assert_eq!(terms, vec!["b", "c", "d"]);
        assert_eq!(arena.heap_bytes(), 3);
    }
}
