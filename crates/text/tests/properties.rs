//! Property-based tests for the text-processing primitives.

use proptest::prelude::*;
use wiki_text::{
    jaro_winkler, levenshtein, ngram_similarity, normalize, normalize_label, token_overlap,
    TermArenaBuilder, TermVector, TermVectorBuilder,
};

proptest! {
    /// Normalisation is idempotent: normalising twice equals normalising once.
    #[test]
    fn normalize_idempotent(s in ".{0,64}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once);
    }

    /// Normalised strings contain only lowercase alphanumerics and single spaces.
    #[test]
    fn normalize_output_alphabet(s in ".{0,64}") {
        let n = normalize(&s);
        prop_assert!(!n.starts_with(' '));
        prop_assert!(!n.ends_with(' '));
        prop_assert!(!n.contains("  "));
        for c in n.chars() {
            prop_assert!(c == ' ' || c.is_alphanumeric() || c == '.');
            // Case folding is guaranteed for ASCII; exotic code points such
            // as mathematical capitals have no lowercase mapping.
            prop_assert!(!c.is_ascii_uppercase());
        }
    }

    /// Label normalisation never produces a longer string than value
    /// normalisation of the same input.
    #[test]
    fn label_not_longer_than_value(s in "[a-zA-Z0-9_ ]{0,32}") {
        prop_assert!(normalize_label(&s).len() <= normalize(&s).len());
    }

    /// Levenshtein is a metric: symmetry and identity of indiscernibles.
    #[test]
    fn levenshtein_symmetric(a in "[a-zçãđ]{0,16}", b in "[a-zçãđ]{0,16}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
    }

    /// Levenshtein triangle inequality over small strings.
    #[test]
    fn levenshtein_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Jaro-Winkler, n-gram and token overlap similarities are bounded and
    /// symmetric.
    #[test]
    fn similarities_bounded_symmetric(a in ".{0,24}", b in ".{0,24}") {
        for f in [jaro_winkler, token_overlap] {
            let s1 = f(&a, &b);
            let s2 = f(&b, &a);
            prop_assert!((0.0..=1.0).contains(&s1), "{s1}");
            prop_assert!((s1 - s2).abs() < 1e-9);
        }
        let g1 = ngram_similarity(&a, &b, 3);
        let g2 = ngram_similarity(&b, &a, 3);
        prop_assert!((0.0..=1.0).contains(&g1));
        prop_assert!((g1 - g2).abs() < 1e-9);
    }

    /// Self-similarity is maximal.
    #[test]
    fn self_similarity_is_one(a in "[a-z]{1,24}") {
        prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((ngram_similarity(&a, &a, 3) - 1.0).abs() < 1e-9);
        prop_assert!((token_overlap(&a, &a) - 1.0).abs() < 1e-9);
    }

    /// Cosine similarity of term vectors is bounded, symmetric, and 1 for a
    /// vector with itself (when non-empty).
    #[test]
    fn cosine_properties(
        a in proptest::collection::vec("[a-e]{1,3}", 0..16),
        b in proptest::collection::vec("[a-e]{1,3}", 0..16),
    ) {
        let va = TermVector::from_terms(a.clone());
        let vb = TermVector::from_terms(b);
        let c1 = va.cosine(&vb);
        let c2 = vb.cosine(&va);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!((c1 - c2).abs() < 1e-9);
        if !a.is_empty() {
            prop_assert!((va.cosine(&va) - 1.0).abs() < 1e-9);
        }
    }

    /// The sparse merge-walk dot product equals a dense map-based
    /// reference computed term by term.
    #[test]
    fn sparse_dot_equals_dense_reference(
        a in proptest::collection::vec(("[a-e]{1,3}", 1u32..4), 0..24),
        b in proptest::collection::vec(("[a-e]{1,3}", 1u32..4), 0..24),
    ) {
        use std::collections::BTreeMap;
        // Build both a sparse TermVector and a dense BTreeMap accumulator
        // from the same weighted term list.
        let build = |terms: &[(String, u32)]| {
            let mut sparse = TermVector::new();
            let mut dense: BTreeMap<String, f64> = BTreeMap::new();
            for (t, w) in terms {
                sparse.add(t.clone(), f64::from(*w));
                *dense.entry(t.clone()).or_insert(0.0) += f64::from(*w);
            }
            (sparse, dense)
        };
        let (sa, da) = build(&a);
        let (sb, db) = build(&b);
        // Dense reference: iterate one map, look terms up in the other.
        let reference: f64 = da
            .iter()
            .map(|(t, w)| w * db.get(t).copied().unwrap_or(0.0))
            .sum();
        prop_assert_eq!(sa.dot(&sb), reference);
        prop_assert_eq!(sb.dot(&sa), reference);
        // The sparse vector agrees with the dense accumulator entry-wise.
        for (t, w) in &da {
            prop_assert_eq!(sa.get(t), *w);
        }
        prop_assert_eq!(sa.len(), da.len());
    }

    /// Interning round-trips: for any term set, `resolve(intern(t)) == t`,
    /// the freeze remap is consistent, and ids are strictly sorted exactly
    /// when the terms are strictly sorted (the id-order ⇔ term-order
    /// invariant every bit-identity guarantee in the workspace rests on).
    #[test]
    fn arena_round_trip_and_id_order(
        terms in proptest::collection::vec("[a-h]{1,6}", 0..48),
    ) {
        let mut builder = TermArenaBuilder::new();
        let provisional: Vec<u32> = terms.iter().map(|t| builder.intern(t)).collect();
        let (arena, remap) = builder.freeze();
        // intern → resolve is the identity on every collected term.
        for (term, prov) in terms.iter().zip(&provisional) {
            let id = remap[*prov as usize];
            prop_assert_eq!(arena.resolve(id), term.as_str());
            prop_assert_eq!(arena.intern(term), Some(id));
        }
        // Ids are strictly sorted ⇔ terms are strictly sorted.
        let ids: Vec<u32> = (0..arena.len() as u32).collect();
        for w in ids.windows(2) {
            prop_assert!(w[0] < w[1]);
            prop_assert!(arena.resolve(w[0]) < arena.resolve(w[1]));
        }
        // Uncollected terms resolve to nothing.
        prop_assert_eq!(arena.intern("not-in-the-alphabet!"), None);
        prop_assert_eq!(arena.len(), {
            let mut unique = terms;
            unique.sort_unstable();
            unique.dedup();
            unique.len()
        });
    }

    /// `TermVectorBuilder` (sort once) and the incremental `add` path
    /// produce bit-identical vectors for any weighted push sequence,
    /// including colliding terms and zero weights.
    #[test]
    fn builder_equals_incremental_add(
        pushes in proptest::collection::vec(("[a-e]{1,3}", -4i32..4), 0..32),
    ) {
        let mut incremental = TermVector::new();
        let mut builder = TermVectorBuilder::new();
        for (t, w) in &pushes {
            // Quarter-integer weights exercise real float accumulation.
            let w = f64::from(*w) / 4.0;
            incremental.add(t.clone(), w);
            builder.push(t.clone(), w);
        }
        let built = builder.finish();
        prop_assert_eq!(built.len(), incremental.len());
        for ((ta, wa), (tb, wb)) in built.iter().zip(incremental.iter()) {
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(wa.to_bits(), wb.to_bits());
        }
    }

    /// Merging vectors adds totals; dot product is monotone under merge.
    #[test]
    fn merge_adds_totals(
        a in proptest::collection::vec("[a-e]{1,3}", 0..16),
        b in proptest::collection::vec("[a-e]{1,3}", 0..16),
    ) {
        let va = TermVector::from_terms(a);
        let vb = TermVector::from_terms(b);
        let mut merged = va.clone();
        merged.merge(&vb);
        prop_assert!((merged.total() - (va.total() + vb.total())).abs() < 1e-9);
        prop_assert!(merged.dot(&va) >= va.dot(&va) - 1e-9);
    }
}
