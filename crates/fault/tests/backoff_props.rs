//! Property tests pinning the jittered-backoff schedule: every delay stays
//! inside the `[envelope/2, envelope]` band, the envelope is a monotone
//! doubling sequence saturating at the cap, and the whole sequence is a
//! pure function of the seed.

use proptest::prelude::*;
use std::time::Duration;
use wiki_fault::backoff::{seed_from_name, Backoff};

proptest! {
    /// Bounds: delay n is within [envelope(n)/2, envelope(n)] and never
    /// exceeds the cap, for any base/cap/seed.
    #[test]
    fn delays_stay_inside_the_jitter_band(
        base in 1u64..10_000,
        cap in 1u64..100_000,
        seed in 0u64..u64::MAX,
        rounds in 1usize..24,
    ) {
        let mut backoff = Backoff::new(base, cap, seed);
        for n in 0..rounds {
            let envelope = backoff.envelope_ms(n as u32);
            let delay = backoff.next_delay();
            let ms = delay.as_millis() as u64;
            prop_assert!(ms >= envelope / 2, "attempt {n}: {ms}ms below half-envelope {envelope}");
            prop_assert!(ms <= envelope, "attempt {n}: {ms}ms above envelope {envelope}");
            prop_assert!(ms <= cap.max(1), "attempt {n}: {ms}ms above cap {cap}");
        }
    }

    /// The envelope doubles monotonically and saturates exactly at the cap.
    #[test]
    fn envelope_is_monotone_and_capped(
        base in 1u64..10_000,
        cap in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
    ) {
        let backoff = Backoff::new(base, cap, seed);
        let mut previous = 0u64;
        for n in 0..64u32 {
            let envelope = backoff.envelope_ms(n);
            prop_assert!(envelope >= previous, "envelope shrank at attempt {n}");
            prop_assert!(envelope <= cap.max(1));
            // The envelope is exactly min(cap, base * 2^n) (saturating).
            let exact = (u128::from(base) << n).min(u128::from(cap.max(1))) as u64;
            prop_assert_eq!(envelope, exact);
            previous = envelope;
        }
    }

    /// Determinism: the same (base, cap, seed) triple always produces the
    /// same delay sequence, and advancing one generator never perturbs a
    /// twin constructed identically.
    #[test]
    fn sequence_is_a_pure_function_of_the_seed(
        base in 1u64..10_000,
        cap in 1u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let mut a = Backoff::new(base, cap, seed);
        let first: Vec<Duration> = (0..12).map(|_| a.next_delay()).collect();
        let mut b = Backoff::new(base, cap, seed);
        let second: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        prop_assert_eq!(first, second);
    }

    /// Different seeds decorrelate: two long sequences from different seeds
    /// are not identical (statistically certain with a 24-delay window and
    /// a non-degenerate band; skip bands too narrow to differ).
    #[test]
    fn different_seeds_differ(
        base in 16u64..10_000,
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
    ) {
        prop_assume!(seed_a != seed_b);
        let cap = base * 64;
        let mut a = Backoff::new(base, cap, seed_a);
        let mut b = Backoff::new(base, cap, seed_b);
        let seq_a: Vec<Duration> = (0..24).map(|_| a.next_delay()).collect();
        let seq_b: Vec<Duration> = (0..24).map(|_| b.next_delay()).collect();
        prop_assert_ne!(seq_a, seq_b);
    }
}

#[test]
fn name_seeds_are_stable_and_distinct() {
    assert_eq!(seed_from_name("pt-tiny"), seed_from_name("pt-tiny"));
    assert_ne!(seed_from_name("pt-tiny"), seed_from_name("pt-small"));
}
