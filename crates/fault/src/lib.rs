//! Named failpoints for fault injection, plus the retry/backoff primitives
//! the recovery paths built on top of them share.
//!
//! A *failpoint* is a named hook compiled permanently into a production code
//! path — `wiki_fault::check_io("snapshot.save.write")?` — that normally does
//! nothing and can be armed at runtime to misbehave on purpose: return an
//! injected I/O error, sleep for a configured delay, truncate a write after
//! N bytes (a torn write), or abort the process outright. Tests and the
//! chaos harness arm points to prove that recovery code actually recovers;
//! production traffic never notices they exist.
//!
//! # Cost when disarmed
//!
//! The entire framework hides behind one process-wide armed-point counter.
//! When nothing is armed, every hook is a single `Relaxed` atomic load and a
//! predictable branch — no locks, no string hashing, no allocation. The
//! `degrade` bench pins this: the disarmed hook is low-single-digit
//! nanoseconds and invisible on a warm align p50.
//!
//! # Arming
//!
//! Points are armed from a spec string, either at process start through the
//! `WIKIMATCH_FAILPOINTS` environment variable or at runtime through
//! [`arm`] (matchd exposes the latter behind the test-only
//! `--enable-failpoints` endpoint):
//!
//! ```text
//! WIKIMATCH_FAILPOINTS="journal.append.write=torn(12)*1;registry.spill=sleep(50)"
//! ```
//!
//! Each `;`-separated entry is `name=action[*TIMES][/EVERY]`:
//!
//! | action       | meaning                                                  |
//! |--------------|----------------------------------------------------------|
//! | `err`        | return an injected [`io::Error`]                         |
//! | `err(msg)`   | same, with `msg` embedded in the error text              |
//! | `sleep(ms)`  | sleep `ms` milliseconds, then continue normally          |
//! | `torn(n)`    | write/keep only the first `n` bytes, then fail           |
//! | `abort`      | `process::abort()` at the hook                           |
//! | `abort(n)`   | write the first `n` bytes, then `process::abort()`       |
//! | `off`        | disarm the point                                         |
//!
//! `*TIMES` fires the action at most `TIMES` times then self-disarms (the
//! common chaos shape: `abort(12)*1` — die exactly once, mid-record).
//! `/EVERY` fires on every `EVERY`-th hit deterministically (hits 1..E-1
//! pass through, hit E fires, and so on), so a bench can stall every tenth
//! spill without randomness.
//!
//! Injected errors carry [`INJECTED_MARKER`] in their message so tests can
//! tell a planted failure from a real one.

pub mod backoff;

pub use backoff::{seed_from_name, Backoff};

use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// Substring present in every injected error's `Display` output.
pub const INJECTED_MARKER: &str = "failpoint";

/// Environment variable read once (on the first hook evaluation or explicit
/// [`init_env`] call) for boot-time arming.
pub const ENV_VAR: &str = "WIKIMATCH_FAILPOINTS";

/// Sentinel for "the environment has not been consulted yet". The first
/// hook that observes it takes the slow path, parses [`ENV_VAR`] and
/// replaces the sentinel with the real armed-point count.
const UNINIT: usize = usize::MAX;

/// Number of currently armed points, or [`UNINIT`]. The fast path is a
/// single `Relaxed` load of this counter: `0` means every hook is inert.
static ARMED: AtomicUsize = AtomicUsize::new(UNINIT);

static INIT: Once = Once::new();

/// What an armed point does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Return an injected `io::Error` carrying the message.
    Err(String),
    /// Sleep for the given number of milliseconds, then continue.
    Sleep(u64),
    /// Keep/write only the first `n` bytes, then fail with an injected
    /// error (a torn write, or a truncated read on load paths).
    Torn(usize),
    /// Write the first `n` bytes, then `process::abort()`.
    Abort(usize),
}

impl Action {
    fn describe(&self) -> String {
        match self {
            Action::Err(msg) => format!("err({msg})"),
            Action::Sleep(ms) => format!("sleep({ms})"),
            Action::Torn(n) => format!("torn({n})"),
            Action::Abort(n) => format!("abort({n})"),
        }
    }
}

/// One armed point. Mutated only under the table lock; the per-hit
/// bookkeeping (`hits`, `fired`, remaining `times`) lives behind it too —
/// armed mode is a test/chaos mode, so slow-path contention is acceptable.
#[derive(Debug)]
struct PointState {
    name: String,
    action: Action,
    /// Fire on every `every`-th hit (1 = every hit).
    every: u64,
    /// Remaining firings before self-disarm; `None` = unlimited.
    times: Option<u64>,
    hits: u64,
    fired: u64,
}

/// Public snapshot of one armed point, for `GET /failpoints` and logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointStatus {
    /// Failpoint name, e.g. `journal.append.write`.
    pub name: String,
    /// Re-parseable spec of the armed action, e.g. `torn(12)*1`.
    pub spec: String,
    /// Hook evaluations observed while armed.
    pub hits: u64,
    /// Times the action actually fired.
    pub fired: u64,
}

fn table() -> &'static Mutex<Vec<PointState>> {
    static TABLE: OnceLock<Mutex<Vec<PointState>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_table() -> std::sync::MutexGuard<'static, Vec<PointState>> {
    // A panic while holding the table lock (e.g. a test assertion inside an
    // armed section) must not wedge every later hook.
    table()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Parse and arm the [`ENV_VAR`] spec if it has not been consulted yet.
/// Idempotent and cheap after the first call; hooks call it implicitly.
pub fn init_env() {
    INIT.call_once(|| {
        let mut armed = 0usize;
        if let Ok(spec) = std::env::var(ENV_VAR) {
            if !spec.trim().is_empty() {
                match parse_spec(&spec) {
                    Ok(entries) => {
                        let mut tbl = lock_table();
                        for entry in entries {
                            apply_entry(&mut tbl, entry);
                        }
                        armed = tbl.len();
                    }
                    Err(err) => {
                        eprintln!("wiki-fault: ignoring malformed {ENV_VAR}: {err}");
                    }
                }
            }
        }
        // Publish the real count, ending the UNINIT slow path. `arm` may
        // have run before us and already replaced the sentinel; only
        // install our count if the sentinel is still in place.
        let _ = ARMED.compare_exchange(UNINIT, armed, Ordering::SeqCst, Ordering::SeqCst);
    });
}

/// One parsed `name=action[*T][/E]` entry. `None` action means `off`.
struct SpecEntry {
    name: String,
    action: Option<Action>,
    every: u64,
    times: Option<u64>,
}

fn parse_spec(spec: &str) -> Result<Vec<SpecEntry>, String> {
    let mut entries = Vec::new();
    for raw in spec.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (name, rhs) = raw
            .split_once('=')
            .ok_or_else(|| format!("entry `{raw}` is missing `=`"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("entry `{raw}` has an empty point name"));
        }
        let mut rhs = rhs.trim();

        // Strip modifiers from the right: [/EVERY] then [*TIMES]. They may
        // appear in either order; parse both.
        let mut every = 1u64;
        let mut times = None;
        loop {
            if let Some(idx) = rhs.rfind(['*', '/']) {
                // Only treat it as a modifier if it sits after the action's
                // closing parenthesis (or there are no parentheses at all).
                let after_parens = match rhs.rfind(')') {
                    Some(p) => idx > p,
                    None => true,
                };
                if after_parens {
                    let (head, tail) = rhs.split_at(idx);
                    let value: u64 = tail[1..]
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad modifier `{tail}` in `{raw}`"))?;
                    if value == 0 {
                        return Err(format!("modifier in `{raw}` must be >= 1"));
                    }
                    match tail.as_bytes()[0] {
                        b'*' => times = Some(value),
                        _ => every = value,
                    }
                    rhs = head.trim_end();
                    continue;
                }
            }
            break;
        }

        let action = parse_action(rhs).map_err(|e| format!("in `{raw}`: {e}"))?;
        entries.push(SpecEntry {
            name: name.to_string(),
            action,
            every,
            times,
        });
    }
    Ok(entries)
}

fn parse_action(text: &str) -> Result<Option<Action>, String> {
    let (head, arg) = match text.split_once('(') {
        Some((head, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed parenthesis in `{text}`"))?;
            (head.trim(), Some(arg.trim()))
        }
        None => (text.trim(), None),
    };
    let numeric = |what: &str, arg: Option<&str>| -> Result<u64, String> {
        arg.ok_or_else(|| format!("`{what}` needs a numeric argument"))?
            .parse::<u64>()
            .map_err(|_| format!("`{what}` argument must be a non-negative integer"))
    };
    match head {
        "off" => Ok(None),
        "err" => Ok(Some(Action::Err(
            arg.filter(|a| !a.is_empty())
                .unwrap_or("injected error")
                .to_string(),
        ))),
        "sleep" => Ok(Some(Action::Sleep(numeric("sleep", arg)?))),
        "torn" => Ok(Some(Action::Torn(numeric("torn", arg)? as usize))),
        "abort" => Ok(Some(Action::Abort(match arg {
            Some(a) if !a.is_empty() => numeric("abort", Some(a))? as usize,
            _ => 0,
        }))),
        other => Err(format!("unknown action `{other}`")),
    }
}

fn apply_entry(tbl: &mut Vec<PointState>, entry: SpecEntry) {
    tbl.retain(|p| p.name != entry.name);
    if let Some(action) = entry.action {
        tbl.push(PointState {
            name: entry.name,
            action,
            every: entry.every,
            times: entry.times,
            hits: 0,
            fired: 0,
        });
    }
}

fn publish_count(count: usize) {
    // After init_env the sentinel is gone; before it, installing a real
    // count is also correct (init_env's compare_exchange will then no-op).
    ARMED.store(count, Ordering::SeqCst);
    INIT.call_once(|| {});
}

/// Arm (or disarm, via `off`) points from a spec string. Returns the names
/// touched, or a parse error without changing anything.
pub fn arm(spec: &str) -> Result<Vec<String>, String> {
    init_env();
    let entries = parse_spec(spec)?;
    let mut names = Vec::with_capacity(entries.len());
    let mut tbl = lock_table();
    for entry in entries {
        names.push(entry.name.clone());
        apply_entry(&mut tbl, entry);
    }
    publish_count(tbl.len());
    Ok(names)
}

/// Disarm one point. Returns whether it was armed.
pub fn disarm(name: &str) -> bool {
    init_env();
    let mut tbl = lock_table();
    let before = tbl.len();
    tbl.retain(|p| p.name != name);
    let removed = tbl.len() != before;
    publish_count(tbl.len());
    removed
}

/// Disarm every point.
pub fn disarm_all() {
    init_env();
    let mut tbl = lock_table();
    tbl.clear();
    publish_count(0);
}

/// Snapshot of every armed point (hit/fire counters included).
pub fn list() -> Vec<PointStatus> {
    init_env();
    let tbl = lock_table();
    tbl.iter()
        .map(|p| {
            let mut spec = p.action.describe();
            if let Some(t) = p.times {
                spec.push_str(&format!("*{t}"));
            }
            if p.every > 1 {
                spec.push_str(&format!("/{}", p.every));
            }
            PointStatus {
                name: p.name.clone(),
                spec,
                hits: p.hits,
                fired: p.fired,
            }
        })
        .collect()
}

/// Evaluate a hook: `None` (the overwhelmingly common case) means proceed
/// normally; `Some(action)` means the caller must apply the action.
///
/// Side effects (sleeping, aborting) are deliberately *not* performed here
/// so the table lock is never held across them — the helper functions
/// ([`check_io`], [`write_all`], [`filter_read`], [`pause`]) apply them.
#[inline]
pub fn evaluate(name: &str) -> Option<Action> {
    match ARMED.load(Ordering::Relaxed) {
        0 => None,
        _ => evaluate_slow(name),
    }
}

#[cold]
fn evaluate_slow(name: &str) -> Option<Action> {
    init_env();
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut tbl = lock_table();
    let idx = tbl.iter().position(|p| p.name == name)?;
    let point = &mut tbl[idx];
    point.hits += 1;
    if !point.hits.is_multiple_of(point.every) {
        return None;
    }
    if let Some(times) = point.times {
        if times == 0 {
            return None;
        }
    }
    point.fired += 1;
    let action = point.action.clone();
    let exhausted = match point.times.as_mut() {
        Some(times) => {
            *times -= 1;
            *times == 0
        }
        None => false,
    };
    if exhausted {
        tbl.remove(idx);
        let count = tbl.len();
        drop(tbl);
        publish_count(count);
    }
    Some(action)
}

/// Build the injected error for a fired point.
pub fn injected_error(name: &str, detail: &str) -> io::Error {
    io::Error::other(format!("injected {INJECTED_MARKER} `{name}`: {detail}"))
}

/// Returns true if the error (anywhere in its message) came from a
/// failpoint rather than the real world.
pub fn is_injected(err: &io::Error) -> bool {
    err.to_string().contains(INJECTED_MARKER)
}

/// Hook for fallible I/O paths: `wiki_fault::check_io("point")?`.
///
/// `Sleep` delays then succeeds; `Err` and `Torn` return an injected error;
/// `Abort` kills the process.
#[inline]
pub fn check_io(name: &str) -> io::Result<()> {
    match evaluate(name) {
        None => Ok(()),
        Some(action) => apply_check(name, action),
    }
}

#[cold]
fn apply_check(name: &str, action: Action) -> io::Result<()> {
    match action {
        Action::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Action::Err(msg) => Err(injected_error(name, &msg)),
        Action::Torn(n) => Err(injected_error(name, &format!("torn after {n} bytes"))),
        Action::Abort(_) => std::process::abort(),
    }
}

/// Hook for infallible paths (pure compute, encode): `Sleep` and `Abort`
/// apply; error-shaped actions are ignored because there is nothing to fail.
#[inline]
pub fn pause(name: &str) {
    if let Some(action) = evaluate(name) {
        match action {
            Action::Sleep(ms) => std::thread::sleep(Duration::from_millis(ms)),
            Action::Abort(_) => std::process::abort(),
            Action::Err(_) | Action::Torn(_) => {}
        }
    }
}

/// Failpoint-aware `write_all`: the workhorse of the durability paths.
///
/// Disarmed, this is `w.write_all(bytes)`. Armed: `torn(n)` writes the
/// first `n` bytes then returns an injected error (the on-disk artifact is
/// genuinely torn); `abort(n)` writes `n` bytes, flushes, and aborts (a
/// crash mid-write); `err` fails before writing anything; `sleep` stalls
/// then writes normally.
#[inline]
pub fn write_all<W: Write>(name: &str, w: &mut W, bytes: &[u8]) -> io::Result<()> {
    match evaluate(name) {
        None => w.write_all(bytes),
        Some(action) => apply_write(name, w, bytes, action),
    }
}

#[cold]
fn apply_write<W: Write>(name: &str, w: &mut W, bytes: &[u8], action: Action) -> io::Result<()> {
    match action {
        Action::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            w.write_all(bytes)
        }
        Action::Err(msg) => Err(injected_error(name, &msg)),
        Action::Torn(n) => {
            let n = n.min(bytes.len());
            w.write_all(&bytes[..n])?;
            let _ = w.flush();
            Err(injected_error(name, &format!("torn write after {n} bytes")))
        }
        Action::Abort(n) => {
            let n = n.min(bytes.len());
            let _ = w.write_all(&bytes[..n]);
            let _ = w.flush();
            std::process::abort();
        }
    }
}

/// Failpoint-aware read filter for load paths: call after reading a file
/// into `bytes`. `torn(n)` truncates the buffer to `n` bytes (the caller
/// then sees exactly what a torn file looks like); `err` replaces the read
/// with an injected error; `sleep` stalls; `abort` aborts.
#[inline]
pub fn filter_read(name: &str, bytes: &mut Vec<u8>) -> io::Result<()> {
    match evaluate(name) {
        None => Ok(()),
        Some(action) => apply_read(name, bytes, action),
    }
}

#[cold]
fn apply_read(name: &str, bytes: &mut Vec<u8>, action: Action) -> io::Result<()> {
    match action {
        Action::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Action::Err(msg) => Err(injected_error(name, &msg)),
        Action::Torn(n) => {
            bytes.truncate(n);
            Ok(())
        }
        Action::Abort(_) => std::process::abort(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global table is process-wide; tests that arm points must not
    /// interleave. One mutex serialises them (and recovers from panics).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_points_do_nothing() {
        let _g = serial();
        disarm_all();
        assert!(evaluate("never.armed").is_none());
        assert!(check_io("never.armed").is_ok());
        let mut buf = Vec::new();
        write_all("never.armed", &mut buf, b"abc").unwrap();
        assert_eq!(buf, b"abc");
    }

    #[test]
    fn err_action_injects_and_marks() {
        let _g = serial();
        disarm_all();
        arm("p.err=err(disk on fire)").unwrap();
        let err = check_io("p.err").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(err.to_string().contains("disk on fire"));
        disarm_all();
        assert!(check_io("p.err").is_ok());
    }

    #[test]
    fn torn_write_keeps_prefix_then_fails() {
        let _g = serial();
        disarm_all();
        arm("p.torn=torn(3)").unwrap();
        let mut buf = Vec::new();
        let err = write_all("p.torn", &mut buf, b"abcdef").unwrap_err();
        assert!(is_injected(&err));
        assert_eq!(buf, b"abc");
        disarm_all();
    }

    #[test]
    fn torn_read_truncates_buffer() {
        let _g = serial();
        disarm_all();
        arm("p.read=torn(2)").unwrap();
        let mut bytes = b"abcdef".to_vec();
        filter_read("p.read", &mut bytes).unwrap();
        assert_eq!(bytes, b"ab");
        disarm_all();
    }

    #[test]
    fn times_modifier_self_disarms() {
        let _g = serial();
        disarm_all();
        arm("p.once=err*1").unwrap();
        assert!(check_io("p.once").is_err());
        assert!(check_io("p.once").is_ok(), "second hit must pass");
        assert!(list().iter().all(|p| p.name != "p.once"), "self-disarmed");
        disarm_all();
    }

    #[test]
    fn every_modifier_fires_deterministically() {
        let _g = serial();
        disarm_all();
        arm("p.every=err/3").unwrap();
        let fired: Vec<bool> = (0..9).map(|_| check_io("p.every").is_err()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        disarm_all();
    }

    #[test]
    fn combined_modifiers_parse() {
        let _g = serial();
        disarm_all();
        arm("p.combo=torn(12)*2/2").unwrap();
        let status = list();
        let p = status.iter().find(|p| p.name == "p.combo").unwrap();
        assert_eq!(p.spec, "torn(12)*2/2");
        // Hits 1 passes, 2 fires, 3 passes, 4 fires (and exhausts), rest pass.
        assert!(check_io("p.combo").is_ok());
        assert!(check_io("p.combo").is_err());
        assert!(check_io("p.combo").is_ok());
        assert!(check_io("p.combo").is_err());
        assert!(check_io("p.combo").is_ok());
        assert!(check_io("p.combo").is_ok());
        disarm_all();
    }

    #[test]
    fn off_disarms_via_spec() {
        let _g = serial();
        disarm_all();
        arm("p.off=err").unwrap();
        assert!(check_io("p.off").is_err());
        arm("p.off=off").unwrap();
        assert!(check_io("p.off").is_ok());
        disarm_all();
    }

    #[test]
    fn malformed_specs_are_rejected_atomically() {
        let _g = serial();
        disarm_all();
        assert!(arm("nonsense").is_err());
        assert!(arm("p=explode").is_err());
        assert!(arm("p=sleep").is_err(), "sleep needs an argument");
        assert!(arm("p=torn(x)").is_err());
        assert!(arm("p=err*0").is_err(), "zero times is meaningless");
        assert!(
            list().is_empty(),
            "failed arms must not leave partial state"
        );
    }

    #[test]
    fn list_reports_hits_and_fired() {
        let _g = serial();
        disarm_all();
        arm("p.count=sleep(0)/2").unwrap();
        for _ in 0..5 {
            pause("p.count");
        }
        let status = list();
        let p = status.iter().find(|p| p.name == "p.count").unwrap();
        assert_eq!(p.hits, 5);
        assert_eq!(p.fired, 2);
        disarm_all();
    }
}
