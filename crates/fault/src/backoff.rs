//! Seeded, jittered, capped exponential backoff for retry loops.
//!
//! The registry's degraded paths (spill retries, journal repair) need to
//! back off without thundering-herd alignment across workers, and the test
//! suite needs those delays to be *reproducible*. So the jitter source is a
//! tiny seeded xorshift generator rather than wall-clock entropy: the same
//! seed always yields the same delay sequence, and two different seeds
//! (e.g. hashed from the corpus name) decorrelate.
//!
//! The schedule is *equal jitter* over a doubling, capped envelope:
//!
//! ```text
//! envelope(n) = min(cap, base << n)          // monotone, saturating
//! delay(n)    = envelope(n)/2 + uniform(0 ..= envelope(n)/2)
//! ```
//!
//! so every delay is within `[envelope/2, envelope]` — never zero (for
//! `base >= 2`), never above the cap, and on average three quarters of the
//! envelope. The proptest suite in `tests/backoff_props.rs` pins these
//! bounds.

use std::time::Duration;

/// Deterministic jittered exponential backoff.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// `base_ms` is the first attempt's envelope, `cap_ms` the ceiling every
    /// later envelope saturates at. A zero `base_ms`/`cap_ms` is clamped to
    /// 1 so the schedule is never degenerate.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
            // xorshift must not start at 0; fold the seed through a
            // splitmix-style scramble that maps 0 somewhere useful.
            rng: splitmix(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The deterministic upper bound for attempt `n` (0-based):
    /// `min(cap, base << n)`, saturating on overflow.
    pub fn envelope_ms(&self, attempt: u32) -> u64 {
        let doubled = if attempt >= 63 {
            u64::MAX
        } else {
            self.base_ms.saturating_mul(1u64 << attempt)
        };
        doubled.min(self.cap_ms)
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Next delay in the schedule. Always within
    /// `[envelope/2, envelope]` of the current attempt's envelope.
    pub fn next_delay(&mut self) -> Duration {
        let envelope = self.envelope_ms(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        let half = envelope / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.next_u64() % (half + 1)
        };
        Duration::from_millis(half + jitter)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — tiny, std-only, more than random enough for jitter.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let out = z ^ (z >> 31);
    if out == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        out
    }
}

/// Stable 64-bit FNV-1a over a name — the conventional way call sites derive
/// a backoff seed from a corpus or file name so retries decorrelate across
/// corpora but stay reproducible for one.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_doubles_then_caps() {
        let b = Backoff::new(10, 80, 7);
        let envelopes: Vec<u64> = (0..6).map(|n| b.envelope_ms(n)).collect();
        assert_eq!(envelopes, vec![10, 20, 40, 80, 80, 80]);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Backoff::new(5, 500, 42);
        let mut b = Backoff::new(5, 500, 42);
        for _ in 0..16 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn zero_base_is_clamped() {
        let mut b = Backoff::new(0, 0, 1);
        // envelope = 1ms, half = 0 → delay is exactly 0ms; just must not panic.
        let d = b.next_delay();
        assert!(d <= Duration::from_millis(1));
    }
}
