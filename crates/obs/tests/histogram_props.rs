//! Property tests pinning the log-bucket histogram layout: bucket
//! assignment is monotone, bounds partition the `u64` range, and quantile
//! bounds always contain the true nearest-rank quantile of the recorded
//! values.

use proptest::prelude::*;
use wiki_obs::metrics::{bucket_bounds, bucket_index, BUCKET_COUNT};
use wiki_obs::Histogram;

proptest! {
    /// Every value lands in the bucket whose bounds contain it.
    #[test]
    fn value_lands_inside_its_bucket(v in 0u64..u64::MAX) {
        let index = bucket_index(v);
        prop_assert!(index < BUCKET_COUNT);
        let (lower, upper) = bucket_bounds(index);
        prop_assert!(lower <= v, "{v} below bucket {index} lower {lower}");
        prop_assert!(
            v < upper || index == BUCKET_COUNT - 1,
            "{v} at/above bucket {index} upper {upper}"
        );
    }

    /// Bucket assignment is monotone in the value.
    #[test]
    fn bucket_index_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(small) <= bucket_index(large));
    }

    /// The true nearest-rank quantile of the recorded values lies inside
    /// the `[lower, upper)` interval `quantile_bounds` reports.
    #[test]
    fn quantile_bounds_contain_true_quantile(
        values in proptest::collection::vec(0u64..10_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let histogram = Histogram::new();
        for &v in &values {
            histogram.record(v);
        }
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.count(), values.len() as u64);
        let (lower, upper) = snapshot.quantile_bounds(q).expect("non-empty");
        prop_assert!(
            lower <= exact && exact < upper,
            "q={} exact={} outside [{}, {})", q, exact, lower, upper
        );
    }

    /// The sum accumulates exactly (no value is clipped by bucketing).
    #[test]
    fn sum_is_exact(values in proptest::collection::vec(0u64..1_000_000_000, 0..50)) {
        let histogram = Histogram::new();
        for &v in &values {
            histogram.record(v);
        }
        prop_assert_eq!(histogram.snapshot().sum, values.iter().sum::<u64>());
    }
}
