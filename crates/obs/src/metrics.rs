//! The lock-free metrics registry: counters, gauges and log-bucketed
//! latency histograms, rendered in the Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! around plain atomics — once a handle is resolved, recording is a couple
//! of relaxed atomic operations with no locking, so hot paths can record
//! per request (or per build phase) without contending. The registry locks
//! only when *resolving* a handle (get-or-create of a family or a labelled
//! child) and when rendering.
//!
//! # Histogram layout
//!
//! [`Histogram`] buckets are **log-bucketed with linear sub-buckets**:
//! [`BUCKET_SUB_COUNT`] (4) equal-width buckets per power of two, covering
//! `0 ns` to `2^42 ns` (~73 minutes) plus one open overflow bucket. Every
//! bucket boundary is an exactly representable integer, so
//! [`HistogramSnapshot::quantile_bounds`] returns *exact* bounds: the true
//! q-quantile of the recorded values is guaranteed to lie in the returned
//! `[lower, upper)` interval (the relative width of which is at most 25%).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Recovers the guarded value of a poisoned lock; the registry only ever
/// mutates by appending complete families/children, so the state is
/// consistent even after a panicking holder.
fn recover<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// log2 of the number of linear sub-buckets per power of two.
pub const BUCKET_SUB_BITS: u32 = 2;
/// Linear sub-buckets per power of two (4).
pub const BUCKET_SUB_COUNT: usize = 1 << BUCKET_SUB_BITS;
/// Values at or above `2^BUCKET_MAX_EXP` nanoseconds land in the open
/// overflow bucket.
pub const BUCKET_MAX_EXP: u32 = 42;
/// Total number of buckets, including the open overflow bucket.
pub const BUCKET_COUNT: usize = (BUCKET_MAX_EXP as usize - 1) * BUCKET_SUB_COUNT + 1;

/// The bucket index of a recorded value (monotone in the value).
pub fn bucket_index(value: u64) -> usize {
    if value < BUCKET_SUB_COUNT as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    if exp >= BUCKET_MAX_EXP {
        return BUCKET_COUNT - 1;
    }
    let sub = ((value >> (exp - BUCKET_SUB_BITS)) & (BUCKET_SUB_COUNT as u64 - 1)) as usize;
    (exp as usize - 1) * BUCKET_SUB_COUNT + sub
}

/// The `[lower, upper)` value range of a bucket. The overflow bucket's
/// upper bound is `u64::MAX`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    if index < BUCKET_SUB_COUNT {
        return (index as u64, index as u64 + 1);
    }
    if index == BUCKET_COUNT - 1 {
        return (1u64 << BUCKET_MAX_EXP, u64::MAX);
    }
    let exp = (index / BUCKET_SUB_COUNT + 1) as u32;
    let sub = (index % BUCKET_SUB_COUNT) as u64;
    let width = 1u64 << (exp - BUCKET_SUB_BITS);
    let lower = (1u64 << exp) + sub * width;
    (lower, lower + width)
}

/// A monotone event counter.
///
/// Cloning shares the underlying cell; all operations are relaxed atomics.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Overwrites the value — for scrape-time mirroring of counters that
    /// live elsewhere (e.g. registry statistics), not for hot-path use.
    pub fn store(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A log-bucketed latency histogram over `u64` nanosecond values.
///
/// See the [module docs](self) for the bucket layout. Recording is two
/// relaxed atomic adds; snapshots and quantile queries are taken from
/// [`snapshot`](Self::snapshot).
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            cell: Arc::new(HistogramCell {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Creates a detached histogram (not registered anywhere) — useful for
    /// tests and ad-hoc aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (nanoseconds by convention).
    pub fn record(&self, value: u64) {
        self.cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration at nanosecond resolution (saturating at
    /// `u64::MAX` nanoseconds ≈ 584 years).
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .cell
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.cell.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, indexed like [`bucket_bounds`].
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact bounds on the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// values: the true quantile is guaranteed to lie in the returned
    /// `[lower, upper)` interval. `None` when nothing was recorded.
    ///
    /// The quantile is the nearest-rank one: the value at rank
    /// `ceil(q · count)` (clamped to at least 1) of the sorted recorded
    /// values.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (index, count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(bucket_bounds(index));
            }
        }
        Some(bucket_bounds(BUCKET_COUNT - 1))
    }
}

/// The metric types a family can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn exposition_type(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One registered handle, any type.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named metric family: one `# HELP`/`# TYPE` block with zero or more
/// labelled children.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// `(rendered label pairs, handle)`, in creation order. The label
    /// string is the canonical `key="value",…` form (no braces).
    children: RwLock<Vec<(String, Metric)>>,
}

/// A registry of metric families, rendered with
/// [`render`](MetricsRegistry::render) into the Prometheus text format.
///
/// Most code uses the process-wide [`crate::registry()`]; detached
/// registries exist for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<Vec<Arc<Family>>>,
}

/// Renders label pairs into the canonical `key="value",…` form, escaping
/// backslashes, quotes and newlines in values.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&self, name: &str, help: &str, kind: Kind) -> Arc<Family> {
        {
            let families = recover(self.families.read());
            if let Some(family) = families.iter().find(|f| f.name == name) {
                assert!(
                    family.kind == kind,
                    "metric {name:?} registered as {:?} and requested as {kind:?}",
                    family.kind
                );
                return Arc::clone(family);
            }
        }
        let mut families = recover(self.families.write());
        if let Some(family) = families.iter().find(|f| f.name == name) {
            assert!(
                family.kind == kind,
                "metric {name:?} registered as {:?} and requested as {kind:?}",
                family.kind
            );
            return Arc::clone(family);
        }
        let family = Arc::new(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            children: RwLock::new(Vec::new()),
        });
        families.push(Arc::clone(&family));
        family
    }

    fn child(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Metric {
        let family = self.family(name, help, kind);
        let rendered = render_labels(labels);
        {
            let children = recover(family.children.read());
            if let Some((_, metric)) = children.iter().find(|(l, _)| *l == rendered) {
                return metric.clone();
            }
        }
        let mut children = recover(family.children.write());
        if let Some((_, metric)) = children.iter().find(|(l, _)| *l == rendered) {
            return metric.clone();
        }
        let metric = match kind {
            Kind::Counter => Metric::Counter(Counter::default()),
            Kind::Gauge => Metric::Gauge(Gauge::default()),
            Kind::Histogram => Metric::Histogram(Histogram::default()),
        };
        children.push((rendered, metric.clone()));
        metric
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a labelled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.child(name, help, Kind::Counter, labels) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind is checked by child()"),
        }
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a labelled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.child(name, help, Kind::Gauge, labels) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind is checked by child()"),
        }
    }

    /// Get-or-create an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create a labelled histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.child(name, help, Kind::Histogram, labels) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind is checked by child()"),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4).
    ///
    /// Histograms are recorded in nanoseconds and exposed in **seconds**
    /// (the Prometheus base unit): `le` bounds are the exact bucket upper
    /// bounds divided by 1e9, `_sum` likewise. Empty buckets below the
    /// highest non-empty one are skipped (the cumulative counts stay
    /// monotone); `le="+Inf"` is always emitted and equals `_count`.
    pub fn render(&self) -> String {
        let families: Vec<Arc<Family>> = recover(self.families.read()).clone();
        let mut out = String::new();
        for family in &families {
            let children = recover(family.children.read()).clone();
            if children.is_empty() {
                continue;
            }
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.exposition_type());
            out.push('\n');
            for (labels, metric) in &children {
                match metric {
                    Metric::Counter(c) => {
                        render_sample(&mut out, &family.name, "", labels, &c.get().to_string());
                    }
                    Metric::Gauge(g) => {
                        render_sample(&mut out, &family.name, "", labels, &g.get().to_string());
                    }
                    Metric::Histogram(h) => {
                        render_histogram(&mut out, &family.name, labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }
}

/// Writes one exposition sample line: `name[suffix]{labels} value`.
fn render_sample(out: &mut String, name: &str, suffix: &str, labels: &str, value: &str) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Writes the `_bucket`/`_sum`/`_count` sample series of one histogram
/// child.
fn render_histogram(out: &mut String, name: &str, labels: &str, snapshot: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (index, count) in snapshot.buckets.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        cumulative += count;
        let (_, upper) = bucket_bounds(index);
        let le = if index == BUCKET_COUNT - 1 {
            "+Inf".to_string()
        } else {
            format!("{}", upper as f64 / 1e9)
        };
        let bucket_labels = if labels.is_empty() {
            format!("le=\"{le}\"")
        } else {
            format!("{labels},le=\"{le}\"")
        };
        render_sample(
            out,
            name,
            "_bucket",
            &bucket_labels,
            &cumulative.to_string(),
        );
    }
    let total = cumulative;
    let inf_labels = if labels.is_empty() {
        "le=\"+Inf\"".to_string()
    } else {
        format!("{labels},le=\"+Inf\"")
    };
    // Emitted unconditionally (the loop above only reaches it when the
    // overflow bucket itself is non-empty).
    if snapshot.buckets[BUCKET_COUNT - 1] == 0 {
        render_sample(out, name, "_bucket", &inf_labels, &total.to_string());
    }
    render_sample(
        out,
        name,
        "_sum",
        labels,
        &format!("{}", snapshot.sum as f64 / 1e9),
    );
    render_sample(out, name, "_count", labels, &total.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_partition() {
        let mut previous_upper = 0u64;
        for index in 0..BUCKET_COUNT {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(lower, previous_upper, "bucket {index} not contiguous");
            assert!(upper > lower);
            previous_upper = upper;
            // The bounds map back to their own bucket.
            assert_eq!(bucket_index(lower), index);
            if index < BUCKET_COUNT - 1 {
                assert_eq!(bucket_index(upper - 1), index);
            }
        }
        assert_eq!(previous_upper, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn histogram_quantiles_bound_exact_values() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000, 2000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.sum, 3100);
        let (lo, hi) = snap.quantile_bounds(0.5).unwrap();
        assert!(lo <= 30 && 30 < hi, "p50 bounds [{lo},{hi}) must hold 30");
        let (lo, hi) = snap.quantile_bounds(1.0).unwrap();
        assert!(lo <= 2000 && 2000 < hi);
        let (lo, hi) = snap.quantile_bounds(0.0).unwrap();
        assert!(lo <= 10 && 10 < hi, "p0 clamps to rank 1");
    }

    #[test]
    fn registry_coalesces_handles_and_renders() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("wm_test_total", "test counter");
        let b = registry.counter("wm_test_total", "test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "handles share one cell");
        let g = registry.gauge_with("wm_test_gauge", "gauge", &[("corpus", "pt-tiny")]);
        g.set(-7);
        let h = registry.histogram_with("wm_test_seconds", "latency", &[("phase", "x")]);
        h.record(1_500_000_000); // 1.5 s
        let text = registry.render();
        assert!(text.contains("# TYPE wm_test_total counter"), "{text}");
        assert!(text.contains("wm_test_total 3"), "{text}");
        assert!(
            text.contains("wm_test_gauge{corpus=\"pt-tiny\"} -7"),
            "{text}"
        );
        assert!(text.contains("# TYPE wm_test_seconds histogram"), "{text}");
        assert!(
            text.contains("wm_test_seconds_bucket{phase=\"x\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("wm_test_seconds_count{phase=\"x\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("wm_test_seconds_sum{phase=\"x\"} 1.5"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("wm_mismatch", "a counter");
        registry.gauge("wm_mismatch", "now a gauge");
    }

    #[test]
    fn label_values_are_escaped() {
        let rendered = render_labels(&[("k", "a\"b\\c\nd")]);
        assert_eq!(rendered, "k=\"a\\\"b\\\\c\\nd\"");
    }
}
