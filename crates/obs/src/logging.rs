//! Structured JSON-lines access logs.
//!
//! A [`RequestLog`] turns finished-request records into one JSON object
//! per line, written to a pluggable sink (stderr by default; an in-memory
//! buffer for tests). Emission is gated by a [`LogLevel`] and a
//! slow-request threshold: at `Error` only failures (5xx) and slow
//! requests are logged, at `Info` every request, at `Debug` every request
//! (reserved for future extra fields).
//!
//! # Line schema
//!
//! ```json
//! {"ts_ms":1754500000000,"id":42,"method":"POST","path":"/align",
//!  "endpoint":"align","corpus":"pt-tiny","status":200,"total_us":1234,
//!  "slow":false,"segments":{"req_queue_wait_us":10,"req_parse_us":55,
//!  "req_lookup_us":3,"req_compute_us":1100,"req_serialize_us":66}}
//! ```
//!
//! Phase names arrive in nanoseconds and are emitted with a `_us` suffix
//! in integer microseconds (sub-microsecond segments round to 0 but are
//! still present, keeping the schema stable).

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// How much of the request stream to log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// Nothing, ever.
    Off,
    /// Server errors (5xx) and requests over the slow threshold.
    #[default]
    Error,
    /// Every request.
    Info,
    /// Every request (reserved for richer records).
    Debug,
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(LogLevel::Off),
            "error" => Ok(LogLevel::Error),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected off|error|info|debug)"
            )),
        }
    }
}

impl std::fmt::Display for LogLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        })
    }
}

/// Where log lines go.
enum Sink {
    Stderr,
    /// Captured lines, for tests.
    Memory(Mutex<Vec<String>>),
}

/// One finished request, ready to be logged.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request method (`GET`, `POST`, …).
    pub method: &'static str,
    /// Raw request path.
    pub path: String,
    /// Normalised low-cardinality endpoint name.
    pub endpoint: &'static str,
    /// Corpus the request resolved to, when any.
    pub corpus: Option<String>,
    /// HTTP status code returned.
    pub status: u16,
    /// Wall-clock total for the request, nanoseconds.
    pub total_nanos: u64,
    /// Per-segment exclusive timings `(phase, nanos)`, in recording order.
    pub segments: Vec<(&'static str, u64)>,
}

/// A JSON-lines access log with level and slow-threshold gating.
pub struct RequestLog {
    level: LogLevel,
    slow_nanos: u64,
    next_id: AtomicU64,
    sink: Sink,
}

impl std::fmt::Debug for RequestLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestLog")
            .field("level", &self.level)
            .field("slow_nanos", &self.slow_nanos)
            .finish_non_exhaustive()
    }
}

impl RequestLog {
    /// A log writing JSON lines to stderr. `slow_millis` marks requests
    /// as slow (and forces them through at `Error` level).
    pub fn stderr(level: LogLevel, slow_millis: u64) -> Self {
        Self {
            level,
            slow_nanos: slow_millis.saturating_mul(1_000_000),
            next_id: AtomicU64::new(1),
            sink: Sink::Stderr,
        }
    }

    /// A log capturing lines in memory, for tests; read back with
    /// [`captured`](Self::captured).
    pub fn in_memory(level: LogLevel, slow_millis: u64) -> Self {
        Self {
            level,
            slow_nanos: slow_millis.saturating_mul(1_000_000),
            next_id: AtomicU64::new(1),
            sink: Sink::Memory(Mutex::new(Vec::new())),
        }
    }

    /// The configured level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Lines captured by an in-memory sink (empty for stderr sinks).
    pub fn captured(&self) -> Vec<String> {
        match &self.sink {
            Sink::Stderr => Vec::new(),
            Sink::Memory(lines) => lines.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }

    /// Whether a request with this status and total would produce a line.
    /// Callers on hot paths check this *before* building a
    /// [`RequestRecord`] — at the default `Error` level virtually every
    /// request is discarded, and the record's owned path/segments aren't
    /// worth allocating just to drop.
    pub fn would_log(&self, status: u16, total_nanos: u64) -> bool {
        let slow = self.slow_nanos > 0 && total_nanos >= self.slow_nanos;
        match self.level {
            LogLevel::Off => false,
            LogLevel::Error => status >= 500 || slow,
            LogLevel::Info | LogLevel::Debug => true,
        }
    }

    /// Logs one finished request if the gate passes. Returns `true` when
    /// a line was emitted.
    pub fn log(&self, record: &RequestRecord) -> bool {
        let slow = self.slow_nanos > 0 && record.total_nanos >= self.slow_nanos;
        if !self.would_log(record.status, record.total_nanos) {
            return false;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let line = render_line(id, record, slow);
        match &self.sink {
            Sink::Stderr => {
                let stderr = std::io::stderr();
                let mut guard = stderr.lock();
                let _ = writeln!(guard, "{line}");
            }
            Sink::Memory(lines) => {
                lines.lock().unwrap_or_else(|e| e.into_inner()).push(line);
            }
        }
        true
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_line(id: u64, record: &RequestRecord, slow: bool) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut out = String::with_capacity(192);
    out.push_str("{\"ts_ms\":");
    out.push_str(&ts_ms.to_string());
    out.push_str(",\"id\":");
    out.push_str(&id.to_string());
    out.push_str(",\"method\":");
    push_json_string(&mut out, record.method);
    out.push_str(",\"path\":");
    push_json_string(&mut out, &record.path);
    out.push_str(",\"endpoint\":");
    push_json_string(&mut out, record.endpoint);
    out.push_str(",\"corpus\":");
    match &record.corpus {
        Some(corpus) => push_json_string(&mut out, corpus),
        None => out.push_str("null"),
    }
    out.push_str(",\"status\":");
    out.push_str(&record.status.to_string());
    out.push_str(",\"total_us\":");
    out.push_str(&(record.total_nanos / 1_000).to_string());
    out.push_str(",\"slow\":");
    out.push_str(if slow { "true" } else { "false" });
    out.push_str(",\"segments\":{");
    for (i, (phase, nanos)) in record.segments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, &format!("{phase}_us"));
        out.push(':');
        out.push_str(&(nanos / 1_000).to_string());
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(status: u16, total_nanos: u64) -> RequestRecord {
        RequestRecord {
            method: "POST",
            path: "/align".to_string(),
            endpoint: "align",
            corpus: Some("pt-tiny".to_string()),
            status,
            total_nanos,
            segments: vec![("req_queue_wait", 10_000), ("req_compute", 2_000_000)],
        }
    }

    #[test]
    fn info_logs_every_request_as_json() {
        let log = RequestLog::in_memory(LogLevel::Info, 250);
        assert!(log.log(&record(200, 500_000)));
        let lines = log.captured();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"endpoint\":\"align\""), "{line}");
        assert!(line.contains("\"corpus\":\"pt-tiny\""), "{line}");
        assert!(line.contains("\"status\":200"), "{line}");
        assert!(line.contains("\"req_compute_us\":2000"), "{line}");
        assert!(line.contains("\"slow\":false"), "{line}");
    }

    #[test]
    fn error_level_gates_on_status_and_slowness() {
        let log = RequestLog::in_memory(LogLevel::Error, 1);
        assert!(!log.log(&record(200, 100_000)), "fast 200 suppressed");
        assert!(log.log(&record(503, 100_000)), "5xx always logged");
        assert!(log.log(&record(200, 5_000_000)), "slow 200 logged");
        assert!(log.captured()[1].contains("\"slow\":true"));
    }

    #[test]
    fn off_logs_nothing() {
        let log = RequestLog::in_memory(LogLevel::Off, 0);
        assert!(!log.log(&record(500, u64::MAX)));
        assert!(log.captured().is_empty());
    }

    #[test]
    fn level_parses_and_displays() {
        assert_eq!("info".parse::<LogLevel>().unwrap(), LogLevel::Info);
        assert_eq!("OFF".parse::<LogLevel>().unwrap(), LogLevel::Off);
        assert!("verbose".parse::<LogLevel>().is_err());
        assert_eq!(LogLevel::Debug.to_string(), "debug");
    }
}
