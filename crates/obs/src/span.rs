//! Scoped span timers with exclusive-time attribution.
//!
//! A [`Span`] measures one named phase. Spans nest on a thread-local
//! stack; when a span finishes, the time its *children* spent is
//! subtracted, so each phase is charged only its **exclusive** time and a
//! nest of spans never double-counts a nanosecond. The exclusive time is
//! recorded into the process-wide `wm_phase_seconds{phase=…}` histogram
//! and, when a request context is open on the thread (see
//! [`crate::request`]), appended to that request's segment list.
//!
//! Spans are deliberately cheap: entering is a thread-local push and an
//! `Instant::now()`; finishing is a pop, a subtraction and one histogram
//! record. The global kill switch ([`crate::set_enabled`]) turns both into
//! near no-ops so the instrumentation overhead itself can be measured.
//!
//! Spans are `!Send` — a span must finish on the thread that entered it,
//! which the type system enforces. Drop order is LIFO by construction
//! (values drop in reverse declaration order); `finish`/`Drop` on an
//! out-of-order span would mis-attribute time, not corrupt state.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

/// One open phase on the thread's span stack.
struct Frame {
    phase: &'static str,
    start: Instant,
    /// Total (inclusive) nanoseconds already consumed by finished child
    /// spans of this frame.
    child_nanos: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// A scoped timer for one named phase. Created by [`Span::enter`];
/// recording happens in [`finish`](Span::finish) or on drop.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    /// False once finished, and for spans created while the kill switch
    /// is off.
    active: bool,
    /// Opts out of `Send`/`Sync`: the frame lives in this thread's stack.
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// Opens a span for `phase` on this thread's stack.
    ///
    /// `phase` becomes the `phase` label of `wm_phase_seconds`, so it must
    /// be low-cardinality (a fixed set of compile-time names).
    pub fn enter(phase: &'static str) -> Self {
        if !crate::enabled() {
            return Self {
                active: false,
                _not_send: PhantomData,
            };
        }
        STACK.with(|stack| {
            stack.borrow_mut().push(Frame {
                phase,
                start: Instant::now(),
                child_nanos: 0,
            });
        });
        Self {
            active: true,
            _not_send: PhantomData,
        }
    }

    /// Closes the span now and returns its **exclusive** nanoseconds
    /// (zero when the kill switch was off at entry).
    pub fn finish(mut self) -> u64 {
        self.complete()
    }

    fn complete(&mut self) -> u64 {
        if !self.active {
            return 0;
        }
        self.active = false;
        let Some((phase, exclusive)) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop()?;
            let total = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(parent) = stack.last_mut() {
                parent.child_nanos = parent.child_nanos.saturating_add(total);
            }
            Some((frame.phase, total.saturating_sub(frame.child_nanos)))
        }) else {
            return 0;
        };
        crate::record_phase(phase, exclusive);
        exclusive
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Serialises tests that read or toggle the process-wide kill switch.
    static KILL_SWITCH: Mutex<()> = Mutex::new(());

    #[test]
    fn nested_spans_attribute_exclusive_time() {
        let _guard = KILL_SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        let outer = Span::enter("test_outer");
        std::thread::sleep(Duration::from_millis(10));
        let inner = Span::enter("test_inner");
        std::thread::sleep(Duration::from_millis(20));
        let inner_ns = inner.finish();
        std::thread::sleep(Duration::from_millis(5));
        let outer_ns = outer.finish();
        assert!(
            inner_ns >= Duration::from_millis(20).as_nanos() as u64,
            "inner saw its own sleep: {inner_ns}"
        );
        // Outer is charged only its exclusive ~15ms, never the inner 20ms.
        assert!(
            outer_ns >= Duration::from_millis(15).as_nanos() as u64,
            "outer saw its exclusive sleeps: {outer_ns}"
        );
        assert!(
            outer_ns < Duration::from_millis(20).as_nanos() as u64,
            "outer must not absorb the inner phase: {outer_ns}"
        );
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = KILL_SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        let span = Span::enter("test_disabled");
        assert_eq!(span.finish(), 0);
        crate::set_enabled(true);
    }
}
