//! # wiki-obs — the WikiMatch observability layer
//!
//! A std-only (no crates.io) observability toolkit shared by every layer
//! of the suite:
//!
//! - [`metrics`] — a lock-free registry of counters, gauges and
//!   log-bucketed latency histograms with exact quantile bounds, rendered
//!   in the Prometheus text exposition format.
//! - [`span`] — scoped phase timers (`Span::enter("phase")`) that nest on
//!   a thread-local stack and attribute **exclusive** time to the
//!   innermost phase, recording into `wm_phase_seconds{phase=…}`.
//! - [`logging`] — structured JSON-lines access logs with level gating
//!   and a slow-request threshold.
//! - [`expo`] — a parser for the exposition format, used by matchbench
//!   and the integration tests to read `/metrics` back.
//!
//! Library layers (core, text) record through the process-wide
//! [`registry()`] so a single scrape covers build phases, snapshot I/O and
//! delta patches alongside the serving tier's request histograms. The
//! whole layer can be switched off with [`set_enabled`] to measure its
//! own overhead.

#![warn(missing_docs)]

pub mod expo;
pub mod logging;
pub mod metrics;
pub mod span;

pub use logging::{LogLevel, RequestLog, RequestRecord};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use span::Span;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Master switch: when off, spans are inert and [`record_phase`] is a
/// no-op. Defaults to on.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables span recording process-wide. Metrics handles keep
/// working either way; only the span/phase layer is gated, so the
/// instrumentation overhead itself can be benchmarked.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide metrics registry. Everything recorded here — engine
/// build phases, snapshot counters, request segments — appears in one
/// `/metrics` scrape.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Records `nanos` of exclusive time for `phase` into the process-wide
/// `wm_phase_seconds{phase=…}` histogram and, when a request context is
/// open on this thread, into its segment list. Called by [`Span`] on
/// finish; callable directly for pre-measured durations.
pub fn record_phase(phase: &'static str, nanos: u64) {
    if !enabled() {
        return;
    }
    // Resolved handles are cached per thread (phases are 'static, the set
    // is small and stable), so steady-state recording is two relaxed
    // atomic adds — the registry's read-lock-and-scan lookup would
    // otherwise dominate the cost of short request-path spans.
    thread_local! {
        static HANDLES: RefCell<Vec<(&'static str, Histogram)>> = const { RefCell::new(Vec::new()) };
    }
    HANDLES.with(|handles| {
        let mut handles = handles.borrow_mut();
        if let Some((_, histogram)) = handles.iter().find(|(name, _)| *name == phase) {
            histogram.record(nanos);
            return;
        }
        let histogram = registry().histogram_with(
            "wm_phase_seconds",
            "Exclusive time per instrumented phase.",
            &[("phase", phase)],
        );
        histogram.record(nanos);
        handles.push((phase, histogram));
    });
    request::note_segment(phase, nanos);
}

/// Thread-local request context: while open, finished spans also append
/// `(phase, nanos)` segments here, so the serving tier can attach
/// per-phase timings to access-log lines without threading a context
/// through every call.
pub mod request {
    use super::RefCell;

    /// Segments and metadata accumulated for the in-flight request.
    #[derive(Debug, Default, Clone)]
    pub struct RequestContext {
        /// `(phase, exclusive nanos)` in recording order.
        pub segments: Vec<(&'static str, u64)>,
        /// Corpus the request resolved to, when known.
        pub corpus: Option<String>,
    }

    thread_local! {
        static CURRENT: RefCell<Option<RequestContext>> = const { RefCell::new(None) };
    }

    /// Opens a fresh context on this thread, replacing any leftover one.
    pub fn begin() {
        CURRENT.with(|current| {
            *current.borrow_mut() = Some(RequestContext::default());
        });
    }

    /// Appends a segment to the open context, if any.
    pub fn note_segment(phase: &'static str, nanos: u64) {
        CURRENT.with(|current| {
            if let Some(context) = current.borrow_mut().as_mut() {
                context.segments.push((phase, nanos));
            }
        });
    }

    /// Records which corpus the in-flight request resolved to.
    pub fn note_corpus(name: &str) {
        CURRENT.with(|current| {
            if let Some(context) = current.borrow_mut().as_mut() {
                context.corpus = Some(name.to_string());
            }
        });
    }

    /// Closes and returns the context (`None` if none was open).
    pub fn take() -> Option<RequestContext> {
        CURRENT.with(|current| current.borrow_mut().take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_context_collects_segments_and_corpus() {
        request::begin();
        record_phase("test_ctx_phase", 1_500);
        request::note_corpus("pt-tiny");
        let context = request::take().expect("context open");
        assert_eq!(context.segments, vec![("test_ctx_phase", 1_500)]);
        assert_eq!(context.corpus.as_deref(), Some("pt-tiny"));
        assert!(request::take().is_none(), "take closes the context");
    }

    #[test]
    fn global_registry_is_shared() {
        let counter = registry().counter("wm_lib_test_total", "shared");
        counter.inc();
        assert!(registry().render().contains("wm_lib_test_total"));
    }
}
