//! A small parser for the Prometheus text exposition format, used by
//! matchbench (to scrape server-side histograms mid-run) and by the
//! integration tests (to validate what `/metrics` serves).
//!
//! It understands the subset [`crate::MetricsRegistry::render`] emits:
//! `# HELP`/`# TYPE` comments, and sample lines of the form
//! `name{key="value",…} number`.

use std::collections::BTreeMap;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The labels with `le` removed, as a canonical sorted key — used to
    /// group the series of one histogram child.
    fn series_key(&self) -> String {
        let mut pairs: Vec<&(String, String)> =
            self.labels.iter().filter(|(k, _)| k != "le").collect();
        pairs.sort();
        pairs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Parses an exposition document into samples, skipping comments and
/// blank lines. Returns an error describing the first malformed line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples
            .push(parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", line_no + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < open {
                return Err("mismatched braces".to_string());
            }
            let labels = parse_labels(&line[open + 1..close])?;
            (&line[..open], (labels, line[close + 1..].trim()))
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or_default();
            (name, (Vec::new(), parts.next().unwrap_or_default().trim()))
        }
    };
    let (labels, value_part) = rest;
    if name_part.is_empty() {
        return Err("empty metric name".to_string());
    }
    let value = parse_value(value_part)?;
    Ok(Sample {
        name: name_part.to_string(),
        labels,
        value,
    })
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|e| format!("bad value {other:?}: {e}")),
    }
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        // Key up to '='.
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err("empty label key".to_string());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} value not quoted"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(escaped) => value.push(escaped),
                    None => return Err("dangling escape".to_string()),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated value for label {key:?}"));
        }
        labels.push((key, value));
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(other) => return Err(format!("expected ',' between labels, got {other:?}")),
        }
    }
    Ok(labels)
}

/// One histogram child reassembled from its `_bucket`/`_sum`/`_count`
/// series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramScrape {
    /// `(le, cumulative count)` pairs in document order; the last entry
    /// is `le = +Inf`.
    pub buckets: Vec<(f64, f64)>,
    /// The `_sum` sample (seconds).
    pub sum: f64,
    /// The `_count` sample.
    pub count: f64,
}

impl HistogramScrape {
    /// Extracts the histogram named `name` whose non-`le` labels include
    /// `(label_key, label_value)` (pass `None` for an unlabelled child).
    pub fn extract(
        samples: &[Sample],
        name: &str,
        label: Option<(&str, &str)>,
    ) -> Option<HistogramScrape> {
        let matches = |s: &Sample| match label {
            Some((k, v)) => s.label(k) == Some(v),
            None => s.labels.iter().all(|(k, _)| k == "le"),
        };
        let bucket_name = format!("{name}_bucket");
        let sum_name = format!("{name}_sum");
        let count_name = format!("{name}_count");
        let mut scrape = HistogramScrape::default();
        let mut seen = false;
        for sample in samples {
            if !matches(sample) {
                continue;
            }
            if sample.name == bucket_name {
                let le = sample
                    .label("le")
                    .map(|v| parse_value(v).unwrap_or(f64::NAN))?;
                scrape.buckets.push((le, sample.value));
                seen = true;
            } else if sample.name == sum_name {
                scrape.sum = sample.value;
                seen = true;
            } else if sample.name == count_name {
                scrape.count = sample.value;
                seen = true;
            }
        }
        seen.then_some(scrape)
    }

    /// Groups every child of histogram `name` by its non-`le` label set.
    /// Keys are canonical `key=value,…` strings (empty for unlabelled).
    pub fn extract_all(samples: &[Sample], name: &str) -> BTreeMap<String, HistogramScrape> {
        let bucket_name = format!("{name}_bucket");
        let sum_name = format!("{name}_sum");
        let count_name = format!("{name}_count");
        let mut out: BTreeMap<String, HistogramScrape> = BTreeMap::new();
        for sample in samples {
            let key = sample.series_key();
            if sample.name == bucket_name {
                if let Some(le) = sample
                    .label("le")
                    .map(|v| parse_value(v).unwrap_or(f64::NAN))
                {
                    out.entry(key).or_default().buckets.push((le, sample.value));
                }
            } else if sample.name == sum_name {
                out.entry(key).or_default().sum = sample.value;
            } else if sample.name == count_name {
                out.entry(key).or_default().count = sample.value;
            }
        }
        out
    }

    /// True when bucket `le` bounds strictly increase and cumulative
    /// counts never decrease, ending at `+Inf == _count`.
    pub fn is_monotone(&self) -> bool {
        let mut previous_le = f64::NEG_INFINITY;
        let mut previous_count = 0.0f64;
        for &(le, count) in &self.buckets {
            if le <= previous_le || count < previous_count {
                return false;
            }
            previous_le = le;
            previous_count = count;
        }
        match self.buckets.last() {
            Some(&(le, count)) => le.is_infinite() && count == self.count,
            None => self.count == 0.0,
        }
    }

    /// The scrape-over-scrape delta (`self - baseline`), for isolating
    /// what one benchmark run contributed. Buckets are matched by `le`;
    /// a `le` absent from the baseline counts as zero there.
    pub fn delta_from(&self, baseline: &HistogramScrape) -> HistogramScrape {
        let base_at = |le: f64| {
            baseline
                .buckets
                .iter()
                .rev()
                .find(|(b, _)| *b <= le)
                .map(|(_, c)| *c)
                .unwrap_or(0.0)
        };
        HistogramScrape {
            buckets: self
                .buckets
                .iter()
                .map(|&(le, c)| (le, (c - base_at(le)).max(0.0)))
                .collect(),
            sum: self.sum - baseline.sum,
            count: self.count - baseline.count,
        }
    }

    /// Merges several scrapes of the *same* metric (e.g. one child per
    /// `endpoint` label) into one histogram. Because the renderer skips
    /// empty buckets, children can expose different `le` sets — each
    /// child's cumulative count is evaluated as a step function over the
    /// union of bounds, which is exact for cumulative histograms.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a HistogramScrape>) -> HistogramScrape {
        let parts: Vec<&HistogramScrape> = parts.into_iter().collect();
        let mut bounds: Vec<f64> = parts
            .iter()
            .flat_map(|p| p.buckets.iter().map(|&(le, _)| le))
            .collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup_by(|a, b| a == b);
        let cumulative_at = |p: &HistogramScrape, le: f64| {
            p.buckets
                .iter()
                .rev()
                .find(|&&(bound, _)| bound <= le)
                .map(|&(_, c)| c)
                .unwrap_or(0.0)
        };
        HistogramScrape {
            buckets: bounds
                .iter()
                .map(|&le| (le, parts.iter().map(|p| cumulative_at(p, le)).sum()))
                .collect(),
            sum: parts.iter().map(|p| p.sum).sum(),
            count: parts.iter().map(|p| p.count).sum(),
        }
    }

    /// The upper bound (in seconds) of the bucket holding the
    /// nearest-rank `q`-quantile, or `None` when empty. For the overflow
    /// bucket this is `+Inf`.
    pub fn quantile_upper(&self, q: f64) -> Option<f64> {
        if self.count <= 0.0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count).ceil().max(1.0);
        for &(le, cumulative) in &self.buckets {
            if cumulative >= rank {
                return Some(le);
            }
        }
        self.buckets.last().map(|&(le, _)| le)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_registry_output() {
        let registry = crate::MetricsRegistry::new();
        registry.counter("wm_expo_total", "a counter").add(5);
        let h = registry.histogram_with("wm_expo_seconds", "latency", &[("phase", "x")]);
        h.record(1_000); // 1 µs
        h.record(2_000_000_000); // 2 s
        let samples = parse_text(&registry.render()).expect("parses own output");
        let counter = samples
            .iter()
            .find(|s| s.name == "wm_expo_total")
            .expect("counter present");
        assert_eq!(counter.value, 5.0);
        let scrape = HistogramScrape::extract(&samples, "wm_expo_seconds", Some(("phase", "x")))
            .expect("histogram present");
        assert!(scrape.is_monotone(), "{scrape:?}");
        assert_eq!(scrape.count, 2.0);
        assert!((scrape.sum - 2.000001).abs() < 1e-9, "{}", scrape.sum);
        // p100 lands in the finite bucket holding the 2 s observation.
        let p100 = scrape.quantile_upper(1.0).unwrap();
        assert!(p100.is_finite() && (2.0..3.0).contains(&p100), "{p100}");
    }

    #[test]
    fn parses_labels_with_escapes() {
        let samples = parse_text("wm_x{a=\"q\\\"uote\",b=\"line\\nbreak\"} 1.5\n").expect("parses");
        assert_eq!(samples[0].label("a"), Some("q\"uote"));
        assert_eq!(samples[0].label("b"), Some("line\nbreak"));
        assert_eq!(samples[0].value, 1.5);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(
            parse_text("wm_bad{le=\"0.1\" 3\n").is_err(),
            "unterminated labels"
        );
        assert!(parse_text("wm_bad notanumber\n").is_err(), "bad value");
    }

    #[test]
    fn merge_handles_disjoint_bucket_sets() {
        // Children of one metric rendered with empty buckets skipped:
        // their `le` sets differ, so the merge must evaluate each child's
        // cumulative step function over the union of bounds.
        let a = HistogramScrape {
            buckets: vec![(0.1, 2.0), (f64::INFINITY, 2.0)],
            sum: 0.15,
            count: 2.0,
        };
        let b = HistogramScrape {
            buckets: vec![(1.0, 3.0), (f64::INFINITY, 4.0)],
            sum: 9.0,
            count: 4.0,
        };
        let merged = HistogramScrape::merge([&a, &b]);
        assert_eq!(
            merged.buckets,
            vec![(0.1, 2.0), (1.0, 5.0), (f64::INFINITY, 6.0)]
        );
        assert_eq!(merged.count, 6.0);
        assert!((merged.sum - 9.15).abs() < 1e-12);
        assert!(merged.is_monotone(), "{merged:?}");
    }

    #[test]
    fn delta_isolates_new_observations() {
        let before = HistogramScrape {
            buckets: vec![(0.1, 2.0), (f64::INFINITY, 3.0)],
            sum: 1.0,
            count: 3.0,
        };
        let after = HistogramScrape {
            buckets: vec![(0.1, 5.0), (f64::INFINITY, 7.0)],
            sum: 3.5,
            count: 7.0,
        };
        let delta = after.delta_from(&before);
        assert_eq!(delta.count, 4.0);
        assert_eq!(delta.buckets[0], (0.1, 3.0));
        assert!((delta.sum - 2.5).abs() < 1e-12);
    }
}
