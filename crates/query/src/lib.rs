//! # wiki-query
//!
//! A WikiQuery-style structured query processor over infobox corpora,
//! reproducing the case study of Section 5 of the paper.
//!
//! The paper's WikiQuery system answers *c-queries* — conjunctions of
//! constraints over entity types, attribute names and values, e.g.
//!
//! ```text
//! Actor(born = "Brazil", website = ?) and Film(award = "Oscar")
//! ```
//!
//! The case study runs ten such queries in Portuguese and Vietnamese over
//! the corresponding infobox corpora, then *translates* them into English
//! using the attribute correspondences discovered by WikiMatch and runs them
//! over the English infoboxes. Answer quality is measured with cumulative
//! gain; translated queries retrieve substantially more relevant answers
//! because the English corpus has better attribute coverage.
//!
//! * [`cquery`] — the c-query model and a small text parser.
//! * [`engine`] — query evaluation over a [`wiki_corpus::Corpus`].
//! * [`translate`] — query translation through derived correspondences,
//!   with constraint relaxation for untranslatable attributes.
//! * [`relevance`] — the oracle grader standing in for the paper's human
//!   evaluators.
//! * [`workload`] — the ten case-study queries (Table 4) adapted to the
//!   synthetic corpus.
//! * [`case_study`] — the end-to-end cumulative-gain experiment (Figure 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod cquery;
pub mod engine;
pub mod relevance;
pub mod translate;
pub mod workload;

pub use case_study::{run_case_study, run_case_study_with_engine, CaseStudyCurve};
pub use cquery::{CQuery, Constraint, Predicate, TypeClause};
pub use engine::{Answer, QueryEngine};
pub use relevance::RelevanceOracle;
pub use translate::CorrespondenceDictionary;
pub use workload::case_study_queries;
