//! The end-to-end cumulative-gain case study (Section 5, Figure 4).
//!
//! For every workload query the experiment:
//!
//! 1. answers the query in its source language over the foreign-language
//!    infoboxes and grades the top-`k` answers with the relevance oracle;
//! 2. translates the query into English through the WikiMatch
//!    correspondences (relaxing untranslatable constraints), answers it over
//!    the English infoboxes and grades those answers against the *original*
//!    query.
//!
//! The reported curves are the cumulative gain at each rank, summed over the
//! ten queries — the quantity plotted in Figure 4 (`Pt`, `Pt→En`, `Vn`,
//! `Vn→En`).

use serde::{Deserialize, Serialize};

use wiki_corpus::Dataset;
use wiki_eval::cumulative_gain_curve;
use wikimatch::{MatchEngine, TypeAlignment};

use crate::engine::QueryEngine;
use crate::relevance::RelevanceOracle;
use crate::translate::CorrespondenceDictionary;
use crate::workload::case_study_queries;

/// One cumulative-gain curve of the case study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudyCurve {
    /// Curve label ("Pt", "Pt->En", ...).
    pub label: String,
    /// Cumulative gain at ranks `1..=k`, summed over the workload queries.
    pub curve: Vec<f64>,
    /// Number of answers graded (over all queries).
    pub answers: usize,
    /// Number of constraints relaxed during translation (0 for the source
    /// run).
    pub relaxed_constraints: usize,
}

impl CaseStudyCurve {
    /// The total cumulative gain (the value at the last rank).
    pub fn total_gain(&self) -> f64 {
        self.curve.last().copied().unwrap_or(0.0)
    }
}

/// Runs the case study over a dataset and the WikiMatch alignments for it.
///
/// Returns two curves: answers in the source language, and answers for the
/// queries translated into English.
pub fn run_case_study(
    dataset: &Dataset,
    alignments: &[TypeAlignment],
    k: usize,
) -> Vec<CaseStudyCurve> {
    let engine = QueryEngine::new(&dataset.corpus);
    let oracle = RelevanceOracle::new(&dataset.corpus, &dataset.ground_truth);
    let dictionary = CorrespondenceDictionary::build(dataset, alignments);
    let queries = case_study_queries(dataset.other_language());

    let source_label = capitalise(dataset.other_language().code());
    let mut source_curve = vec![0.0; k];
    let mut source_answers = 0usize;
    let mut translated_curve = vec![0.0; k];
    let mut translated_answers = 0usize;
    let mut relaxed = 0usize;

    for query in &queries {
        // Source-language run.
        let answers = engine.answer(query, dataset.other_language(), k);
        let relevances: Vec<f64> = answers
            .iter()
            .map(|a| oracle.grade(a.article, query, dataset.other_language()))
            .collect();
        source_answers += answers.len();
        accumulate(&mut source_curve, &cumulative_gain_curve(&relevances, k));

        // Translated run over the English infoboxes.
        let (translated, stats) = dictionary.translate_query(query);
        relaxed += stats.relaxed;
        let answers = engine.answer(&translated, dataset.english(), k);
        let relevances: Vec<f64> = answers
            .iter()
            .map(|a| oracle.grade(a.article, query, dataset.other_language()))
            .collect();
        translated_answers += answers.len();
        accumulate(
            &mut translated_curve,
            &cumulative_gain_curve(&relevances, k),
        );
    }

    vec![
        CaseStudyCurve {
            label: source_label.clone(),
            curve: source_curve,
            answers: source_answers,
            relaxed_constraints: 0,
        },
        CaseStudyCurve {
            label: format!("{source_label}->En"),
            curve: translated_curve,
            answers: translated_answers,
            relaxed_constraints: relaxed,
        },
    ]
}

/// Runs the case study directly off a [`MatchEngine`] session: aligns every
/// type (in parallel, reusing the session's cached artifacts) and evaluates
/// the workload over the engine's dataset.
pub fn run_case_study_with_engine(engine: &MatchEngine, k: usize) -> Vec<CaseStudyCurve> {
    let alignments = engine.align_all();
    run_case_study(&engine.dataset(), &alignments, k)
}

fn accumulate(total: &mut [f64], curve: &[f64]) {
    for (t, c) in total.iter_mut().zip(curve.iter()) {
        *t += c;
    }
}

fn capitalise(code: &str) -> String {
    let mut chars = code.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::SyntheticConfig;

    #[test]
    fn translated_queries_gain_more_than_source_queries() {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let curves = run_case_study_with_engine(&engine, 20);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].label, "Pt");
        assert_eq!(curves[1].label, "Pt->En");
        // Curves are monotone.
        for curve in &curves {
            for w in curve.curve.windows(2) {
                assert!(w[1] >= w[0] - 1e-9);
            }
            assert_eq!(curve.curve.len(), 20);
        }
        // The headline result of Figure 4 — the English run retrieves more
        // cumulative gain — is established on the full-scale datasets by the
        // `figure4` reproduction binary; on this reduced test corpus we only
        // require the translated run to be competitive (within 10 %) and
        // non-trivial.
        assert!(
            curves[1].total_gain() >= 0.9 * curves[0].total_gain(),
            "{} vs {}",
            curves[1].total_gain(),
            curves[0].total_gain()
        );
        assert!(curves[1].total_gain() > 0.0);
    }

    #[test]
    fn vietnamese_case_study_runs() {
        let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
        let dataset = engine.dataset();
        let alignments = engine.align_all();
        let curves = run_case_study(&dataset, &alignments, 10);
        assert_eq!(curves[0].label, "Vi");
        assert!(curves[1].answers > 0);

        // The engine convenience produces the same curves.
        let via_engine = run_case_study_with_engine(&engine, 10);
        assert_eq!(via_engine[0].curve, curves[0].curve);
        assert_eq!(via_engine[1].curve, curves[1].curve);
    }
}
