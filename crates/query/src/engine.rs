//! Query evaluation over an infobox corpus.
//!
//! The engine answers a [`CQuery`] against the articles of one language
//! edition. Entities of the *primary* clause's type are the candidate
//! answers; each candidate is scored by the fraction of constraints it
//! satisfies, where secondary clauses are satisfied through hyperlink joins
//! (an answer article must link to — or be linked from — an article that
//! satisfies the secondary clause). Candidates are ranked by score and the
//! top-`k` are returned, mirroring WikiQuery's behaviour of returning
//! partially matching answers for relaxed queries.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use wiki_corpus::{Article, ArticleId, Corpus, Language};
use wiki_text::{normalize, normalize_label, parse_value};

use crate::cquery::{CQuery, Constraint, Predicate, TypeClause};

/// A ranked answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// The answering article.
    pub article: ArticleId,
    /// Title of the answering article.
    pub title: String,
    /// Fraction of query constraints satisfied, in `[0, 1]`.
    pub score: f64,
}

/// The query engine over one corpus.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    corpus: &'a Corpus,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over a corpus.
    pub fn new(corpus: &'a Corpus) -> Self {
        Self { corpus }
    }

    /// Answers `query` against the articles of `language`, returning the
    /// top-`k` candidates by score (ties broken by title).
    pub fn answer(&self, query: &CQuery, language: &Language, k: usize) -> Vec<Answer> {
        let Some(primary) = query.primary() else {
            return Vec::new();
        };
        let secondary = &query.clauses[1..];

        let mut answers: Vec<Answer> = self
            .corpus
            .articles_in(language)
            .filter(|article| type_matches(article, &primary.type_name))
            .map(|article| {
                let mut satisfied = 0.0;
                let mut total = 0.0;
                for constraint in &primary.constraints {
                    total += 1.0;
                    if constraint_satisfied(article, constraint) {
                        satisfied += 1.0;
                    }
                }
                for clause in secondary {
                    total += 1.0;
                    if self.join_satisfied(article, clause, language) {
                        satisfied += 1.0;
                    }
                }
                let score = if total == 0.0 { 0.0 } else { satisfied / total };
                Answer {
                    article: article.id,
                    title: article.title.clone(),
                    score,
                }
            })
            .filter(|answer| answer.score > 0.0)
            .collect();

        answers.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.title.cmp(&b.title))
        });
        answers.truncate(k);
        answers
    }

    /// Whether `article` is connected (by an outgoing or incoming hyperlink)
    /// to an article of `language` that satisfies `clause`.
    fn join_satisfied(&self, article: &Article, clause: &TypeClause, language: &Language) -> bool {
        // Outgoing links from the answer's infobox values.
        let outgoing: HashSet<&str> = article
            .infobox
            .attributes
            .iter()
            .flat_map(|a| a.links.iter())
            .map(|l| l.target.as_str())
            .collect();
        for target in &outgoing {
            if let Some(linked) = self.corpus.get_by_title(language, target) {
                if type_matches(linked, &clause.type_name) && satisfies_all(linked, clause) {
                    return true;
                }
            }
        }
        // Incoming links: articles of the clause type that link to the
        // answer.
        self.corpus
            .articles_in(language)
            .filter(|candidate| type_matches(candidate, &clause.type_name))
            .filter(|candidate| satisfies_all(candidate, clause))
            .any(|candidate| {
                candidate
                    .infobox
                    .attributes
                    .iter()
                    .flat_map(|a| a.links.iter())
                    .any(|l| l.target == article.title)
            })
    }
}

/// Whether the article's entity type matches the clause type name
/// (normalised comparison, allowing the query to use a prefix such as
/// "show" for "Television show").
pub(crate) fn type_matches(article: &Article, type_name: &str) -> bool {
    let article_type = normalize(&article.entity_type);
    let wanted = normalize(type_name);
    if wanted.is_empty() {
        return false;
    }
    article_type == wanted || article_type.contains(&wanted) || wanted.contains(&article_type)
}

/// Whether the article satisfies every constraint of a clause.
pub(crate) fn satisfies_all(article: &Article, clause: &TypeClause) -> bool {
    clause
        .constraints
        .iter()
        .all(|c| constraint_satisfied(article, c))
}

/// Whether the article satisfies one constraint.
pub(crate) fn constraint_satisfied(article: &Article, constraint: &Constraint) -> bool {
    for attr in &article.infobox.attributes {
        let name = normalize_label(&attr.name);
        if !constraint.attributes.iter().any(|wanted| &name == wanted) {
            continue;
        }
        if predicate_satisfied(&attr.value, &attr_link_texts(attr), &constraint.predicate) {
            return true;
        }
    }
    false
}

pub(crate) fn attr_link_texts(attr: &wiki_corpus::AttributeValue) -> Vec<String> {
    attr.links
        .iter()
        .flat_map(|l| [l.target.clone(), l.anchor.clone()])
        .collect()
}

/// Whether a raw value satisfies a predicate.
pub(crate) fn predicate_satisfied(
    value: &str,
    link_texts: &[String],
    predicate: &Predicate,
) -> bool {
    match predicate {
        Predicate::Projection => !value.trim().is_empty(),
        Predicate::Equals(wanted) => {
            let wanted = normalize(wanted);
            if wanted.is_empty() {
                return false;
            }
            let value_norm = normalize(value);
            value_norm.contains(&wanted)
                || link_texts.iter().any(|t| {
                    let t = normalize(t);
                    t.contains(&wanted) || wanted.contains(&t) && !t.is_empty()
                })
        }
        Predicate::GreaterThan(bound) => value_number(value).map(|n| n >= *bound).unwrap_or(false),
        Predicate::LessThan(bound) => value_number(value).map(|n| n <= *bound).unwrap_or(false),
    }
}

/// Extracts a numeric magnitude from a raw value (first atom that parses).
pub(crate) fn value_number(value: &str) -> Option<f64> {
    for atom in wiki_text::tokenize::split_value_atoms(value) {
        if let Some(n) = parse_value(&atom).as_number() {
            return Some(n);
        }
    }
    parse_value(value).as_number()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cquery::CQuery;
    use wiki_corpus::{AttributeValue, Infobox, Link};

    fn corpus() -> Corpus {
        let mut corpus = Corpus::new();

        let mut director_box = Infobox::new("Infobox Person");
        director_box.push(AttributeValue::text("nascimento", "1975"));
        director_box.push(AttributeValue::text("ocupação", "Diretor de cinema"));
        let director = Article::new("Jovem Diretor", Language::Pt, "Diretor", director_box);
        corpus.insert(director);

        let mut old_director_box = Infobox::new("Infobox Person");
        old_director_box.push(AttributeValue::text("nascimento", "1940"));
        let old_director =
            Article::new("Diretor Antigo", Language::Pt, "Diretor", old_director_box);
        corpus.insert(old_director);

        for (title, revenue, director_title) in [
            ("Filme Grande", "500 milhões", "Jovem Diretor"),
            ("Filme Pequeno", "2 milhões", "Jovem Diretor"),
            ("Filme Antigo", "900 milhões", "Diretor Antigo"),
        ] {
            let mut infobox = Infobox::new("Infobox Filme");
            infobox.push(AttributeValue::text("nome", title));
            infobox.push(AttributeValue::text("receita", revenue));
            infobox.push(AttributeValue::linked(
                "direção",
                director_title,
                vec![Link::plain(director_title)],
            ));
            infobox.push(AttributeValue::text("gênero", "Drama"));
            corpus.insert(Article::new(title, Language::Pt, "Filme", infobox));
        }
        corpus
    }

    #[test]
    fn single_clause_equality_and_projection() {
        let corpus = corpus();
        let engine = QueryEngine::new(&corpus);
        let query = CQuery::parse(r#"filme(nome=?, gênero="Drama")"#).unwrap();
        let answers = engine.answer(&query, &Language::Pt, 20);
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| (a.score - 1.0).abs() < 1e-9));
    }

    #[test]
    fn numeric_comparison_filters() {
        let corpus = corpus();
        let engine = QueryEngine::new(&corpus);
        let query = CQuery::parse("filme(nome=?, receita > 100000000)").unwrap();
        let answers = engine.answer(&query, &Language::Pt, 20);
        // Only the two films with revenue above 100 million fully satisfy
        // the query; the third matches just the projection.
        let full: Vec<_> = answers.iter().filter(|a| a.score > 0.99).collect();
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn join_through_hyperlinks() {
        let corpus = corpus();
        let engine = QueryEngine::new(&corpus);
        let query = CQuery::parse("filme(nome=?) and diretor(nascimento >= 1970)").unwrap();
        let answers = engine.answer(&query, &Language::Pt, 20);
        let top: Vec<&str> = answers
            .iter()
            .filter(|a| a.score > 0.99)
            .map(|a| a.title.as_str())
            .collect();
        assert!(top.contains(&"Filme Grande"));
        assert!(top.contains(&"Filme Pequeno"));
        assert!(!top.contains(&"Filme Antigo"));
    }

    #[test]
    fn unanswerable_constraints_degrade_score_not_drop_answers() {
        let corpus = corpus();
        let engine = QueryEngine::new(&corpus);
        let query = CQuery::parse(r#"filme(nome=?, orçamento > 10)"#).unwrap();
        let answers = engine.answer(&query, &Language::Pt, 20);
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| (a.score - 0.5).abs() < 1e-9));
    }

    #[test]
    fn top_k_and_empty_results() {
        let corpus = corpus();
        let engine = QueryEngine::new(&corpus);
        let query = CQuery::parse("filme(nome=?)").unwrap();
        assert_eq!(engine.answer(&query, &Language::Pt, 2).len(), 2);
        // No articles of this type in English.
        assert!(engine.answer(&query, &Language::En, 20).is_empty());
        // Unknown type.
        let query = CQuery::parse("planeta(nome=?)").unwrap();
        assert!(engine.answer(&query, &Language::Pt, 20).is_empty());
    }
}
