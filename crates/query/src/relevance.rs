//! The relevance oracle standing in for the paper's human evaluators.
//!
//! In the paper, two evaluators graded each of the top-20 answers on a
//! five-point relevance scale. This reproduction replaces them with an
//! oracle that grades an answer against the *original* (source-language)
//! query at the concept level: attribute names from the query and from the
//! answer's infoboxes are both mapped to language-independent concepts via
//! the corpus ground truth, and the answer may satisfy a constraint through
//! either its own infobox or the cross-linked infobox in the other
//! language. The grade is the fraction of satisfied constraints scaled to
//! 0–4, so an answer that fully satisfies the information need scores 4 and
//! an answer that only matches the entity type scores 0.

use std::collections::BTreeSet;

use wiki_corpus::{Article, ArticleId, Corpus, GroundTruth, Language};
use wiki_text::normalize_label;

use crate::cquery::{CQuery, Constraint, TypeClause};
use crate::engine::{attr_link_texts, predicate_satisfied, satisfies_all, type_matches};

/// Concept-level relevance grader.
#[derive(Debug, Clone, Copy)]
pub struct RelevanceOracle<'a> {
    corpus: &'a Corpus,
    ground_truth: &'a GroundTruth,
}

impl<'a> RelevanceOracle<'a> {
    /// Creates an oracle over a corpus and its ground truth.
    pub fn new(corpus: &'a Corpus, ground_truth: &'a GroundTruth) -> Self {
        Self {
            corpus,
            ground_truth,
        }
    }

    /// Grades an answer article against the original query on the 0–4 scale.
    ///
    /// `query_language` is the language the query's attribute names are
    /// written in (the source language of the case study).
    pub fn grade(&self, answer: ArticleId, query: &CQuery, query_language: &Language) -> f64 {
        let Some(article) = self.corpus.get(answer) else {
            return 0.0;
        };
        let Some(primary) = query.primary() else {
            return 0.0;
        };
        // The answer's infobox plus its cross-linked counterparts.
        let versions = self.language_versions(article);

        let mut satisfied: f64 = 0.0;
        let mut total: f64 = 0.0;
        for constraint in &primary.constraints {
            total += 1.0;
            if versions
                .iter()
                .any(|a| self.concept_constraint_satisfied(a, primary, constraint, query_language))
            {
                satisfied += 1.0;
            }
        }
        for clause in &query.clauses[1..] {
            total += 1.0;
            if versions.iter().any(|a| self.join_satisfied(a, clause)) {
                satisfied += 1.0;
            }
        }
        if total == 0.0 {
            return 0.0;
        }
        (4.0 * satisfied / total).round()
    }

    /// The article plus every cross-linked version of the same entity.
    fn language_versions(&self, article: &'a Article) -> Vec<&'a Article> {
        let mut versions = vec![article];
        for (language, title) in &article.cross_links {
            if let Some(other) = self.corpus.get_by_title(language, title) {
                versions.push(other);
            }
        }
        versions
    }

    /// Concept-level constraint satisfaction: the infobox attribute and the
    /// query attribute must share a ground-truth concept (or, failing that,
    /// a normalised name), and the predicate must hold on the value.
    fn concept_constraint_satisfied(
        &self,
        article: &Article,
        clause: &TypeClause,
        constraint: &Constraint,
        query_language: &Language,
    ) -> bool {
        let truth = clause
            .type_id
            .as_deref()
            .and_then(|id| self.ground_truth.for_type(id));
        // Concepts the query attribute names can denote.
        let query_concepts: BTreeSet<String> = truth
            .map(|t| {
                constraint
                    .attributes
                    .iter()
                    .flat_map(|a| t.concepts_of(query_language, a))
                    .collect()
            })
            .unwrap_or_default();

        for attr in &article.infobox.attributes {
            let name = normalize_label(&attr.name);
            let name_matches = constraint.attributes.iter().any(|a| a == &name);
            let concept_matches = truth
                .map(|t| {
                    let attr_concepts = t.concepts_of(&article.language, &name);
                    !query_concepts.is_disjoint(&attr_concepts)
                })
                .unwrap_or(false);
            if !(name_matches || concept_matches) {
                continue;
            }
            if predicate_satisfied(&attr.value, &attr_link_texts(attr), &constraint.predicate) {
                return true;
            }
        }
        false
    }

    /// Surface-level join check (like the engine's) used for secondary
    /// clauses.
    fn join_satisfied(&self, article: &Article, clause: &TypeClause) -> bool {
        article
            .infobox
            .attributes
            .iter()
            .flat_map(|a| a.links.iter())
            .filter_map(|l| self.corpus.get_by_title(&article.language, &l.target))
            .any(|linked| type_matches(linked, &clause.type_name) && satisfies_all(linked, clause))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cquery::{CQuery, Constraint, Predicate, TypeClause};
    use wiki_corpus::{AttributeValue, Infobox};

    fn setup() -> (Corpus, GroundTruth) {
        let mut corpus = Corpus::new();
        let mut gt = GroundTruth::new();
        gt.add_sense("film", Language::Pt, "gênero", "genre");
        gt.add_sense("film", Language::En, "genre", "genre");
        gt.add_sense("film", Language::Pt, "duração", "running_time");
        gt.add_sense("film", Language::En, "running time", "running_time");

        // English article whose Portuguese counterpart carries the genre.
        let mut en_box = Infobox::new("Infobox Film");
        en_box.push(AttributeValue::text("running time", "120 minutes"));
        let mut en = Article::new("The Hidden River", Language::En, "Film", en_box);
        en.add_cross_link(Language::Pt, "O Rio Escondido");
        corpus.insert(en);
        let mut pt_box = Infobox::new("Infobox Filme");
        pt_box.push(AttributeValue::text("gênero", "Drama"));
        let mut pt = Article::new("O Rio Escondido", Language::Pt, "Filme", pt_box);
        pt.add_cross_link(Language::En, "The Hidden River");
        corpus.insert(pt);
        (corpus, gt)
    }

    fn query() -> CQuery {
        CQuery::new(
            "drama films longer than 100 minutes",
            vec![TypeClause::new("filme")
                .with_type_id("film")
                .constraint(Constraint::new("gênero", Predicate::Equals("Drama".into())))
                .constraint(Constraint::new("duração", Predicate::GreaterThan(100.0)))],
        )
    }

    #[test]
    fn grades_across_language_versions_and_concepts() {
        let (corpus, gt) = setup();
        let oracle = RelevanceOracle::new(&corpus, &gt);
        let en_id = corpus
            .get_by_title(&Language::En, "The Hidden River")
            .unwrap()
            .id;
        // The English answer satisfies the running-time constraint through
        // the concept mapping and the genre constraint through its
        // Portuguese counterpart: full relevance.
        assert_eq!(oracle.grade(en_id, &query(), &Language::Pt), 4.0);
    }

    #[test]
    fn partial_satisfaction_gets_partial_grade() {
        let (mut corpus, gt) = setup();
        // An English film with only the running time, no Portuguese
        // counterpart.
        let mut ib = Infobox::new("Infobox Film");
        ib.push(AttributeValue::text("running time", "150 minutes"));
        let id = corpus.insert(Article::new("Lonely Film", Language::En, "Film", ib));
        let oracle = RelevanceOracle::new(&corpus, &gt);
        assert_eq!(oracle.grade(id, &query(), &Language::Pt), 2.0);
    }

    #[test]
    fn unknown_article_or_empty_query_grade_zero() {
        let (corpus, gt) = setup();
        let oracle = RelevanceOracle::new(&corpus, &gt);
        assert_eq!(oracle.grade(ArticleId(999), &query(), &Language::Pt), 0.0);
        let empty = CQuery::new("empty", vec![]);
        let some_id = corpus.articles().next().unwrap().id;
        assert_eq!(oracle.grade(some_id, &empty, &Language::Pt), 0.0);
    }
}
