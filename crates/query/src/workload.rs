//! The case-study query workload (Table 4 of the paper).
//!
//! The paper runs ten c-queries in Portuguese and Vietnamese. The queries
//! below keep the spirit of Table 4 (films by genre and revenue, artists by
//! genre and birth year, books, companies, characters, ...) while using the
//! attribute vocabulary of the synthetic corpus. Four of the original
//! queries touch entity types that do not exist in the Vietnamese dataset
//! (book, album, company, fictional character); following the paper's setup
//! — where such dangling constraints simply cannot be translated — the
//! Vietnamese workload replaces them with queries over the four available
//! types.

use wiki_corpus::Language;

use crate::cquery::{CQuery, Constraint, Predicate, TypeClause};

fn clause(type_name: &str, type_id: &str) -> TypeClause {
    TypeClause::new(type_name).with_type_id(type_id)
}

fn eq(attr: &str, value: &str) -> Constraint {
    Constraint::new(attr, Predicate::Equals(value.into()))
}

fn any_eq(attrs: &[&str], value: &str) -> Constraint {
    Constraint::any_of(attrs.iter().copied(), Predicate::Equals(value.into()))
}

fn proj(attr: &str) -> Constraint {
    Constraint::new(attr, Predicate::Projection)
}

fn gt(attr: &str, bound: f64) -> Constraint {
    Constraint::new(attr, Predicate::GreaterThan(bound))
}

fn lt(attr: &str, bound: f64) -> Constraint {
    Constraint::new(attr, Predicate::LessThan(bound))
}

/// The ten Portuguese case-study queries.
pub fn portuguese_queries() -> Vec<CQuery> {
    vec![
        CQuery::new(
            "Q1: Drama films and their directors",
            vec![clause("filme", "film")
                .constraint(proj("direção"))
                .constraint(eq("gênero", "Drama"))],
        ),
        CQuery::new(
            "Q2: Films spoken in English and the studio that produced them",
            vec![clause("filme", "film")
                .constraint(proj("estúdio"))
                .constraint(any_eq(&["idioma", "idioma original"], "Língua inglesa"))],
        ),
        CQuery::new(
            "Q3: Films that won an award, with their release date",
            vec![clause("filme", "film")
                .constraint(proj("prêmios"))
                .constraint(proj("lançamento"))],
        ),
        CQuery::new(
            "Q4: Films with gross revenue greater than 100 million",
            vec![clause("filme", "film")
                .constraint(proj("nome"))
                .constraint(gt("receita", 100_000_000.0))],
        ),
        CQuery::new(
            "Q5: Books with more than 300 pages by their publisher",
            vec![clause("livro", "book")
                .constraint(proj("editora"))
                .constraint(gt("páginas", 300.0))],
        ),
        CQuery::new(
            "Q6: Jazz artists and their record labels",
            vec![clause("artista", "artist")
                .constraint(proj("gravadora"))
                .constraint(eq("gênero", "Jazz"))],
        ),
        CQuery::new(
            "Q7: Fictional characters and who created them",
            vec![clause("personagem", "fictional_character")
                .constraint(proj("criado por"))
                .constraint(proj("primeira aparição"))],
        ),
        CQuery::new(
            "Q8: Rock albums recorded before 1980",
            vec![clause("álbum", "album")
                .constraint(eq("gênero", "Rock"))
                .constraint(lt("gravado em", 1980.0))],
        ),
        CQuery::new(
            "Q9: Progressive-rock artists born after 1950",
            vec![clause("artista", "artist")
                .constraint(eq("gênero", "Rock progressivo"))
                .constraint(gt("nascimento", 1950.0))],
        ),
        CQuery::new(
            "Q10: Companies with revenue above 10 billion and their headquarters",
            vec![clause("empresa", "company")
                .constraint(proj("sede"))
                .constraint(gt("faturamento", 10_000_000_000.0))],
        ),
    ]
}

/// The ten Vietnamese case-study queries.
pub fn vietnamese_queries() -> Vec<CQuery> {
    vec![
        CQuery::new(
            "Q1: Drama films and their directors",
            vec![clause("phim", "film")
                .constraint(proj("đạo diễn"))
                .constraint(eq("thể loại", "Chính kịch"))],
        ),
        CQuery::new(
            "Q2: Films spoken in English and their production company",
            vec![clause("phim", "film")
                .constraint(proj("hãng sản xuất"))
                .constraint(eq("ngôn ngữ", "Tiếng Anh"))],
        ),
        CQuery::new(
            "Q3: Films that won an award, with their release date",
            vec![clause("phim", "film")
                .constraint(proj("giải thưởng"))
                .constraint(proj("công chiếu"))],
        ),
        CQuery::new(
            "Q4: Films with revenue greater than 100 million",
            vec![clause("phim", "film")
                .constraint(proj("quốc gia"))
                .constraint(gt("doanh thu", 100_000_000.0))],
        ),
        CQuery::new(
            "Q5: Films longer than 150 minutes",
            vec![clause("phim", "film")
                .constraint(proj("đạo diễn"))
                .constraint(gt("thời lượng", 150.0))],
        ),
        CQuery::new(
            "Q6: Jazz artists and their record labels",
            vec![clause("nghệ sĩ", "artist")
                .constraint(proj("hãng đĩa"))
                .constraint(eq("thể loại", "Nhạc jazz"))],
        ),
        CQuery::new(
            "Q7: Actors who are also politicians",
            vec![clause("diễn viên", "actor")
                .constraint(proj("sinh"))
                .constraint(any_eq(&["vai trò", "công việc"], "Chính khách"))],
        ),
        CQuery::new(
            "Q8: Television shows with more than 100 episodes",
            vec![clause("chương trình truyền hình", "show")
                .constraint(proj("diễn viên"))
                .constraint(gt("số tập", 100.0))],
        ),
        CQuery::new(
            "Q9: Progressive-rock artists born after 1950",
            vec![clause("nghệ sĩ", "artist")
                .constraint(eq("thể loại", "Rock tiến bộ"))
                .constraint(gt("sinh", 1950.0))],
        ),
        CQuery::new(
            "Q10: Actors born in the United States",
            vec![clause("diễn viên", "actor")
                .constraint(proj("tên khác"))
                .constraint(eq("nơi sinh", "Hoa Kỳ"))],
        ),
    ]
}

/// The workload for a language pair's foreign language.
pub fn case_study_queries(language: &Language) -> Vec<CQuery> {
    match language {
        Language::Pt => portuguese_queries(),
        Language::Vn => vietnamese_queries(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_workloads_have_ten_queries() {
        assert_eq!(portuguese_queries().len(), 10);
        assert_eq!(vietnamese_queries().len(), 10);
        assert!(case_study_queries(&Language::En).is_empty());
    }

    #[test]
    fn every_query_has_a_typed_primary_clause() {
        for query in portuguese_queries()
            .iter()
            .chain(vietnamese_queries().iter())
        {
            let primary = query.primary().expect("primary clause");
            assert!(primary.type_id.is_some(), "{}", query.description);
            assert!(!primary.constraints.is_empty());
        }
    }

    #[test]
    fn attribute_names_are_normalised() {
        for query in portuguese_queries() {
            for clause in &query.clauses {
                for constraint in &clause.constraints {
                    for attr in &constraint.attributes {
                        assert_eq!(attr, &wiki_text::normalize_label(attr));
                    }
                }
            }
        }
    }
}
