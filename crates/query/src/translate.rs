//! Query translation through derived correspondences.
//!
//! The multilingual correspondences discovered by WikiMatch are stored in a
//! [`CorrespondenceDictionary`]. To answer a foreign-language query against
//! the English infoboxes, WikiQuery looks every type name and attribute name
//! up in that dictionary; attribute constraints that cannot be translated
//! are *relaxed* (dropped), exactly as described in Section 5 — answers are
//! still returned, but they tend to be less relevant, which is what limits
//! the gain for the Vietnamese dataset.

use std::collections::HashMap;

use wiki_corpus::Dataset;
use wiki_text::{normalize, normalize_label};
use wiki_translate::TitleDictionary;
use wikimatch::{match_entity_types, TypeAlignment};

use crate::cquery::{CQuery, Constraint, Predicate, TypeClause};

/// A dictionary of type-label and attribute correspondences plus the value
/// dictionary, used to translate c-queries from the foreign language into
/// English.
#[derive(Debug, Clone)]
pub struct CorrespondenceDictionary {
    /// normalised foreign type label → English type label.
    type_map: HashMap<String, String>,
    /// (type id, normalised foreign attribute) → English attributes.
    attr_map: HashMap<(String, String), Vec<String>>,
    /// normalised foreign type label → type id.
    type_ids: HashMap<String, String>,
    /// type id → English type label (from the catalog pairings).
    en_label_by_id: HashMap<String, String>,
    /// Title dictionary for translating constraint values.
    values: TitleDictionary,
}

/// Deterministic fuzzy label lookup: among entries whose label contains (or
/// is contained in) `wanted`, picks the most specific — longest label,
/// ties broken lexicographically. A plain `HashMap::iter().find(..)` here
/// would make the choice depend on hash-iteration order, which varies per
/// map instance.
fn fuzzy_lookup<'a>(map: &'a HashMap<String, String>, wanted: &str) -> Option<&'a str> {
    map.iter()
        .filter(|(label, _)| label.contains(wanted) || wanted.contains(label.as_str()))
        .max_by(|(a, _), (b, _)| a.len().cmp(&b.len()).then_with(|| b.cmp(a)))
        .map(|(_, value)| value.as_str())
}

/// Statistics of one query translation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Constraints translated successfully.
    pub translated: usize,
    /// Constraints dropped because no correspondence was available.
    pub relaxed: usize,
}

impl CorrespondenceDictionary {
    /// Builds the dictionary from a dataset and the alignments WikiMatch
    /// produced for it.
    pub fn build(dataset: &Dataset, alignments: &[TypeAlignment]) -> Self {
        let mut type_map = HashMap::new();
        let mut type_ids = HashMap::new();
        let mut en_label_by_id = HashMap::new();
        // Catalog pairings provide the label mapping; cross-language link
        // voting covers any remaining label.
        for pairing in &dataset.types {
            type_map.insert(normalize(&pairing.label_other), pairing.label_en.clone());
            type_ids.insert(normalize(&pairing.label_other), pairing.type_id.clone());
            en_label_by_id.insert(pairing.type_id.clone(), pairing.label_en.clone());
        }
        for tm in match_entity_types(&dataset.corpus, dataset.other_language(), dataset.english()) {
            type_map
                .entry(normalize(&tm.label_a))
                .or_insert(tm.label_b.clone());
        }

        let mut attr_map: HashMap<(String, String), Vec<String>> = HashMap::new();
        for alignment in alignments {
            for (other_attr, en_attr) in alignment.cross_pairs() {
                attr_map
                    .entry((alignment.type_id.clone(), other_attr))
                    .or_default()
                    .push(en_attr);
            }
        }
        let values = TitleDictionary::from_corpus(
            &dataset.corpus,
            dataset.other_language(),
            dataset.english(),
        );
        Self {
            type_map,
            attr_map,
            type_ids,
            en_label_by_id,
            values,
        }
    }

    /// Number of attribute correspondences available.
    pub fn len(&self) -> usize {
        self.attr_map.values().map(Vec::len).sum()
    }

    /// True when no attribute correspondences are available.
    pub fn is_empty(&self) -> bool {
        self.attr_map.is_empty()
    }

    /// Translates the English correspondents of a foreign attribute of a
    /// type (empty when unknown).
    pub fn attribute_correspondents(&self, type_id: &str, attribute: &str) -> Vec<String> {
        self.attr_map
            .get(&(type_id.to_string(), normalize_label(attribute)))
            .cloned()
            .unwrap_or_default()
    }

    /// The type id of a foreign type label used in a query, if known.
    pub fn type_id_of(&self, type_name: &str) -> Option<&str> {
        let wanted = normalize(type_name);
        if let Some(id) = self.type_ids.get(&wanted) {
            return Some(id);
        }
        // Tolerant lookup, mirroring the engine's type matching.
        fuzzy_lookup(&self.type_ids, &wanted)
    }

    /// Translates a query into English, relaxing untranslatable constraints.
    pub fn translate_query(&self, query: &CQuery) -> (CQuery, TranslationStats) {
        let mut stats = TranslationStats::default();
        let mut clauses = Vec::new();
        for clause in &query.clauses {
            let wanted = normalize(&clause.type_name);
            let type_id = clause
                .type_id
                .clone()
                .or_else(|| self.type_id_of(&clause.type_name).map(String::from));
            // Resolve the English label: a known type id is authoritative,
            // then the exact label mapping, then the fuzzy fallback.
            let en_type = type_id
                .as_ref()
                .and_then(|id| self.en_label_by_id.get(id).cloned())
                .or_else(|| self.type_map.get(&wanted).cloned())
                .or_else(|| fuzzy_lookup(&self.type_map, &wanted).map(String::from))
                .unwrap_or_else(|| clause.type_name.clone());

            let mut translated_clause = TypeClause::new(en_type);
            translated_clause.type_id = type_id.clone();
            for constraint in &clause.constraints {
                let mut en_attrs: Vec<String> = Vec::new();
                if let Some(type_id) = &type_id {
                    for attr in &constraint.attributes {
                        en_attrs.extend(self.attribute_correspondents(type_id, attr));
                    }
                }
                en_attrs.sort();
                en_attrs.dedup();
                if en_attrs.is_empty() {
                    // Relaxation: the constraint is dropped.
                    stats.relaxed += 1;
                    continue;
                }
                stats.translated += 1;
                let predicate = match &constraint.predicate {
                    Predicate::Equals(value) => {
                        Predicate::Equals(self.values.translate_or_keep(value))
                    }
                    other => other.clone(),
                };
                translated_clause.constraints.push(Constraint {
                    attributes: en_attrs,
                    predicate,
                });
            }
            // A clause whose constraints were all relaxed still participates
            // (it degenerates into a type-existence test) unless it is a
            // secondary clause with nothing to check.
            if !translated_clause.constraints.is_empty() || clauses.is_empty() {
                clauses.push(translated_clause);
            }
        }
        (
            CQuery::new(format!("{} [translated]", query.description), clauses),
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::SyntheticConfig;
    use wikimatch::MatchEngine;

    fn dictionary() -> (Dataset, CorrespondenceDictionary) {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let film = engine.align("film").unwrap();
        let actor = engine.align("actor").unwrap();
        let dict = CorrespondenceDictionary::build(&engine.dataset(), &[film, actor]);
        (engine.dataset().as_ref().clone(), dict)
    }

    #[test]
    fn builds_type_and_attribute_maps() {
        let (_dataset, dict) = dictionary();
        assert!(!dict.is_empty());
        assert_eq!(dict.type_id_of("filme"), Some("film"));
        let correspondents = dict.attribute_correspondents("film", "direção");
        assert!(
            correspondents.contains(&"directed by".to_string()),
            "{correspondents:?}"
        );
    }

    #[test]
    fn translates_types_attributes_and_values() {
        let (_dataset, dict) = dictionary();
        let query = CQuery::parse(r#"filme(direção=?, país="Estados Unidos")"#).unwrap();
        let (translated, stats) = dict.translate_query(&query);
        assert_eq!(translated.clauses[0].type_name, "Film");
        assert!(stats.translated >= 1);
        let attrs: Vec<&str> = translated.clauses[0]
            .constraints
            .iter()
            .flat_map(|c| c.attributes.iter().map(String::as_str))
            .collect();
        assert!(attrs.contains(&"directed by"), "{attrs:?}");
        // The constraint value is translated through the title dictionary.
        let has_translated_value = translated.clauses[0]
            .constraints
            .iter()
            .any(|c| matches!(&c.predicate, Predicate::Equals(v) if v == "united states"));
        // Value translation requires the country constraint to have been
        // translatable in the first place.
        if stats.relaxed == 0 {
            assert!(has_translated_value);
        }
    }

    #[test]
    fn untranslatable_constraints_are_relaxed() {
        let (_dataset, dict) = dictionary();
        let query = CQuery::parse("filme(atributo inexistente=?)").unwrap();
        let (translated, stats) = dict.translate_query(&query);
        assert_eq!(stats.relaxed, 1);
        assert_eq!(stats.translated, 0);
        // The primary clause survives as a bare type test.
        assert_eq!(translated.clauses.len(), 1);
        assert!(translated.clauses[0].constraints.is_empty());
    }
}
