//! The c-query model and parser.
//!
//! A c-query is a conjunction of *type clauses*; each clause constrains one
//! entity type with a set of attribute constraints. An attribute constraint
//! names one or more alternative attributes (the paper writes
//! `nascimento|data de nascimento >= 1970`) and a predicate: a projection
//! (`= ?`), an equality against a string value, or a numeric comparison.

use serde::{Deserialize, Serialize};

use wiki_text::normalize_label;

/// A predicate applied to an attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `= ?` — the attribute value is requested as output; satisfied by the
    /// attribute merely being present.
    Projection,
    /// `= "value"` — the value must mention the given string.
    Equals(String),
    /// `> n` / `>= n` — the value, interpreted numerically, must exceed `n`.
    GreaterThan(f64),
    /// `< n` / `<= n` — the value, interpreted numerically, must be below
    /// `n`.
    LessThan(f64),
}

/// One attribute constraint: alternative attribute names plus a predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Alternative attribute names (normalised); any may satisfy the
    /// constraint.
    pub attributes: Vec<String>,
    /// The predicate to evaluate.
    pub predicate: Predicate,
}

impl Constraint {
    /// Creates a constraint over a single attribute name.
    pub fn new<S: Into<String>>(attribute: S, predicate: Predicate) -> Self {
        Self {
            attributes: vec![normalize_label(&attribute.into())],
            predicate,
        }
    }

    /// Creates a constraint with alternative attribute names.
    pub fn any_of<I, S>(attributes: I, predicate: Predicate) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            attributes: attributes
                .into_iter()
                .map(|a| normalize_label(&a.into()))
                .collect(),
            predicate,
        }
    }
}

/// A constraint block over one entity type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeClause {
    /// The entity-type name as written in the query (e.g. `filme`).
    pub type_name: String,
    /// Language-independent type identifier when known (set by the workload
    /// builder; used by the relevance oracle).
    pub type_id: Option<String>,
    /// The attribute constraints.
    pub constraints: Vec<Constraint>,
}

impl TypeClause {
    /// Creates an empty clause for a type.
    pub fn new<S: Into<String>>(type_name: S) -> Self {
        Self {
            type_name: type_name.into(),
            type_id: None,
            constraints: Vec::new(),
        }
    }

    /// Attaches the language-independent type identifier.
    pub fn with_type_id<S: Into<String>>(mut self, type_id: S) -> Self {
        self.type_id = Some(type_id.into());
        self
    }

    /// Adds a constraint.
    pub fn constraint(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }
}

/// A conjunctive structured query over one or more entity types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CQuery {
    /// Optional human-readable description (the paper's English phrasing).
    pub description: String,
    /// The type clauses; the first clause is the *primary* one whose
    /// entities form the answers.
    pub clauses: Vec<TypeClause>,
}

impl CQuery {
    /// Creates a query from clauses.
    pub fn new<S: Into<String>>(description: S, clauses: Vec<TypeClause>) -> Self {
        Self {
            description: description.into(),
            clauses,
        }
    }

    /// The primary clause (the entities returned as answers).
    pub fn primary(&self) -> Option<&TypeClause> {
        self.clauses.first()
    }

    /// Parses the paper's textual c-query syntax, e.g.
    ///
    /// ```text
    /// filme(nome=?, receita > 10000000) and diretor(nascimento|data de nascimento >= 1970)
    /// ```
    ///
    /// Returns `None` on malformed input.
    pub fn parse(text: &str) -> Option<CQuery> {
        let mut clauses = Vec::new();
        for part in split_clauses(text) {
            let open = part.find('(')?;
            let close = part.rfind(')')?;
            let type_name = part[..open].trim();
            if type_name.is_empty() || close <= open {
                return None;
            }
            let mut clause = TypeClause::new(type_name);
            let body = &part[open + 1..close];
            for raw in split_top_level_commas(body) {
                let raw = raw.trim();
                if raw.is_empty() {
                    continue;
                }
                clause.constraints.push(parse_constraint(raw)?);
            }
            clauses.push(clause);
        }
        (!clauses.is_empty()).then(|| CQuery::new(text.trim(), clauses))
    }
}

/// Splits a query on the `and` connective between clauses.
fn split_clauses(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut rest = text;
    loop {
        // Find an " and " that sits after a closing parenthesis.
        if let Some(close) = rest.find(')') {
            let after = &rest[close + 1..];
            if let Some(pos) = after.to_lowercase().find(" and ") {
                // Only treat it as a separator if it precedes another clause.
                let absolute = close + 1 + pos;
                parts.push(rest[..absolute].trim());
                rest = rest[absolute + 5..].trim_start();
                continue;
            }
        }
        parts.push(rest.trim());
        break;
    }
    parts.into_iter().filter(|p| !p.is_empty()).collect()
}

/// Splits a clause body on commas that are not inside quotes.
fn split_top_level_commas(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in body.chars() {
        match c {
            '"' | '“' | '”' => {
                in_quotes = !in_quotes;
                current.push('"');
            }
            ',' if !in_quotes => parts.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    parts.push(current);
    parts
}

/// Parses one constraint: `attr[|attr2] (=|>|>=|<|<=) (?|"value"|number)`.
fn parse_constraint(raw: &str) -> Option<Constraint> {
    let (op_pos, op_len, op) = ["<=", ">=", "=", "<", ">"]
        .iter()
        .filter_map(|op| raw.find(op).map(|pos| (pos, op.len(), *op)))
        .min_by_key(|(pos, _, _)| *pos)?;
    let attrs: Vec<String> = raw[..op_pos]
        .split('|')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if attrs.is_empty() {
        return None;
    }
    let value = raw[op_pos + op_len..].trim();
    let predicate = match op {
        "=" => {
            if value == "?" || value.is_empty() {
                Predicate::Projection
            } else {
                Predicate::Equals(value.trim_matches('"').to_string())
            }
        }
        ">" | ">=" => Predicate::GreaterThan(parse_number(value)?),
        "<" | "<=" => Predicate::LessThan(parse_number(value)?),
        _ => return None,
    };
    Some(Constraint::any_of(attrs, predicate))
}

fn parse_number(value: &str) -> Option<f64> {
    wiki_text::parse_value(value.trim_matches('"')).as_number()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_clause_with_projection_and_equality() {
        let q = CQuery::parse(r#"ator(nome=?, ocupação="político")"#).unwrap();
        assert_eq!(q.clauses.len(), 1);
        let clause = &q.clauses[0];
        assert_eq!(clause.type_name, "ator");
        assert_eq!(clause.constraints.len(), 2);
        assert_eq!(clause.constraints[0].predicate, Predicate::Projection);
        assert_eq!(
            clause.constraints[1].predicate,
            Predicate::Equals("político".into())
        );
        // Attribute names are normalised.
        assert_eq!(clause.constraints[1].attributes, vec!["ocupacao"]);
    }

    #[test]
    fn parses_multi_clause_query_with_alternatives_and_comparisons() {
        let q = CQuery::parse(
            "filme(receita > 10000000) and diretor(nascimento|data de nascimento >= 1970)",
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 2);
        assert_eq!(
            q.clauses[0].constraints[0].predicate,
            Predicate::GreaterThan(10_000_000.0)
        );
        let alt = &q.clauses[1].constraints[0];
        assert_eq!(alt.attributes, vec!["nascimento", "data de nascimento"]);
        assert_eq!(alt.predicate, Predicate::GreaterThan(1970.0));
    }

    #[test]
    fn parses_less_than_and_quoted_numbers() {
        let q = CQuery::parse("livro(nome=?) and escritor(nascimento<1975)").unwrap();
        assert_eq!(
            q.clauses[1].constraints[0].predicate,
            Predicate::LessThan(1975.0)
        );
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(CQuery::parse("").is_none());
        assert!(CQuery::parse("filme").is_none());
        assert!(CQuery::parse("(nome=?)").is_none());
    }

    #[test]
    fn builder_api() {
        let clause = TypeClause::new("Filme")
            .with_type_id("film")
            .constraint(Constraint::new("gênero", Predicate::Equals("Drama".into())));
        let q = CQuery::new("films of genre drama", vec![clause]);
        assert_eq!(q.primary().unwrap().type_id.as_deref(), Some("film"));
        assert_eq!(
            q.primary().unwrap().constraints[0].attributes,
            vec!["genero"]
        );
    }

    #[test]
    fn commas_inside_quotes_do_not_split_constraints() {
        let q = CQuery::parse(r#"artista(nome=?, origem="Rio de Janeiro, Brasil")"#).unwrap();
        assert_eq!(q.clauses[0].constraints.len(), 2);
    }
}
