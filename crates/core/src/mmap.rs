//! A std-only `mmap(2)` wrapper for directly-addressable (v4) snapshots.
//!
//! The out-of-core registry tier maps snapshot files instead of decoding
//! them, so the OS page cache — not the process heap — holds corpus bytes,
//! and dropping the map is a complete eviction. No crates.io dependency is
//! available for this, so the module carries its own tiny FFI surface: raw
//! `mmap`/`munmap`/`madvise` on unix, and a plain `read`-into-`Vec` fallback
//! everywhere else (same API, no zero-copy benefit).
//!
//! This is the only module in the crate allowed to use `unsafe`; the crate
//! root carries `#![deny(unsafe_code)]`.
//!
//! [`MappedRegion`] implements [`ByteRegion`], so `wiki-text` arenas and
//! vectors (and the similarity channels above them) can borrow straight from
//! the mapping, and its [`ByteRegion::note_page_in`] hook counts how many
//! lazy materialisations each mapping served — the `page_in_count` surfaced
//! in `/stats` and `/metrics`.

#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use wiki_text::ByteRegion;

#[cfg(unix)]
mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;
    /// Pages are touched per (type, channel) on first use, not in file
    /// order, so tell the kernel not to read ahead aggressively.
    pub const MADV_RANDOM: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
    }
}

/// The backing storage: a real mapping on unix, owned bytes elsewhere (and
/// for empty files, which `mmap` rejects with `EINVAL`).
#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::os::raw::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is read-only (`PROT_READ`) and private; the raw
// pointer is never handed out mutably, so shared access from any thread only
// ever reads immutable pages.
#[cfg(unix)]
unsafe impl Send for Backing {}
#[cfg(unix)]
unsafe impl Sync for Backing {}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = *self {
            // SAFETY: `ptr`/`len` came from a successful `mmap` and are
            // unmapped exactly once, here.
            unsafe {
                ffi::munmap(ptr, len);
            }
        }
    }
}

/// A read-only memory-mapped file (unix) or its owned-bytes stand-in, with
/// page-in accounting. Shared behind `Arc` by every artifact borrowing from
/// the mapping; dropping the last `Arc` unmaps the file — that *is* the
/// registry's eviction primitive for the out-of-core tier.
#[derive(Debug)]
pub struct MappedRegion {
    backing: Backing,
    page_ins: AtomicU64,
    paged_in_bytes: AtomicU64,
}

impl MappedRegion {
    /// Maps `path` read-only. Empty files and non-unix targets fall back to
    /// reading the bytes onto the heap behind the same API.
    pub fn map_file(path: &Path) -> io::Result<MappedRegion> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file larger than usize"))?;
        let backing = Self::open_backing(&mut file, len)?;
        Ok(MappedRegion {
            backing,
            page_ins: AtomicU64::new(0),
            paged_in_bytes: AtomicU64::new(0),
        })
    }

    #[cfg(unix)]
    fn open_backing(file: &mut File, len: usize) -> io::Result<Backing> {
        use std::os::unix::io::AsRawFd;
        use std::ptr;

        if len == 0 {
            // mmap(2) rejects zero-length mappings with EINVAL.
            return Ok(Backing::Owned(Vec::new()));
        }
        // SAFETY: fd is open for reading and stays open across the call;
        // a PROT_READ + MAP_PRIVATE mapping of it aliases no Rust memory.
        let ptr = unsafe {
            ffi::mmap(
                ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        // Advisory only: ignore failures.
        // SAFETY: `ptr`/`len` denote the mapping established above.
        unsafe {
            ffi::madvise(ptr, len, ffi::MADV_RANDOM);
        }
        Ok(Backing::Mapped { ptr, len })
    }

    #[cfg(not(unix))]
    fn open_backing(file: &mut File, len: usize) -> io::Result<Backing> {
        use std::io::Read as _;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Backing::Owned(buf))
    }

    /// Number of bytes visible through the region.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// `true` when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the bytes live in a real `mmap` rather than the heap
    /// fallback — i.e. they count as *mapped*, not *resident*.
    pub fn is_os_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.backing, Backing::Mapped { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// How many lazy materialisations views have reported against this
    /// mapping (the `page_in_count` stat).
    pub fn page_in_count(&self) -> u64 {
        self.page_ins.load(Ordering::Relaxed)
    }

    /// Total bytes those materialisations copied out of the mapping.
    pub fn paged_in_bytes(&self) -> u64 {
        self.paged_in_bytes.load(Ordering::Relaxed)
    }
}

impl ByteRegion for MappedRegion {
    fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: the mapping is valid for `len` bytes for the
                // lifetime of `self`, is never written through, and `Drop`
                // is the only place it is released.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Backing::Owned(bytes) => bytes,
        }
    }

    fn note_page_in(&self, bytes: usize) {
        self.page_ins.fetch_add(1, Ordering::Relaxed);
        self.paged_in_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("wm-mmap-{}-{}", std::process::id(), tag));
        path
    }

    #[test]
    fn maps_a_file_and_reads_it_back() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let region = MappedRegion::map_file(&path).unwrap();
        assert_eq!(region.bytes(), &payload[..]);
        assert_eq!(region.len(), payload.len());
        #[cfg(unix)]
        assert!(region.is_os_mapped());
        drop(region);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_to_an_empty_region() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let region = MappedRegion::map_file(&path).unwrap();
        assert!(region.is_empty());
        assert!(!region.is_os_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_files_error_instead_of_panicking() {
        assert!(MappedRegion::map_file(&temp_path("missing")).is_err());
    }

    #[test]
    fn page_in_accounting_accumulates() {
        let path = temp_path("pagein");
        std::fs::write(&path, vec![7u8; 64]).unwrap();
        let region = Arc::new(MappedRegion::map_file(&path).unwrap());
        region.note_page_in(48);
        region.note_page_in(16);
        assert_eq!(region.page_in_count(), 2);
        assert_eq!(region.paged_in_bytes(), 64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn region_is_shareable_across_threads() {
        let path = temp_path("threads");
        std::fs::write(&path, vec![3u8; 4096]).unwrap();
        let region: Arc<MappedRegion> = Arc::new(MappedRegion::map_file(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let region = Arc::clone(&region);
                std::thread::spawn(move || region.bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 3 * 4096);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
