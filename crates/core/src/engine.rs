//! The corpus-scoped matching session: [`MatchEngine`] and the pluggable
//! [`SchemaMatcher`] trait.
//!
//! The one-shot entry points on [`WikiMatch`] rebuild the
//! bilingual [`TitleDictionary`] from the whole corpus for *every* entity
//! type they touch. [`MatchEngine`] inverts that: it is built **once per
//! dataset**, precomputing the title dictionary up front (and the
//! entity-type correspondences on first access), and caches the per-type
//! [`DualSchema`] / [`SimilarityTable`] artifacts the first time a type is
//! requested. Every subsequent request — another alignment of the same
//! type, a different matcher over the same type, an evaluation sweep —
//! reuses the shared artifacts instead of recomputing them.
//!
//! The session is **live**: [`MatchEngine::apply_delta`] (and the
//! [`insert_entity`](MatchEngine::insert_entity) /
//! [`update_entity`](MatchEngine::update_entity) /
//! [`remove_entity`](MatchEngine::remove_entity) conveniences) mutate the
//! corpus in place and *patch* the cached artifacts instead of discarding
//! them — see [`crate::delta`] for the invalidation rules that keep the
//! patched artifacts bit-identical to a cold rebuild.
//!
//! [`SchemaMatcher`] is the plugin interface: WikiMatch itself and every
//! baseline implement it, so harnesses can iterate over
//! `&dyn SchemaMatcher` values and run any matcher through the same engine
//! caches.
//!
//! ```
//! use wiki_corpus::{Dataset, SyntheticConfig};
//! use wikimatch::MatchEngine;
//!
//! let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
//! let engine = MatchEngine::builder(dataset).build();
//!
//! // The dictionary was computed once; every alignment reuses it.
//! let film = engine.align("film").expect("film type exists");
//! assert!(!film.cross_pairs().is_empty());
//!
//! // All types, per-type alignment running in parallel.
//! let all = engine.align_all();
//! assert_eq!(all.len(), engine.dataset().types.len());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use wiki_corpus::{Article, Dataset, Language, TypePairing};
use wiki_text::TermArena;
use wiki_translate::TitleDictionary;

use crate::alignment::AttributeAlignment;
use crate::config::WikiMatchConfig;
use crate::delta::{patch_prepared_type, CorpusDelta, DeltaReport, PatchContext};
use crate::pipeline::{TypeAlignment, WikiMatch};
use crate::schema::{CandidateIndex, DualSchema};
use crate::similarity::{ComputeMode, SimilarityTable};
use crate::snapshot::{corpus_fingerprint, EngineSnapshot, SnapshotError};
use crate::types::{match_entity_types, TypeMatch};

/// Recovers the guarded value of a poisoned lock.
///
/// The engine state only ever swaps *complete* consistent values under its
/// locks (and the per-type caches only add completed artifacts behind
/// `OnceLock` slots), so the state is consistent even when a panicking
/// thread (e.g. one caught by a serving layer's panic barrier) was holding
/// the lock — propagating the poison would needlessly wedge every other
/// worker sharing the session.
fn recover<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Mirrors one applied delta into the process-wide metrics registry, so a
/// `/metrics` scrape covers mutation activity across every live engine.
fn observe_delta(rows_recomputed: u64) {
    let registry = wiki_obs::registry();
    registry
        .counter(
            "wm_engine_deltas_applied_total",
            "Corpus deltas applied across all engine sessions.",
        )
        .inc();
    registry
        .counter(
            "wm_engine_rows_recomputed_total",
            "Similarity rows recomputed by delta patches.",
        )
        .add(rows_recomputed);
}

/// A cross-language attribute matcher operating on a prepared
/// dual-language schema.
///
/// This is the single plugin interface of the workspace: the WikiMatch
/// pipeline, the LSI / Bouma / COMA++ baselines and the correlation
/// orderings all implement it, so experiment harnesses can treat them as
/// interchangeable `&dyn SchemaMatcher` values and drive them through one
/// [`MatchEngine`].
pub trait SchemaMatcher: Send + Sync {
    /// Short static name of the approach ("WikiMatch", "Bouma", ...).
    fn name(&self) -> &'static str;

    /// Human-readable label including configuration details
    /// (e.g. `"LSI top-5"`); defaults to [`name`](SchemaMatcher::name).
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// Produces cross-language pairs `(foreign attribute, English
    /// attribute)` over a prepared schema and similarity table.
    fn align(&self, schema: &DualSchema, table: &SimilarityTable) -> Vec<(String, String)>;
}

impl SchemaMatcher for WikiMatch {
    fn name(&self) -> &'static str {
        "WikiMatch"
    }

    fn align(&self, schema: &DualSchema, table: &SimilarityTable) -> Vec<(String, String)> {
        let matches = AttributeAlignment::new(schema, table, *self.config()).run();
        matches.cross_language_pairs(schema, &schema.languages.0, &schema.languages.1)
    }
}

/// The shared per-type artifacts served by a [`MatchEngine`]: the
/// dual-language schema, its similarity evidence and the candidate index
/// the pruned similarity build used, behind `Arc`s so alignments and
/// callers can hold them without copying.
#[derive(Debug, Clone)]
pub struct PreparedType {
    /// The dual-language schema of the type.
    pub schema: Arc<DualSchema>,
    /// The pairwise similarity evidence over that schema.
    pub table: Arc<SimilarityTable>,
    /// The inverted candidate index over the schema's value and link terms
    /// (the pruning structure of [`ComputeMode::Pruned`]); persisted with
    /// the other artifacts by [`crate::snapshot`]. `None` when the table
    /// was built by a sparse mode (`Filtered` / `Lsh`), which probes its
    /// own transient structures and never patches or snapshots.
    pub index: Option<Arc<CandidateIndex>>,
    /// The type's interned vocabulary (shared with
    /// [`DualSchema::arena`](crate::DualSchema::arena) — exposed here so
    /// consumers holding prepared artifacts reach the term table without
    /// going through the schema).
    pub arena: Arc<TermArena>,
    /// Total `(id, weight)` entries across every attribute vector of the
    /// schema (all five evidence channels) — the per-type share of the
    /// [`EngineStats::vector_entries`] gauge, computed once at preparation
    /// time (see [`DualSchema::vector_entry_count`](crate::DualSchema::vector_entry_count))
    /// so stats polling never re-walks the attributes.
    pub vector_entries: u64,
    /// The mapped snapshot region these artifacts borrow from, when the
    /// type was opened out-of-core from a directly-addressable (v4)
    /// snapshot; `None` for heap-owned artifacts. One region is shared by
    /// every type of the snapshot, and holding it here keeps the mapping
    /// alive exactly as long as any artifact view needs it.
    pub region: Option<Arc<crate::mmap::MappedRegion>>,
}

impl PreparedType {
    /// Estimated heap bytes currently held by this type's artifacts: owned
    /// (or materialized-from-mapped) arena text, vector entries and table
    /// pairs. Mapped storage nothing has touched counts zero — those bytes
    /// belong on the mapped-bytes ledger, not the resident one.
    pub fn resident_bytes(&self) -> u64 {
        // Entry/pair sizes with padding: a (u32, f64) entry is 16 bytes, a
        // CandidatePair (2 usize + 3 f64) is 40.
        const VECTOR_ENTRY_BYTES: u64 = 16;
        const PAIR_BYTES: u64 = 40;
        let mut bytes = self.arena.heap_bytes() as u64;
        for attr in &self.schema.attributes {
            for vector in [
                &attr.values,
                &attr.translated_values,
                &attr.raw_values,
                &attr.translated_raw_values,
                &attr.links,
            ] {
                if vector.is_materialized() {
                    bytes += vector.len() as u64 * VECTOR_ENTRY_BYTES;
                }
            }
        }
        bytes + self.table.materialized_pairs() as u64 * PAIR_BYTES
    }
}

/// Point-in-time activity snapshot of one [`MatchEngine`] session, taken
/// with [`MatchEngine::stats`].
///
/// The counters behind it are plain relaxed atomics bumped on the request
/// paths — cheap enough that a serving layer can poll them per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Calls to [`MatchEngine::prepared`] (including the indirect ones made
    /// by `align` / `align_with` / the lazy accessors).
    pub prepared_requests: u64,
    /// Per-type artifact computations actually performed. Under concurrent
    /// first access this stays at one per type: callers coalesce on the
    /// per-type slot instead of duplicating the build.
    pub artifact_builds: u64,
    /// Matcher runs served (`align`, `align_with` and the `_all` variants).
    pub alignments: u64,
    /// Corpus deltas applied through [`MatchEngine::apply_delta`] and the
    /// single-entity mutation conveniences.
    pub deltas_applied: u64,
    /// Similarity pairs whose cosines were recomputed by delta patches,
    /// cumulatively — everything else kept its exact bits.
    pub rows_recomputed: u64,
    /// Direct-channel cosine evaluations performed by full table builds,
    /// cumulatively across the session (two per unordered pair under
    /// [`ComputeMode::Dense`]; fewer under the pruned / filtered / LSH
    /// candidate generators). Together with
    /// [`pairs_pruned`](Self::pairs_pruned) this measures how much of the
    /// quadratic frontier the active mode actually walks.
    pub pairs_scored: u64,
    /// Direct-channel cosine evaluations the candidate generator skipped,
    /// cumulatively — `pairs_scored + pairs_pruned` is exactly
    /// `n · (n − 1)` summed over full builds.
    pub pairs_pruned: u64,
    /// Number of per-type artifact sets currently cached.
    pub cached_types: usize,
    /// Distinct interned terms across the cached types' arenas — together
    /// with [`interned_bytes`](Self::interned_bytes) and
    /// [`vector_entries`](Self::vector_entries) this sizes the session's
    /// dominant memory consumers, so capacity planning for a serving
    /// registry's LRU is measurement instead of guesswork.
    pub interned_terms: u64,
    /// Total bytes of interned term text across the cached types' arenas.
    pub interned_bytes: u64,
    /// Total `(id, weight)` vector entries across all cached attribute
    /// vectors (each entry is 16 bytes: a `u32` id padded next to an `f64`
    /// weight).
    pub vector_entries: u64,
    /// Estimated heap bytes currently held by cached artifacts (owned
    /// storage plus whatever mapped storage has been materialized) — see
    /// [`PreparedType::resident_bytes`]. This is the quantity a
    /// `--max-resident-mb` budget constrains.
    pub resident_bytes: u64,
    /// Bytes of mapped snapshot regions backing cached artifacts (each
    /// distinct region counted once). These live in the OS page cache, not
    /// the process heap, and vanish when the map is dropped.
    pub mapped_bytes: u64,
    /// Lazy materialisations served by the mapped regions backing cached
    /// artifacts — how often a first touch paged a (type, channel) in.
    pub page_ins: u64,
}

/// Lock-free counters backing [`EngineStats`].
#[derive(Debug, Default)]
struct EngineCounters {
    prepared_requests: AtomicU64,
    artifact_builds: AtomicU64,
    alignments: AtomicU64,
    deltas_applied: AtomicU64,
    rows_recomputed: AtomicU64,
    pairs_scored: AtomicU64,
    pairs_pruned: AtomicU64,
}

/// The swappable session state. Everything a request path needs lives
/// behind **one** lock, so a single read acquisition yields a mutually
/// consistent `(dataset, dictionary, artifacts)` view — a delta landing
/// between two lock acquisitions can never pair a new corpus with old
/// artifacts or vice versa.
#[derive(Debug)]
struct EngineState {
    dataset: Arc<Dataset>,
    dictionary: Arc<TitleDictionary>,
    /// Fingerprint of the current corpus (see
    /// [`corpus_fingerprint`]) — kept current across deltas so the
    /// persistence layers can chain journal records without re-hashing.
    fingerprint: u64,
    type_matches: Option<Arc<Vec<TypeMatch>>>,
    // Per-type slots so concurrent first requests for the same type block on
    // one computation instead of racing to duplicate it. `apply_delta`
    // replaces the *whole map* with fresh slots; a stale in-flight build
    // then completes into an orphaned slot and is dropped, never mixed into
    // the new state.
    prepared: HashMap<String, Arc<OnceLock<PreparedType>>>,
}

// Compile-time Send + Sync audit: serving layers share one engine session
// (and the artifacts it hands out) across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MatchEngine>();
    assert_send_sync::<MatchEngineBuilder>();
    assert_send_sync::<PreparedType>();
    assert_send_sync::<EngineStats>();
};

/// Builder for [`MatchEngine`]; see [`MatchEngine::builder`].
#[derive(Debug)]
pub struct MatchEngineBuilder {
    dataset: Arc<Dataset>,
    config: WikiMatchConfig,
    compute_mode: ComputeMode,
    eager: bool,
}

impl MatchEngineBuilder {
    /// Overrides the WikiMatch configuration (thresholds, LSI settings,
    /// ablation switches) used by [`MatchEngine::align`] and the similarity
    /// tables.
    pub fn config(mut self, config: WikiMatchConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides how similarity tables are computed. The default is the
    /// candidate-pruned parallel build ([`ComputeMode::Pruned`]);
    /// [`ComputeMode::Dense`] selects the exact-equivalence fallback — the
    /// single-threaded all-pairs reference pass, which produces
    /// bit-identical tables (and is pinned to do so by tests).
    ///
    /// [`ComputeMode::Filtered`] and [`ComputeMode::Lsh`] build **sparse**
    /// tables (see [`crate::filter`] and [`crate::lsh`]): stored scores
    /// stay bit-identical to the dense pass, but sub-threshold (or, under
    /// LSH, missed) pairs are absent. Sparse sessions trade the exactness
    /// contracts away: snapshot capture is refused and corpus deltas drop
    /// the caches for lazy rebuild instead of patching.
    pub fn compute_mode(mut self, mode: ComputeMode) -> Self {
        self.compute_mode = mode;
        self
    }

    /// Precomputes the schema and similarity table of **every** type at
    /// build time (in parallel) instead of lazily on first use.
    pub fn eager(mut self) -> Self {
        self.eager = true;
        self
    }

    /// Builds the engine: computes the title dictionary exactly once
    /// (entity-type correspondences follow lazily, also exactly once),
    /// then (optionally) warms the per-type caches.
    pub fn build(self) -> MatchEngine {
        let dictionary_span = wiki_obs::Span::enter("dictionary_build");
        let dictionary = TitleDictionary::from_corpus(
            &self.dataset.corpus,
            self.dataset.other_language(),
            self.dataset.english(),
        );
        dictionary_span.finish();
        let fingerprint = corpus_fingerprint(&self.dataset);
        let engine = MatchEngine {
            config: self.config,
            compute_mode: self.compute_mode,
            state: RwLock::new(EngineState {
                dataset: self.dataset,
                dictionary: Arc::new(dictionary),
                fingerprint,
                type_matches: None,
                prepared: HashMap::new(),
            }),
            mutation: Mutex::new(()),
            counters: EngineCounters::default(),
        };
        if self.eager {
            engine.prepare_all();
        }
        engine
    }

    /// Builds the engine from a persisted [`EngineSnapshot`] instead of
    /// computing: the title dictionary and every per-type artifact set in
    /// the snapshot are adopted verbatim (bit-identical to the build they
    /// were captured from), so `artifact_builds` stays at zero for the
    /// restored types.
    ///
    /// Fails with [`SnapshotError::FingerprintMismatch`] when the snapshot
    /// was captured from a different corpus than `dataset`, and with
    /// [`SnapshotError::Malformed`] when it references entity types the
    /// dataset does not have. Types *not* present in the snapshot are
    /// computed lazily as usual.
    pub fn build_from_snapshot(
        self,
        snapshot: EngineSnapshot,
    ) -> Result<MatchEngine, SnapshotError> {
        // A snapshot holds exact-mode artifacts; adopting them into a
        // sparse-mode session would serve dense tables where the session
        // contract promises filtered / LSH ones.
        if !self.compute_mode.is_exact() {
            return Err(SnapshotError::InexactMode(self.compute_mode.to_string()));
        }
        let expected = corpus_fingerprint(&self.dataset);
        if snapshot.fingerprint != expected {
            return Err(SnapshotError::FingerprintMismatch {
                found: snapshot.fingerprint,
                expected,
            });
        }
        if snapshot.dictionary.source() != self.dataset.other_language()
            || snapshot.dictionary.target() != self.dataset.english()
        {
            return Err(SnapshotError::Malformed(format!(
                "snapshot dictionary translates {} -> {}, dataset needs {} -> {}",
                snapshot.dictionary.source(),
                snapshot.dictionary.target(),
                self.dataset.other_language(),
                self.dataset.english()
            )));
        }
        let mut prepared: HashMap<String, Arc<OnceLock<PreparedType>>> = HashMap::new();
        for (type_id, artifacts) in snapshot.types {
            if self.dataset.type_pairing(&type_id).is_none() {
                return Err(SnapshotError::Malformed(format!(
                    "snapshot carries unknown entity type {type_id:?}"
                )));
            }
            let slot = Arc::new(OnceLock::new());
            let _ = slot.set(artifacts);
            prepared.insert(type_id, slot);
        }
        let engine = MatchEngine {
            config: self.config,
            compute_mode: self.compute_mode,
            state: RwLock::new(EngineState {
                dataset: self.dataset,
                dictionary: Arc::new(snapshot.dictionary),
                fingerprint: expected,
                type_matches: None,
                prepared,
            }),
            mutation: Mutex::new(()),
            counters: EngineCounters::default(),
        };
        if self.eager {
            engine.prepare_all();
        }
        Ok(engine)
    }
}

/// A corpus-scoped matching session.
///
/// Construction precomputes the bilingual [`TitleDictionary`]; the
/// entity-type correspondences and the per-type
/// [`DualSchema`] / [`SimilarityTable`] pairs are each computed once on
/// first use and cached for the session. The engine is `Sync`:
/// [`align_all`](Self::align_all) runs per-type alignment on parallel
/// threads, and callers may share one engine across threads freely.
///
/// The session accepts live mutations: [`apply_delta`](Self::apply_delta)
/// swaps in a mutated corpus and incrementally patched artifacts under the
/// state lock, so concurrent readers always observe a consistent
/// `(corpus, artifacts)` pair — either entirely pre-delta or entirely
/// post-delta.
#[derive(Debug)]
pub struct MatchEngine {
    config: WikiMatchConfig,
    compute_mode: ComputeMode,
    state: RwLock<EngineState>,
    /// Serialises writers: deltas are applied one at a time (each patches
    /// against the state it captured), while readers keep flowing on the
    /// `state` lock until the final swap.
    mutation: Mutex<()>,
    counters: EngineCounters,
}

impl MatchEngine {
    /// Starts building an engine over a dataset.
    ///
    /// Accepts the dataset by value or as an [`Arc`] — the engine is the
    /// corpus-scoped session object, so it takes (shared) ownership.
    pub fn builder(dataset: impl Into<Arc<Dataset>>) -> MatchEngineBuilder {
        MatchEngineBuilder {
            dataset: dataset.into(),
            config: WikiMatchConfig::default(),
            compute_mode: ComputeMode::default(),
            eager: false,
        }
    }

    /// Builds an engine with the default configuration.
    pub fn new(dataset: impl Into<Arc<Dataset>>) -> Self {
        Self::builder(dataset).build()
    }

    /// The dataset this session is currently scoped to. The handle is a
    /// point-in-time capture: a delta applied later swaps the session to a
    /// new dataset value without disturbing holders of this one.
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&recover(self.state.read()).dataset)
    }

    /// Shared handle to the dataset (alias of [`dataset`](Self::dataset),
    /// kept for call sites that spell the intent explicitly).
    pub fn dataset_arc(&self) -> Arc<Dataset> {
        self.dataset()
    }

    /// The WikiMatch configuration in use.
    pub fn config(&self) -> &WikiMatchConfig {
        &self.config
    }

    /// The similarity-table traversal mode in use.
    pub fn compute_mode(&self) -> ComputeMode {
        self.compute_mode
    }

    /// The bilingual title dictionary of the current corpus (rebuilt on
    /// every applied delta).
    pub fn dictionary(&self) -> Arc<TitleDictionary> {
        Arc::clone(&recover(self.state.read()).dictionary)
    }

    /// Fingerprint of the current corpus (see
    /// [`corpus_fingerprint`]) — what a snapshot captured
    /// now would carry, and what journal records chain against.
    pub fn fingerprint(&self) -> u64 {
        recover(self.state.read()).fingerprint
    }

    /// The entity-type correspondences discovered from cross-language
    /// links (step 1 of the paper), computed once per corpus version on
    /// first access — alignment paths that never ask for them never pay
    /// for them, and a delta invalidates them along with everything else.
    pub fn type_matches(&self) -> Arc<Vec<TypeMatch>> {
        let (dataset, cached) = {
            let state = recover(self.state.read());
            (Arc::clone(&state.dataset), state.type_matches.clone())
        };
        if let Some(matches) = cached {
            return matches;
        }
        let computed = Arc::new(match_entity_types(
            &dataset.corpus,
            dataset.other_language(),
            dataset.english(),
        ));
        let mut state = recover(self.state.write());
        // Only publish against the dataset the computation saw; racing a
        // delta just means this caller keeps its (consistent) result while
        // the new state recomputes lazily.
        if Arc::ptr_eq(&state.dataset, &dataset) {
            if let Some(existing) = &state.type_matches {
                return Arc::clone(existing);
            }
            state.type_matches = Some(Arc::clone(&computed));
        }
        computed
    }

    /// The type pairings of the dataset (convenience passthrough).
    pub fn type_pairings(&self) -> Vec<TypePairing> {
        recover(self.state.read()).dataset.types.clone()
    }

    /// Number of per-type artifact sets currently cached.
    pub fn cached_types(&self) -> usize {
        recover(self.state.read())
            .prepared
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// The per-type artifact sets currently cached, in dataset type order —
    /// the capture surface of [`crate::snapshot::EngineSnapshot`]. Types
    /// never requested (and types still being computed by another thread)
    /// are absent.
    pub fn cached_artifacts(&self) -> Vec<(String, PreparedType)> {
        let state = recover(self.state.read());
        state
            .dataset
            .types
            .iter()
            .filter_map(|pairing| {
                state
                    .prepared
                    .get(&pairing.type_id)
                    .and_then(|slot| slot.get())
                    .map(|prepared| (pairing.type_id.clone(), prepared.clone()))
            })
            .collect()
    }

    /// Captures a mutually consistent `(dataset, dictionary, pairing,
    /// slot)` quadruple for one type under a single state-lock view.
    #[allow(clippy::type_complexity)]
    fn capture_type(
        &self,
        type_id: &str,
    ) -> Option<(
        Arc<Dataset>,
        Arc<TitleDictionary>,
        TypePairing,
        Arc<OnceLock<PreparedType>>,
    )> {
        {
            let state = recover(self.state.read());
            let pairing = state.dataset.type_pairing(type_id)?;
            if let Some(slot) = state.prepared.get(type_id) {
                return Some((
                    Arc::clone(&state.dataset),
                    Arc::clone(&state.dictionary),
                    pairing.clone(),
                    Arc::clone(slot),
                ));
            }
        }
        let mut state = recover(self.state.write());
        let pairing = state.dataset.type_pairing(type_id)?.clone();
        let dataset = Arc::clone(&state.dataset);
        let dictionary = Arc::clone(&state.dictionary);
        let slot = Arc::clone(state.prepared.entry(type_id.to_string()).or_default());
        Some((dataset, dictionary, pairing, slot))
    }

    /// The shared schema + similarity artifacts of one type, computing and
    /// caching them on first request. Returns `None` for unknown type ids.
    ///
    /// Concurrent first requests for the same type synchronize on a
    /// per-type slot: exactly one thread computes, the rest wait and share
    /// the result. The dataset, dictionary and slot are captured under one
    /// lock view, so a build racing a delta computes against a consistent
    /// pre-delta state (into a slot the delta already orphaned).
    pub fn prepared(&self, type_id: &str) -> Option<PreparedType> {
        self.counters
            .prepared_requests
            .fetch_add(1, Ordering::Relaxed);
        let (dataset, dictionary, pairing, slot) = self.capture_type(type_id)?;
        Some(
            slot.get_or_init(|| {
                self.counters
                    .artifact_builds
                    .fetch_add(1, Ordering::Relaxed);
                let schema = DualSchema::build(
                    &dataset.corpus,
                    dataset.other_language(),
                    &pairing.label_other,
                    &pairing.label_en,
                    &dictionary,
                );
                let (table, index, counts) = if self.compute_mode.is_exact() {
                    // The index is built once here (not inside the
                    // similarity pass) so it lives on as a prepared artifact
                    // the snapshot layer can persist next to the table.
                    let index = CandidateIndex::build(&schema);
                    let (table, counts) = SimilarityTable::compute_counted_with_index(
                        &schema,
                        self.config.lsi,
                        self.compute_mode,
                        &index,
                    );
                    (table, Some(Arc::new(index)), counts)
                } else {
                    // Sparse modes probe their own transient structures;
                    // there is no index artifact to persist or patch.
                    let (table, counts) = SimilarityTable::compute_counted(
                        &schema,
                        self.config.lsi,
                        self.compute_mode,
                    );
                    (table, None, counts)
                };
                self.counters
                    .pairs_scored
                    .fetch_add(counts.scored, Ordering::Relaxed);
                self.counters
                    .pairs_pruned
                    .fetch_add(counts.pruned, Ordering::Relaxed);
                let arena = Arc::clone(schema.arena());
                let vector_entries = schema.vector_entry_count();
                PreparedType {
                    schema: Arc::new(schema),
                    table: Arc::new(table),
                    index,
                    arena,
                    vector_entries,
                    region: None,
                }
            })
            .clone(),
        )
    }

    /// Lazy accessor for the dual-language schema of one type.
    pub fn schema(&self, type_id: &str) -> Option<Arc<DualSchema>> {
        self.prepared(type_id).map(|p| p.schema)
    }

    /// Lazy accessor for the similarity table of one type.
    pub fn similarity(&self, type_id: &str) -> Option<Arc<SimilarityTable>> {
        self.prepared(type_id).map(|p| p.table)
    }

    /// Warms the cache for every type of the dataset, in parallel.
    pub fn prepare_all(&self) {
        let dataset = self.dataset();
        dataset.types.par_iter().for_each(|pairing| {
            self.prepared(&pairing.type_id);
        });
    }

    /// Applies a batch of entity mutations to the corpus and patches every
    /// cached per-type artifact set incrementally (see [`crate::delta`]).
    ///
    /// Readers are never blocked while the patch computes: the new state —
    /// mutated dataset, rebuilt dictionary, patched artifacts, fresh
    /// fingerprint — is assembled on the side and swapped in under one
    /// short write-lock critical section. Concurrent deltas serialise on an
    /// internal mutation lock.
    pub fn apply_delta(&self, delta: &CorpusDelta) -> DeltaReport {
        let _mutation_guard = recover(self.mutation.lock());
        let (old_dataset, old_dictionary, fingerprint_before, cached) = {
            let state = recover(self.state.read());
            let cached: Vec<(String, PreparedType)> = state
                .dataset
                .types
                .iter()
                .filter_map(|pairing| {
                    state
                        .prepared
                        .get(&pairing.type_id)
                        .and_then(|slot| slot.get())
                        .map(|prepared| (pairing.type_id.clone(), prepared.clone()))
                })
                .collect();
            (
                Arc::clone(&state.dataset),
                Arc::clone(&state.dictionary),
                state.fingerprint,
                cached,
            )
        };
        if delta.is_empty() {
            return DeltaReport {
                fingerprint_before,
                fingerprint: fingerprint_before,
                ..DeltaReport::default()
            };
        }

        let mut new_dataset = (*old_dataset).clone();
        let (inserted, updated, removed) = delta.apply_to(&mut new_dataset.corpus);
        let dictionary_span = wiki_obs::Span::enter("dictionary_build");
        let new_dictionary = TitleDictionary::from_corpus(
            &new_dataset.corpus,
            new_dataset.other_language(),
            new_dataset.english(),
        );
        dictionary_span.finish();
        if !self.compute_mode.is_exact() {
            // Sparse tables (filtered / LSH) cannot be patched: the patch
            // contract is "bit-identical to a cold rebuild", and a sparse
            // table's membership depends on global state a row-level patch
            // does not see. Swap in the mutated corpus and drop the caches —
            // the next request rebuilds lazily against the new state.
            let fingerprint = corpus_fingerprint(&new_dataset);
            {
                let mut state = recover(self.state.write());
                state.dataset = Arc::new(new_dataset);
                state.dictionary = Arc::new(new_dictionary);
                state.fingerprint = fingerprint;
                state.type_matches = None;
                state.prepared = HashMap::new();
            }
            self.counters.deltas_applied.fetch_add(1, Ordering::Relaxed);
            observe_delta(0);
            return DeltaReport {
                inserted,
                updated,
                removed,
                types_patched: 0,
                rows_recomputed: 0,
                fingerprint_before,
                fingerprint,
            };
        }
        let patch_span = wiki_obs::Span::enter("delta_patch");
        let patched: Vec<(String, PreparedType, u64, bool)> = {
            let ctx = PatchContext::new(
                &old_dataset.corpus,
                &new_dataset.corpus,
                &old_dictionary,
                &new_dictionary,
                delta,
            );
            cached
                .par_iter()
                .map(|(type_id, old)| {
                    let pairing = new_dataset
                        .type_pairing(type_id)
                        .expect("cached type ids come from the dataset")
                        .clone();
                    let (prepared, rows, walked) =
                        patch_prepared_type(&ctx, &pairing, old, self.config.lsi);
                    (type_id.clone(), prepared, rows, walked)
                })
                .collect()
        };
        patch_span.finish();
        let fingerprint = corpus_fingerprint(&new_dataset);
        let types_patched = patched.iter().filter(|(_, _, _, walked)| *walked).count();
        let rows_recomputed: u64 = patched.iter().map(|(_, _, rows, _)| *rows).sum();
        let mut prepared: HashMap<String, Arc<OnceLock<PreparedType>>> = HashMap::new();
        for (type_id, artifacts, _, _) in patched {
            let slot = Arc::new(OnceLock::new());
            let _ = slot.set(artifacts);
            prepared.insert(type_id, slot);
        }
        {
            let mut state = recover(self.state.write());
            state.dataset = Arc::new(new_dataset);
            state.dictionary = Arc::new(new_dictionary);
            state.fingerprint = fingerprint;
            state.type_matches = None;
            state.prepared = prepared;
        }
        self.counters.deltas_applied.fetch_add(1, Ordering::Relaxed);
        self.counters
            .rows_recomputed
            .fetch_add(rows_recomputed, Ordering::Relaxed);
        observe_delta(rows_recomputed);
        DeltaReport {
            inserted,
            updated,
            removed,
            types_patched,
            rows_recomputed,
            fingerprint_before,
            fingerprint,
        }
    }

    /// Inserts an article (or replaces the live article with the same
    /// `(language, title)` key). Convenience wrapper over
    /// [`apply_delta`](Self::apply_delta).
    pub fn insert_entity(&self, article: Article) -> DeltaReport {
        self.apply_delta(&CorpusDelta::upsert(article))
    }

    /// Updates an article in place (alias of
    /// [`insert_entity`](Self::insert_entity) — upsert semantics).
    pub fn update_entity(&self, article: Article) -> DeltaReport {
        self.apply_delta(&CorpusDelta::upsert(article))
    }

    /// Tombstones the live article with the given `(language, title)` key.
    /// Convenience wrapper over [`apply_delta`](Self::apply_delta).
    pub fn remove_entity(&self, language: Language, title: impl Into<String>) -> DeltaReport {
        self.apply_delta(&CorpusDelta::remove(language, title))
    }

    /// Aligns one entity type with the engine's WikiMatch configuration.
    /// Returns `None` for unknown type ids.
    pub fn align(&self, type_id: &str) -> Option<TypeAlignment> {
        let languages = {
            let state = recover(self.state.read());
            state.dataset.languages.clone()
        };
        let prepared = self.prepared(type_id)?;
        self.counters.alignments.fetch_add(1, Ordering::Relaxed);
        let matches = AttributeAlignment::new(&prepared.schema, &prepared.table, self.config).run();
        Some(TypeAlignment {
            type_id: type_id.to_string(),
            schema: prepared.schema,
            table: prepared.table,
            matches,
            languages,
        })
    }

    /// Aligns every entity type of the dataset, running the per-type
    /// alignment in parallel. Results are in dataset type order.
    pub fn align_all(&self) -> Vec<TypeAlignment> {
        let dataset = self.dataset();
        dataset
            .types
            .par_iter()
            .map(|pairing| {
                self.align(&pairing.type_id)
                    .expect("dataset type pairing must align")
            })
            .collect()
    }

    /// Runs any [`SchemaMatcher`] over one type's shared artifacts.
    /// Returns `None` for unknown type ids.
    ///
    /// The similarity table handed to the matcher is the session's cached
    /// one, computed with the **engine's** `config.lsi` — that sharing is
    /// the point of the session. A `WikiMatch` plugin with different LSI
    /// settings will therefore see this engine's LSI scores; to change the
    /// LSI configuration itself, build the engine with
    /// [`MatchEngineBuilder::config`].
    pub fn align_with(
        &self,
        matcher: &dyn SchemaMatcher,
        type_id: &str,
    ) -> Option<Vec<(String, String)>> {
        let prepared = self.prepared(type_id)?;
        self.counters.alignments.fetch_add(1, Ordering::Relaxed);
        Some(matcher.align(&prepared.schema, &prepared.table))
    }

    /// A point-in-time snapshot of the session's activity counters and
    /// memory-footprint gauges — the cheap stats hook serving layers poll
    /// for health/metrics endpoints.
    pub fn stats(&self) -> EngineStats {
        let mut cached_types = 0usize;
        let mut interned_terms = 0u64;
        let mut interned_bytes = 0u64;
        let mut vector_entries = 0u64;
        let mut resident_bytes = 0u64;
        let mut mapped_bytes = 0u64;
        let mut page_ins = 0u64;
        {
            let state = recover(self.state.read());
            // One mapped region backs every type of a snapshot; count each
            // distinct region once.
            let mut seen_regions: Vec<*const crate::mmap::MappedRegion> = Vec::new();
            for prepared in state.prepared.values().filter_map(|slot| slot.get()) {
                cached_types += 1;
                interned_terms += prepared.arena.len() as u64;
                interned_bytes += prepared.arena.term_bytes() as u64;
                vector_entries += prepared.vector_entries;
                resident_bytes += prepared.resident_bytes();
                if let Some(region) = &prepared.region {
                    let ptr = Arc::as_ptr(region);
                    if !seen_regions.contains(&ptr) {
                        seen_regions.push(ptr);
                        mapped_bytes += region.len() as u64;
                        page_ins += region.page_in_count();
                    }
                }
            }
        }
        EngineStats {
            prepared_requests: self.counters.prepared_requests.load(Ordering::Relaxed),
            artifact_builds: self.counters.artifact_builds.load(Ordering::Relaxed),
            alignments: self.counters.alignments.load(Ordering::Relaxed),
            deltas_applied: self.counters.deltas_applied.load(Ordering::Relaxed),
            rows_recomputed: self.counters.rows_recomputed.load(Ordering::Relaxed),
            pairs_scored: self.counters.pairs_scored.load(Ordering::Relaxed),
            pairs_pruned: self.counters.pairs_pruned.load(Ordering::Relaxed),
            cached_types,
            interned_terms,
            interned_bytes,
            vector_entries,
            resident_bytes,
            mapped_bytes,
            page_ins,
        }
    }

    /// Runs any [`SchemaMatcher`] over every type, in parallel; returns
    /// `(type_id, cross pairs)` in dataset type order.
    pub fn align_all_with(
        &self,
        matcher: &dyn SchemaMatcher,
    ) -> Vec<(String, Vec<(String, String)>)> {
        let dataset = self.dataset();
        dataset
            .types
            .par_iter()
            .map(|pairing| {
                let pairs = self
                    .align_with(matcher, &pairing.type_id)
                    .expect("dataset type pairing must align");
                (pairing.type_id.clone(), pairs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::SyntheticConfig;

    fn engine() -> MatchEngine {
        MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build()
    }

    #[test]
    fn engine_caches_types_once() {
        let engine = engine();
        assert_eq!(engine.cached_types(), 0);
        let a = engine.schema("film").unwrap();
        assert_eq!(engine.cached_types(), 1);
        let b = engine.schema("film").unwrap();
        // Same allocation: the second request hit the cache.
        assert!(Arc::ptr_eq(&a, &b));
        engine.similarity("film").unwrap();
        assert_eq!(engine.cached_types(), 1);
    }

    #[test]
    fn unknown_type_is_none() {
        let engine = engine();
        assert!(engine.schema("not a type").is_none());
        assert!(engine.align("not a type").is_none());
        assert!(engine
            .align_with(&WikiMatch::default(), "not a type")
            .is_none());
    }

    #[test]
    fn align_shares_cached_artifacts() {
        let engine = engine();
        let alignment = engine.align("film").unwrap();
        let schema = engine.schema("film").unwrap();
        assert!(Arc::ptr_eq(&alignment.schema, &schema));
        assert!(!alignment.cross_pairs().is_empty());
    }

    #[test]
    fn align_all_covers_every_type_in_order() {
        let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
        let alignments = engine.align_all();
        assert_eq!(alignments.len(), engine.dataset().types.len());
        for (alignment, pairing) in alignments.iter().zip(&engine.dataset().types) {
            assert_eq!(alignment.type_id, pairing.type_id);
            assert!(alignment.schema.dual_count > 0);
        }
        assert_eq!(engine.cached_types(), engine.dataset().types.len());
    }

    #[test]
    fn dense_fallback_engine_matches_the_pruned_default() {
        let dataset = Arc::new(Dataset::pt_en(&SyntheticConfig::tiny()));
        let pruned = MatchEngine::builder(Arc::clone(&dataset)).build();
        let dense = MatchEngine::builder(dataset)
            .compute_mode(ComputeMode::Dense)
            .build();
        assert_eq!(pruned.compute_mode(), ComputeMode::Pruned);
        assert_eq!(dense.compute_mode(), ComputeMode::Dense);
        for type_id in ["film", "actor"] {
            let a = pruned.similarity(type_id).unwrap();
            let b = dense.similarity(type_id).unwrap();
            assert_eq!(a.pairs(), b.pairs(), "tables diverge for {type_id}");
            assert_eq!(
                pruned.align(type_id).unwrap().cross_pairs(),
                dense.align(type_id).unwrap().cross_pairs()
            );
        }
    }

    #[test]
    fn filtered_engine_serves_sparse_at_threshold_tables() {
        let dataset = Arc::new(Dataset::pt_en(&SyntheticConfig::tiny()));
        let dense = MatchEngine::builder(Arc::clone(&dataset))
            .compute_mode(ComputeMode::Dense)
            .build();
        let threshold = ComputeMode::DEFAULT_FILTER_THRESHOLD;
        let filtered = MatchEngine::builder(Arc::clone(&dataset))
            .compute_mode(ComputeMode::filtered(threshold))
            .build();
        let oracle = dense.prepared("film").unwrap();
        let sparse = filtered.prepared("film").unwrap();
        // Exact modes persist their candidate index; sparse modes have none.
        assert!(oracle.index.is_some());
        assert!(sparse.index.is_none());
        // Stored pairs are exactly the at-threshold ones, bit-identical.
        let mut stored = 0usize;
        for pair in oracle.table.pairs() {
            let hit = sparse.table.pair(pair.p, pair.q);
            if pair.vsim >= threshold || pair.lsim >= threshold {
                let found = hit.expect("at-threshold pair must be stored");
                stored += 1;
                if pair.vsim >= threshold {
                    assert_eq!(found.vsim.to_bits(), pair.vsim.to_bits());
                }
                if pair.lsim >= threshold {
                    assert_eq!(found.lsim.to_bits(), pair.lsim.to_bits());
                }
                assert_eq!(found.lsi.to_bits(), pair.lsi.to_bits());
            } else {
                assert!(hit.is_none(), "sub-threshold pair must be absent");
            }
        }
        assert_eq!(sparse.table.pairs().len(), stored);
        // The counters split the full quadratic frontier, and the filter
        // actually pruned something on this corpus.
        let n = sparse.schema.len() as u64;
        let stats = filtered.stats();
        assert_eq!(stats.pairs_scored + stats.pairs_pruned, n * (n - 1));
        assert!(stats.pairs_pruned > 0);
        // The dense session walked everything.
        let dense_stats = dense.stats();
        assert_eq!(dense_stats.pairs_scored, n * (n - 1));
        assert_eq!(dense_stats.pairs_pruned, 0);
    }

    #[test]
    fn sparse_mode_delta_drops_caches_and_rebuilds_lazily() {
        use wiki_corpus::{Article, AttributeValue, Infobox};
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny()))
            .compute_mode(ComputeMode::filtered(0.5))
            .build();
        engine.prepare_all();
        let types = engine.dataset().types.len();
        assert_eq!(engine.cached_types(), types);

        let mut infobox = Infobox::new("Infobox Film");
        infobox.push(AttributeValue::text("titulo", "Novo Filme"));
        let article = Article::new("Novo Filme", Language::Pt, "Filme", infobox);
        let report = engine.insert_entity(article);
        assert_eq!(report.inserted, 1);
        // Sparse tables are never patched: the delta swapped the corpus in
        // and dropped every cached artifact for lazy rebuild.
        assert_eq!(report.types_patched, 0);
        assert_eq!(report.rows_recomputed, 0);
        assert_ne!(report.fingerprint, report.fingerprint_before);
        assert_eq!(engine.cached_types(), 0);
        assert_eq!(engine.stats().deltas_applied, 1);

        // The lazily rebuilt table matches a cold build over the mutated
        // corpus exactly.
        let rebuilt = engine.similarity("film").unwrap();
        let cold = MatchEngine::builder(engine.dataset())
            .compute_mode(ComputeMode::filtered(0.5))
            .build();
        assert_eq!(rebuilt.pairs(), cold.similarity("film").unwrap().pairs());
    }

    #[test]
    fn eager_build_warms_the_cache() {
        let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny()))
            .eager()
            .build();
        assert_eq!(engine.cached_types(), engine.dataset().types.len());
    }

    #[test]
    fn stats_count_requests_builds_and_alignments() {
        let engine = engine();
        assert_eq!(engine.stats(), EngineStats::default());
        engine.align("film").unwrap();
        engine.align("film").unwrap();
        engine.schema("film").unwrap();
        let stats = engine.stats();
        assert_eq!(stats.alignments, 2);
        assert_eq!(stats.prepared_requests, 3);
        // Three requests, but the artifacts were built exactly once.
        assert_eq!(stats.artifact_builds, 1);
        assert_eq!(stats.cached_types, 1);
        // Unknown types count as requests but never build anything, and a
        // failed lookup is not a served alignment.
        assert!(engine.align("not a type").is_none());
        let stats = engine.stats();
        assert_eq!(stats.prepared_requests, 4);
        assert_eq!(stats.artifact_builds, 1);
        assert_eq!(stats.alignments, 2);
        // No mutations yet.
        assert_eq!(stats.deltas_applied, 0);
        assert_eq!(stats.rows_recomputed, 0);
    }

    #[test]
    fn stats_expose_memory_footprint_gauges() {
        let engine = engine();
        let cold = engine.stats();
        assert_eq!(cold.interned_terms, 0);
        assert_eq!(cold.interned_bytes, 0);
        assert_eq!(cold.vector_entries, 0);
        let film = engine.prepared("film").unwrap();
        let warm = engine.stats();
        // The gauges aggregate over cached types and agree with the
        // prepared artifacts they summarise.
        assert_eq!(warm.interned_terms, film.arena.len() as u64);
        assert_eq!(warm.interned_bytes, film.arena.term_bytes() as u64);
        assert_eq!(warm.vector_entries, film.vector_entries);
        assert!(warm.interned_terms > 0 && warm.vector_entries > 0);
        // The arena threaded through PreparedType is the schema's.
        assert!(Arc::ptr_eq(&film.arena, film.schema.arena()));
        // A second cached type adds to the gauges.
        let actor = engine.prepared("actor").unwrap();
        let both = engine.stats();
        assert_eq!(
            both.interned_terms,
            (film.arena.len() + actor.arena.len()) as u64
        );
        assert_eq!(
            both.vector_entries,
            film.vector_entries + actor.vector_entries
        );
    }

    #[test]
    fn wikimatch_is_a_schema_matcher() {
        let engine = engine();
        let matcher = WikiMatch::default();
        assert_eq!(SchemaMatcher::name(&matcher), "WikiMatch");
        assert_eq!(matcher.label(), "WikiMatch");
        let via_trait = engine.align_with(&matcher, "film").unwrap();
        let via_engine = engine.align("film").unwrap().cross_pairs();
        assert_eq!(via_trait, via_engine);
    }

    #[test]
    fn align_all_with_runs_a_plugin_over_every_type() {
        let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
        let results = engine.align_all_with(&WikiMatch::default());
        assert_eq!(results.len(), engine.dataset().types.len());
        for ((type_id, pairs), alignment) in results.iter().zip(engine.align_all()) {
            assert_eq!(type_id, &alignment.type_id);
            assert_eq!(pairs, &alignment.cross_pairs());
        }
    }

    #[test]
    fn empty_delta_is_a_cheap_no_op() {
        let engine = engine();
        let before = engine.fingerprint();
        let report = engine.apply_delta(&CorpusDelta::new());
        assert_eq!(
            report,
            DeltaReport {
                fingerprint_before: before,
                fingerprint: before,
                ..DeltaReport::default()
            }
        );
        assert_eq!(engine.stats().deltas_applied, 0);
    }

    #[test]
    fn apply_delta_swaps_dataset_dictionary_and_fingerprint() {
        use wiki_corpus::{Article, AttributeValue, Infobox};
        let engine = engine();
        engine.prepare_all();
        let before_fp = engine.fingerprint();
        let before_dataset = engine.dataset();
        let types = engine.dataset().types.len();

        let mut infobox = Infobox::new("Infobox Film");
        infobox.push(AttributeValue::text("titulo", "Novo Filme"));
        let article = Article::new("Novo Filme", Language::Pt, "Filme", infobox);
        let report = engine.insert_entity(article);

        assert_eq!(report.inserted, 1);
        // A link-free Portuguese film leaves the dictionary and clusters
        // alone, so only the film type is patched — every other cached
        // type carries over untouched.
        assert_eq!(report.types_patched, 1);
        assert_eq!(report.fingerprint_before, before_fp);
        assert_ne!(report.fingerprint, before_fp);
        assert_eq!(engine.fingerprint(), report.fingerprint);
        // The old dataset handle is untouched; the engine moved on.
        assert!(!Arc::ptr_eq(&before_dataset, &engine.dataset()));
        assert_eq!(
            engine.dataset().corpus.len(),
            before_dataset.corpus.len() + 1
        );
        // Artifacts stayed cached (patched, not discarded).
        assert_eq!(engine.cached_types(), types);
        let stats = engine.stats();
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.artifact_builds, types as u64);

        // Removing it again restores the fingerprint lineage forward (a
        // tombstone is not a byte-identical corpus, so the fingerprint
        // moves again rather than reverting).
        let report2 = engine.remove_entity(Language::Pt, "Novo Filme");
        assert_eq!(report2.removed, 1);
        assert_eq!(report2.fingerprint_before, report.fingerprint);
    }
}
