//! Threshold-filtered sparse similarity-table build
//! ([`ComputeMode::Filtered`](crate::similarity::ComputeMode::Filtered)).
//!
//! The exact modes pay for a full triangular pass: even with the candidate
//! index certifying zero cosines, every one of the `n·(n-1)/2` pairs still
//! gets an LSI score, which is what makes large schemas quadratic. This
//! module replaces the triangular pass with an **index-probe** in the style
//! of the similarity-join literature's prefix/length filters: stream each
//! attribute's term ids through id-keyed postings of the attributes seen so
//! far, count shared terms per touched pair, and discard every pair whose
//! *provable* cosine upper bound cannot reach the threshold `τ`.
//!
//! ## The bound
//!
//! For a pair with vectors `a`, `b` (the variant `vsim`/`lsim` would
//! compare — raw values for same-language pairs, dictionary-translated for
//! cross-language pairs, links for the link channel) whose probe counted
//! `c` shared terms, two upper bounds on `a · b` hold:
//!
//! * **count bound** — the dot has at most `c` non-zero products, each at
//!   most `max(a) · max(b)`, so `a · b ≤ c · max(a) · max(b)`;
//! * **prefix-mass bound** (Cauchy–Schwarz over the shared support) —
//!   `a · b ≤ √(P_a[min(c, |a|)]) · √(P_b[min(c, |b|)])`, where `P_v[k]`
//!   is the sum of the `k` largest squared weights of `v` (so
//!   `P_v[|v|] = ‖v‖²`).
//!
//! Both stay valid although `c` counts shared terms of the *union*
//! vocabulary (values ∪ translated values), which can only over-count the
//! variant's shared terms — and both bounds are monotone in `c`. A pair is
//! skipped only when `min(bounds) · (1 + 1e-9) < τ · ‖a‖ · ‖b‖`; the
//! multiplicative slack swamps the few-ulp rounding of the bound
//! arithmetic, so `cosine ≥ τ` pairs can never be lost to float noise.
//!
//! ## The contract
//!
//! The resulting sparse table stores **exactly** the pairs with
//! `vsim ≥ τ` or `lsim ≥ τ` — survivors of the bound get their exact
//! cosine (the same float ops as the dense pass, hence bit-identical) and
//! are then re-filtered on the true score, so the stored set is a pure
//! function of the dense table and `τ`, independent of how tight the
//! bounds happened to be. Stored channels below `τ` read `0.0`; LSI is
//! computed exactly for every stored pair. The `candidate_pruning` suite
//! proves both halves against the `Dense` oracle.

use wiki_linalg::LsiConfig;
use wiki_text::TermVector;

use crate::schema::DualSchema;
use crate::similarity::{
    lsim, pack_occurrence_patterns, packed_patterns_intersect, vsim, CandidatePair, PairCounts,
    SimilarityTable,
};

/// Multiplicative slack applied to the upper bound before comparing it to
/// the threshold mass `τ·‖a‖·‖b‖`: the bound arithmetic (sort, prefix
/// sums, one sqrt, three multiplies) accumulates at most a few ulp of
/// error, which `1e-9` exceeds by orders of magnitude, so rounding can
/// only make the filter *keep* a borderline pair, never drop it.
const BOUND_SLACK: f64 = 1.0 + 1e-9;

/// Per-vector statistics backing the upper bounds — built once per
/// attribute per variant, then O(1) per touched pair.
struct VariantStats {
    /// Euclidean norm (`0.0` for an empty vector).
    norm: f64,
    /// Largest single term weight.
    max_weight: f64,
    /// `prefix[k]` = sum of the `k` largest squared weights;
    /// `prefix[len]` = `norm²`.
    prefix: Vec<f64>,
}

impl VariantStats {
    fn build(vector: &TermVector) -> Self {
        let mut squares: Vec<f64> = vector.id_entries().iter().map(|(_, w)| w * w).collect();
        squares.sort_unstable_by(|a, b| b.total_cmp(a));
        let mut prefix = Vec::with_capacity(squares.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for sq in squares {
            acc += sq;
            prefix.push(acc);
        }
        Self {
            norm: vector.norm(),
            max_weight: vector
                .id_entries()
                .iter()
                .map(|(_, w)| *w)
                .fold(0.0, f64::max),
            prefix,
        }
    }

    /// Upper bound on the dot product with `other` given at most `shared`
    /// common terms: the smaller of the count bound and the prefix-mass
    /// (Cauchy–Schwarz) bound.
    fn dot_bound(&self, other: &Self, shared: usize) -> f64 {
        let count_bound = shared as f64 * self.max_weight * other.max_weight;
        let a = self.prefix[shared.min(self.prefix.len() - 1)];
        let b = other.prefix[shared.min(other.prefix.len() - 1)];
        count_bound.min((a * b).sqrt())
    }

    /// True when a pair sharing `shared` terms could still reach cosine
    /// `threshold` against `other` — i.e. the pair must be exact-scored.
    fn may_reach(&self, other: &Self, shared: usize, threshold: f64) -> bool {
        if self.norm == 0.0 || other.norm == 0.0 {
            // An empty/zero variant has cosine exactly 0 < τ.
            return false;
        }
        self.dot_bound(other, shared) * BOUND_SLACK >= threshold * self.norm * other.norm
    }
}

/// Index-probes one evidence channel: for each attribute `a` (ascending),
/// its term ids are streamed through the postings of attributes `< a`,
/// counting shared terms per touched pair; `passes(p, q, shared)` then
/// decides which touched pairs survive. Pairs never touched share no term
/// and have an exact-zero cosine. `n_terms` is the arena size (ids are
/// dense); `terms_of` must push each of attribute `a`'s distinct ids once.
///
/// Returns the surviving `(p, q)` pairs, `p < q`, unsorted.
pub(crate) fn probe_channel(
    n: usize,
    n_terms: usize,
    mut terms_of: impl FnMut(usize, &mut Vec<u32>),
    mut passes: impl FnMut(usize, usize, usize) -> bool,
) -> Vec<(u32, u32)> {
    let mut postings: Vec<Vec<u32>> = vec![Vec::new(); n_terms];
    let mut counts: Vec<u32> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut survivors: Vec<(u32, u32)> = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    for a in 0..n {
        ids.clear();
        terms_of(a, &mut ids);
        for &t in &ids {
            for &b in &postings[t as usize] {
                if counts[b as usize] == 0 {
                    touched.push(b);
                }
                counts[b as usize] += 1;
            }
        }
        for &b in &touched {
            let shared = counts[b as usize] as usize;
            counts[b as usize] = 0;
            if passes(b as usize, a, shared) {
                survivors.push((b, a as u32));
            }
        }
        touched.clear();
        for &t in &ids {
            postings[t as usize].push(a as u32);
        }
    }
    survivors
}

/// Merges two `(p, q)`-pair lists into the sorted union, tagging each pair
/// with which list(s) it came from.
pub(crate) fn merge_pair_lists(
    mut first: Vec<(u32, u32)>,
    mut second: Vec<(u32, u32)>,
) -> Vec<(u32, u32, bool, bool)> {
    first.sort_unstable();
    second.sort_unstable();
    let mut out = Vec::with_capacity(first.len().max(second.len()));
    let (mut i, mut j) = (0, 0);
    while i < first.len() || j < second.len() {
        let take_first = j >= second.len() || (i < first.len() && first[i] <= second[j]);
        let take_second = i >= first.len() || (j < second.len() && second[j] <= first[i]);
        let pair = if take_first { first[i] } else { second[j] };
        out.push((pair.0, pair.1, take_first, take_second));
        if take_first {
            i += 1;
        }
        if take_second {
            j += 1;
        }
    }
    out
}

/// The threshold-filtered sparse build (see the module docs for the bound
/// derivation and the storage contract).
pub(crate) fn compute_filtered(
    schema: &DualSchema,
    lsi_config: LsiConfig,
    threshold: f64,
) -> (SimilarityTable, PairCounts) {
    let n = schema.len();
    let n_terms = schema.arena().len();
    let attrs = &schema.attributes;

    // Bound statistics for every variant vector the two channels compare.
    let value_stats: Vec<VariantStats> = attrs
        .iter()
        .map(|a| VariantStats::build(&a.values))
        .collect();
    let translated_stats: Vec<VariantStats> = attrs
        .iter()
        .map(|a| VariantStats::build(&a.translated_values))
        .collect();
    let link_stats: Vec<VariantStats> = attrs
        .iter()
        .map(|a| VariantStats::build(&a.links))
        .collect();

    // Value channel: probe over the union vocabulary (raw ∪ translated),
    // then bound-check against the variant `vsim` would actually compare.
    let value_survivors = probe_channel(
        n,
        n_terms,
        |a, ids| {
            attrs[a]
                .values
                .union_ids(&attrs[a].translated_values, |id| ids.push(id))
        },
        |p, q, shared| {
            let (sp, sq) = if attrs[p].language == attrs[q].language {
                (&value_stats[p], &value_stats[q])
            } else {
                (&translated_stats[p], &translated_stats[q])
            };
            sp.may_reach(sq, shared, threshold)
        },
    );
    let link_survivors = probe_channel(
        n,
        n_terms,
        |a, ids| {
            for (id, _) in attrs[a].links.id_entries() {
                ids.push(*id);
            }
        },
        |p, q, shared| link_stats[p].may_reach(&link_stats[q], shared, threshold),
    );

    // Exact-score the bound survivors with the dense pass's float ops,
    // then keep only true `≥ τ` channels — so the stored set does not
    // depend on bound tightness, only on the oracle scores.
    let mut scored: u64 = 0;
    let mut pairs: Vec<CandidatePair> = Vec::new();
    for (p, q, check_value, check_link) in merge_pair_lists(value_survivors, link_survivors) {
        let (p, q) = (p as usize, q as usize);
        let vs = if check_value {
            scored += 1;
            vsim(schema, p, q)
        } else {
            0.0
        };
        let ls = if check_link {
            scored += 1;
            lsim(schema, p, q)
        } else {
            0.0
        };
        let keep_value = vs >= threshold;
        let keep_link = ls >= threshold;
        if keep_value || keep_link {
            pairs.push(CandidatePair {
                p,
                q,
                vsim: if keep_value { vs } else { 0.0 },
                lsim: if keep_link { ls } else { 0.0 },
                lsi: 0.0,
            });
        }
    }

    // LSI only for stored pairs — this is where the quadratic LSI pass of
    // the exact modes collapses to O(survivors).
    let lsi_model = SimilarityTable::fit_lsi(schema, lsi_config);
    let occurrence_bits = pack_occurrence_patterns(schema);
    for pair in &mut pairs {
        pair.lsi = SimilarityTable::lsi_score_with(schema, &lsi_model, pair.p, pair.q, || {
            packed_patterns_intersect(&occurrence_bits[pair.p], &occurrence_bits[pair.q])
        });
    }

    (
        SimilarityTable::from_sparse_pairs(pairs, n),
        PairCounts::of_total(n, scored),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_stats_prefix_sums_are_descending_partial_norms() {
        let mut builder = wiki_text::TermArenaBuilder::new();
        for t in ["a", "b", "c"] {
            builder.intern(t);
        }
        let (arena, _) = builder.freeze();
        let vector = TermVector::from_ids(arena, vec![(0, 1.0), (1, 3.0), (2, 2.0)]).unwrap();
        let stats = VariantStats::build(&vector);
        assert_eq!(stats.max_weight, 3.0);
        assert_eq!(stats.prefix, vec![0.0, 9.0, 13.0, 14.0]);
        assert!((stats.prefix[3].sqrt() - stats.norm).abs() < 1e-12);
        // `shared` beyond the vector length clamps to the full norm².
        assert_eq!(stats.dot_bound(&stats, 10), 14.0);
        // One shared term: count bound 9 beats mass bound 9 (tie).
        assert_eq!(stats.dot_bound(&stats, 1), 9.0);
    }

    #[test]
    fn merge_pair_lists_unions_and_tags() {
        let merged = merge_pair_lists(vec![(1, 2), (0, 3)], vec![(0, 3), (2, 4)]);
        assert_eq!(
            merged,
            vec![(0, 3, true, true), (1, 2, true, false), (2, 4, false, true)]
        );
    }

    #[test]
    fn probe_channel_counts_shared_terms() {
        // Attribute term sets: 0 → {0,1}, 1 → {1,2}, 2 → {0,1,2}.
        let sets: Vec<Vec<u32>> = vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]];
        let mut observed: Vec<(usize, usize, usize)> = Vec::new();
        let survivors = probe_channel(
            3,
            3,
            |a, ids| ids.extend(&sets[a]),
            |p, q, shared| {
                observed.push((p, q, shared));
                shared >= 2
            },
        );
        observed.sort_unstable();
        assert_eq!(observed, vec![(0, 1, 1), (0, 2, 2), (1, 2, 2)]);
        assert_eq!(survivors, vec![(0, 2), (1, 2)]);
    }
}
