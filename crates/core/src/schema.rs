//! Dual-language schema construction.
//!
//! For one entity type and one language pair, the matcher works on the
//! *dual-language schema*: the union of the attributes observed in the
//! English and foreign-language infoboxes of cross-linked article pairs
//! (Section 2 of the paper). Attributes with the same (normalised) label are
//! grouped together and their evidence is pooled (the paper's attribute
//! groups `AG`):
//!
//! * a **value vector** — canonical tokens of every value recorded for the
//!   attribute, plus a variant translated into English through the bilingual
//!   title dictionary (used by `vsim`);
//! * a **link vector** — the cross-language entity clusters reached by the
//!   hyperlinks inside the attribute's values (used by `lsim`);
//! * an **occurrence pattern** — which dual-language infoboxes contain the
//!   attribute (used by LSI and the grouping scores).

use std::collections::HashMap;
use std::sync::Arc;

use wiki_corpus::{Corpus, Language};
use wiki_text::tokenize::split_value_atoms;
use wiki_text::{tokenize_value, TermArena, TermArenaBuilder, TermVector};
use wiki_translate::TitleDictionary;

/// Pooled evidence for one attribute label of one language.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeStats {
    /// Language the attribute belongs to.
    pub language: Language,
    /// Normalised attribute label.
    pub name: String,
    /// Number of infoboxes (of this type and language) containing the
    /// attribute.
    pub occurrences: usize,
    /// Canonical value tokens with raw frequencies (dates and numbers are
    /// normalised to language-independent tokens).
    pub values: TermVector,
    /// Canonical value tokens translated into English via the title
    /// dictionary (identical to `values` for English attributes).
    pub translated_values: TermVector,
    /// Raw value atoms (normalised surface strings, *no* date/number
    /// canonicalisation). Baselines that match literal values — Bouma's
    /// value equality, COMA++'s instance matcher — operate on these.
    pub raw_values: TermVector,
    /// Raw value atoms translated into English via the title dictionary
    /// (the "+D" instance configurations of COMA++).
    pub translated_raw_values: TermVector,
    /// Cross-language entity clusters reached by hyperlinks in the values.
    pub links: TermVector,
    /// Occurrence pattern over the dual-language infoboxes (`true` when the
    /// attribute appears in dual infobox `j`).
    pub occurrence_pattern: Vec<bool>,
}

impl AttributeStats {
    /// Number of dual infoboxes in which this attribute co-occurs with
    /// `other` (both marked present).
    pub fn co_occurrences(&self, other: &AttributeStats) -> usize {
        self.occurrence_pattern
            .iter()
            .zip(&other.occurrence_pattern)
            .filter(|(a, b)| **a && **b)
            .count()
    }
}

/// The dual-language schema of one entity type.
#[derive(Debug, Clone, PartialEq)]
pub struct DualSchema {
    /// Language pair `(foreign, English)`.
    pub languages: (Language, Language),
    /// Foreign-language type label.
    pub label_other: String,
    /// English type label.
    pub label_en: String,
    /// Attribute groups of both languages.
    pub attributes: Vec<AttributeStats>,
    /// Number of dual-language infoboxes the schema was built from.
    pub dual_count: usize,
    /// The interned vocabulary shared by every attribute vector of this
    /// schema (value tokens, dictionary translations, raw atoms and
    /// link-cluster tokens alike).
    arena: Arc<TermArena>,
    index: HashMap<(Language, String), usize>,
}

/// Per-attribute term-occurrence streams recorded while walking the corpus,
/// before the type's vocabulary is frozen: each channel is a list of
/// *provisional* arena-builder ids, one per token occurrence.
struct AttributeCollector {
    language: Language,
    name: String,
    occurrences: usize,
    values: Vec<u32>,
    raw_values: Vec<u32>,
    links: Vec<u32>,
    occurrence_pattern: Vec<bool>,
}

impl AttributeCollector {
    fn new(language: Language, name: String, dual_count: usize) -> Self {
        Self {
            language,
            name,
            occurrences: 0,
            values: Vec::new(),
            raw_values: Vec::new(),
            links: Vec::new(),
            occurrence_pattern: vec![false; dual_count],
        }
    }
}

/// Turns one channel's occurrence stream into an interned vector: map the
/// provisional ids through `remap` and hand the id stream to
/// [`TermVector::from_id_occurrences`], which sorts once and collapses runs
/// with the exact float operations (in the exact term order) of the
/// string-keyed incremental `add` this replaces.
fn vector_from_occurrences(
    arena: &Arc<TermArena>,
    occurrences: &[u32],
    remap: impl Fn(u32) -> u32,
) -> TermVector {
    let ids: Vec<u32> = occurrences.iter().map(|&prov| remap(prov)).collect();
    TermVector::from_id_occurrences(Arc::clone(arena), ids)
}

impl DualSchema {
    /// Builds the dual schema of the entity type labelled `label_other` /
    /// `label_en` from the corpus.
    ///
    /// `dictionary` must translate titles from the foreign language into
    /// English (see [`TitleDictionary::from_corpus`]).
    pub fn build(
        corpus: &Corpus,
        other: &Language,
        label_other: &str,
        label_en: &str,
        dictionary: &TitleDictionary,
    ) -> Self {
        let _span = wiki_obs::Span::enter("schema_build");
        let english = Language::En;
        let clusters = corpus.entity_clusters();

        // Collect the dual-language infobox pairs of this type.
        let pairs: Vec<_> = corpus
            .cross_language_pairs(&english, other)
            .into_iter()
            .filter_map(|(en_id, other_id)| {
                let en_article = corpus.get(en_id)?;
                let other_article = corpus.get(other_id)?;
                (en_article.entity_type == label_en && other_article.entity_type == label_other)
                    .then_some((en_article, other_article))
            })
            .collect();
        let dual_count = pairs.len();

        // Pass 1 — walk the corpus once, interning every token into a
        // provisional vocabulary and recording per-attribute occurrence
        // streams. No translation happens here: the dictionary is consulted
        // once per *distinct* term below, not once per occurrence.
        let intern_span = wiki_obs::Span::enter("arena_intern");
        let mut terms = TermArenaBuilder::new();
        let mut collectors: Vec<AttributeCollector> = Vec::new();
        let mut index: HashMap<(Language, String), usize> = HashMap::new();

        for (j, (en_article, other_article)) in pairs.iter().enumerate() {
            for (language, article) in [(&english, en_article), (other, other_article)] {
                for attr in &article.infobox.attributes {
                    let name = attr.normalized_name();
                    if name.is_empty() {
                        continue;
                    }
                    let key = (language.clone(), name.clone());
                    let idx = *index.entry(key).or_insert_with(|| {
                        collectors.push(AttributeCollector::new(
                            language.clone(),
                            name.clone(),
                            dual_count,
                        ));
                        collectors.len() - 1
                    });
                    let stats = &mut collectors[idx];
                    if !stats.occurrence_pattern[j] {
                        stats.occurrence_pattern[j] = true;
                        stats.occurrences += 1;
                    }
                    // Canonical value tokens (dates/numbers normalised).
                    for token in tokenize_value(&attr.value) {
                        stats.values.push(terms.intern_owned(token));
                    }
                    // Raw value atoms (surface strings as written).
                    for atom in split_value_atoms(&attr.value) {
                        stats.raw_values.push(terms.intern_owned(atom));
                    }
                    // Link tokens: the cross-language cluster of the landing
                    // article, so the same real-world entity yields the same
                    // token regardless of language.
                    for link in &attr.links {
                        if let Some(target) = corpus.get_by_title(language, &link.target) {
                            if let Some(cluster) = clusters.cluster_of(target.id) {
                                stats
                                    .links
                                    .push(terms.intern_owned(format!("e{}", cluster.0)));
                            }
                        }
                    }
                }
            }
        }

        intern_span.finish();

        // Pass 2 — freeze the raw vocabulary, translate each distinct
        // foreign-language value term exactly once, and fold the translation
        // outputs into the final (shared, lexicographically id-ordered)
        // arena of the type.
        let (raw_arena, prov_to_raw) = terms.freeze();
        let mut needs_translation = vec![false; raw_arena.len()];
        for collector in collectors.iter().filter(|c| &c.language == other) {
            for &prov in collector.values.iter().chain(&collector.raw_values) {
                needs_translation[prov_to_raw[prov as usize] as usize] = true;
            }
        }
        let translations = dictionary.translate_arena(&raw_arena, &needs_translation);

        let mut final_terms = TermArenaBuilder::new();
        let raw_to_final: Vec<u32> = raw_arena.terms().map(|t| final_terms.intern(t)).collect();
        let raw_to_translated: Vec<u32> = translations
            .iter()
            .zip(raw_arena.terms())
            .map(|(translated, raw)| final_terms.intern(translated.as_deref().unwrap_or(raw)))
            .collect();
        let (arena, freeze_remap) = final_terms.freeze();
        let final_of =
            |prov: u32| freeze_remap[raw_to_final[prov_to_raw[prov as usize] as usize] as usize];
        let translated_of = |prov: u32| {
            freeze_remap[raw_to_translated[prov_to_raw[prov as usize] as usize] as usize]
        };

        let attributes = collectors
            .into_iter()
            .map(|collector| {
                let values = vector_from_occurrences(&arena, &collector.values, final_of);
                let raw_values = vector_from_occurrences(&arena, &collector.raw_values, final_of);
                let (translated_values, translated_raw_values) = if collector.language == *other {
                    (
                        vector_from_occurrences(&arena, &collector.values, translated_of),
                        vector_from_occurrences(&arena, &collector.raw_values, translated_of),
                    )
                } else {
                    // English attributes translate to themselves.
                    (values.clone(), raw_values.clone())
                };
                let links = vector_from_occurrences(&arena, &collector.links, final_of);
                AttributeStats {
                    language: collector.language,
                    name: collector.name,
                    occurrences: collector.occurrences,
                    values,
                    translated_values,
                    raw_values,
                    translated_raw_values,
                    links,
                    occurrence_pattern: collector.occurrence_pattern,
                }
            })
            .collect();

        Self {
            languages: (other.clone(), english),
            label_other: label_other.to_string(),
            label_en: label_en.to_string(),
            attributes,
            dual_count,
            arena,
            index,
        }
    }

    /// Reassembles a schema from its components, rebuilding the private
    /// `(language, name) → index` lookup from the attribute list and
    /// re-interning every attribute vector onto one shared arena. Used by
    /// the snapshot layer ([`crate::snapshot`]) when restoring persisted
    /// artifacts; the result is indistinguishable from the schema the
    /// attributes were captured from.
    // Outside `cfg(test)` the snapshot decoder takes the zero-copy
    // `from_parts_in_arena` path below; this re-interning variant serves
    // hand-assembled schemas (snapshot unit tests and future tooling).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_parts(
        languages: (Language, Language),
        label_other: String,
        label_en: String,
        attributes: Vec<AttributeStats>,
        dual_count: usize,
    ) -> Self {
        // Unify the vocabulary: callers may hand in vectors on arbitrary
        // (per-vector) arenas; every vector is rebuilt against the union so
        // the schema upholds the one-arena invariant the candidate index
        // and the snapshot encoder rely on.
        let mut terms = TermArenaBuilder::new();
        for attr in &attributes {
            for vector in [
                &attr.values,
                &attr.translated_values,
                &attr.raw_values,
                &attr.translated_raw_values,
                &attr.links,
            ] {
                for (term, _) in vector.iter() {
                    terms.intern(term);
                }
            }
        }
        let (arena, _) = terms.freeze();
        let reintern = |vector: &TermVector| -> TermVector {
            if Arc::ptr_eq(vector.arena(), &arena) {
                return vector.clone();
            }
            let entries = vector
                .iter()
                .map(|(term, w)| (arena.intern(term).expect("union arena holds every term"), w))
                .collect();
            TermVector::from_ids(Arc::clone(&arena), entries)
                .expect("term-sorted entries stay id-sorted on one arena")
        };
        let attributes: Vec<AttributeStats> = attributes
            .into_iter()
            .map(|attr| AttributeStats {
                values: reintern(&attr.values),
                translated_values: reintern(&attr.translated_values),
                raw_values: reintern(&attr.raw_values),
                translated_raw_values: reintern(&attr.translated_raw_values),
                links: reintern(&attr.links),
                ..attr
            })
            .collect();
        Self::from_parts_in_arena(
            languages,
            label_other,
            label_en,
            attributes,
            dual_count,
            arena,
        )
    }

    /// Reassembles a schema whose attribute vectors are **already** interned
    /// on `arena` — the zero-copy path the snapshot decoder takes after
    /// reading the type's string table.
    pub(crate) fn from_parts_in_arena(
        languages: (Language, Language),
        label_other: String,
        label_en: String,
        attributes: Vec<AttributeStats>,
        dual_count: usize,
        arena: Arc<TermArena>,
    ) -> Self {
        let index = attributes
            .iter()
            .enumerate()
            .map(|(i, attr)| ((attr.language.clone(), attr.name.clone()), i))
            .collect();
        Self {
            languages,
            label_other,
            label_en,
            attributes,
            dual_count,
            arena,
            index,
        }
    }

    /// The interned vocabulary shared by every attribute vector of this
    /// schema.
    pub fn arena(&self) -> &Arc<TermArena> {
        &self.arena
    }

    /// Total `(id, weight)` entries across every attribute vector (all five
    /// evidence channels) — the schema's share of the engine's
    /// `vector_entries` memory gauge, computed once at preparation time.
    pub fn vector_entry_count(&self) -> u64 {
        self.attributes
            .iter()
            .map(|attr| {
                (attr.values.len()
                    + attr.translated_values.len()
                    + attr.raw_values.len()
                    + attr.translated_raw_values.len()
                    + attr.links.len()) as u64
            })
            .sum()
    }

    /// Number of attribute groups (both languages).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of an attribute by `(language, normalised name)`.
    pub fn index_of(&self, language: &Language, name: &str) -> Option<usize> {
        self.index
            .get(&(language.clone(), wiki_text::normalize_label(name)))
            .copied()
    }

    /// The attribute at `idx`.
    pub fn attribute(&self, idx: usize) -> &AttributeStats {
        &self.attributes[idx]
    }

    /// Indices of the attributes of one language.
    pub fn attributes_in(&self, language: &Language) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| &a.language == language)
            .map(|(i, _)| i)
            .collect()
    }

    /// Attribute occurrence frequencies of one language
    /// (`normalised name → count`), used by the weighted evaluation metrics.
    pub fn frequencies(&self, language: &Language) -> HashMap<String, f64> {
        self.attributes
            .iter()
            .filter(|a| &a.language == language)
            .map(|a| (a.name.clone(), a.occurrences as f64))
            .collect()
    }

    /// The grouping score `g(ap, aq) = Opq / min(Op, Oq)` of the paper's
    /// `ReviseUncertain` step (computed over dual infoboxes; for attributes
    /// of the same language this equals the monolingual co-occurrence rate).
    pub fn grouping_score(&self, p: usize, q: usize) -> f64 {
        let a = &self.attributes[p];
        let b = &self.attributes[q];
        let denom = a.occurrences.min(b.occurrences);
        if denom == 0 {
            return 0.0;
        }
        a.co_occurrences(b) as f64 / denom as f64
    }
}

/// A bit-packed set of unordered attribute pairs `(p, q)` with `p != q`.
///
/// Backs the [`CandidateIndex`]: membership tests are a single word load,
/// so the pruned similarity-table build can ask "do these two attributes
/// share any term?" in O(1) for each of the O(n²) pairs it enumerates.
#[derive(Debug, Clone)]
pub struct PairSet {
    n: usize,
    words: Vec<u64>,
}

impl PairSet {
    /// Creates an empty set over `n` attributes, backed by one bit per
    /// strict-upper-triangle pair (`n·(n-1)/2` bits).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            words: vec![0u64; (n * n.saturating_sub(1) / 2).div_ceil(64)],
        }
    }

    fn bit(&self, p: usize, q: usize) -> (usize, u64) {
        let (lo, hi) = if p < q { (p, q) } else { (q, p) };
        // Triangular index, same layout as `SimilarityTable::pair`:
        // offset(lo) = lo*n - lo*(lo+1)/2, then + (hi - lo - 1).
        let idx = lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1);
        (idx / 64, 1u64 << (idx % 64))
    }

    /// Inserts the unordered pair `(p, q)`; ignores `p == q`.
    pub fn insert(&mut self, p: usize, q: usize) {
        if p == q {
            return;
        }
        let (word, mask) = self.bit(p, q);
        self.words[word] |= mask;
    }

    /// True when the unordered pair `(p, q)` is in the set.
    pub fn contains(&self, p: usize, q: usize) -> bool {
        if p == q {
            return false;
        }
        let (word, mask) = self.bit(p, q);
        self.words[word] & mask != 0
    }

    /// Number of pairs in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing bit words, for persistence.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set over `n` attributes from persisted bit words; `None`
    /// when the word count does not match `n`.
    pub(crate) fn from_words(n: usize, words: Vec<u64>) -> Option<Self> {
        (words.len() == (n * n.saturating_sub(1) / 2).div_ceil(64)).then_some(Self { n, words })
    }

    /// True when no pair has been inserted.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

/// Inverted index over the schema's attribute terms, used to prune the
/// similarity-table build.
///
/// For every term of every attribute's value vectors (raw **and**
/// dictionary-translated, so both the same-language and the cross-language
/// variant of `vsim` are covered) the index records which attributes
/// contain it; the same is done for link-cluster tokens. Postings are keyed
/// by the schema arena's dense `u32` term ids — a flat `Vec` indexed by id
/// instead of a string-hashed map, so building the index neither hashes nor
/// compares a single string. Two attributes are a *value candidate* (resp.
/// *link candidate*) when they share at least one such term. Because all
/// vector weights are positive term counts, a pair that is **not** a
/// candidate provably has a cosine of exactly `0.0` — so the pruned
/// [`crate::similarity::SimilarityTable`] build can skip the cosine and
/// write `0.0` without changing any result bit.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    value_pairs: PairSet,
    link_pairs: PairSet,
}

impl CandidateIndex {
    /// Builds the index over all attributes of a schema.
    pub fn build(schema: &DualSchema) -> Self {
        let _span = wiki_obs::Span::enter("candidate_index");
        let n = schema.len();
        // Dense id-indexed postings over the schema's shared vocabulary.
        let n_terms = schema.arena().len();
        let mut value_postings: Vec<Vec<u32>> = vec![Vec::new(); n_terms];
        let mut link_postings: Vec<Vec<u32>> = vec![Vec::new(); n_terms];
        for (i, attr) in schema.attributes.iter().enumerate() {
            // Union of raw and translated value terms: `vsim` compares raw
            // vectors for same-language pairs and translated vectors for
            // cross-language pairs, and a sound candidate test must cover
            // both.
            attr.values.union_ids(&attr.translated_values, |id| {
                value_postings[id as usize].push(i as u32);
            });
            for (id, _) in attr.links.id_entries() {
                link_postings[*id as usize].push(i as u32);
            }
        }
        Self {
            value_pairs: postings_to_pairs(n, &value_postings),
            link_pairs: postings_to_pairs(n, &link_postings),
        }
    }

    /// True when `p` and `q` share at least one value term (raw or
    /// translated) — i.e. `vsim` may be non-zero.
    pub fn value_candidate(&self, p: usize, q: usize) -> bool {
        self.value_pairs.contains(p, q)
    }

    /// True when `p` and `q` share at least one link-cluster token — i.e.
    /// `lsim` may be non-zero.
    pub fn link_candidate(&self, p: usize, q: usize) -> bool {
        self.link_pairs.contains(p, q)
    }

    /// Reassembles an index from its two persisted pair sets.
    pub(crate) fn from_parts(value_pairs: PairSet, link_pairs: PairSet) -> Self {
        Self {
            value_pairs,
            link_pairs,
        }
    }

    /// The value-candidate pair set, for persistence.
    pub(crate) fn value_pairs(&self) -> &PairSet {
        &self.value_pairs
    }

    /// The link-candidate pair set, for persistence.
    pub(crate) fn link_pairs(&self) -> &PairSet {
        &self.link_pairs
    }

    /// Number of value-candidate pairs.
    pub fn value_candidates(&self) -> usize {
        self.value_pairs.len()
    }

    /// Number of link-candidate pairs.
    pub fn link_candidates(&self) -> usize {
        self.link_pairs.len()
    }
}

/// Expands per-term postings into the pair set of attributes sharing a
/// term. Postings are visited in term-id order, so the construction is
/// fully deterministic (the string-keyed predecessor iterated a `HashMap`;
/// the resulting set was identical, but the insertion order was not).
fn postings_to_pairs(n: usize, postings: &[Vec<u32>]) -> PairSet {
    let mut pairs = PairSet::new(n);
    for attrs in postings {
        for (i, &p) in attrs.iter().enumerate() {
            for &q in &attrs[i + 1..] {
                pairs.insert(p as usize, q as usize);
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Article, AttributeValue, Infobox, Link};

    /// Builds a miniature two-entity Pt-En film corpus by hand.
    fn tiny_corpus() -> Corpus {
        let mut corpus = Corpus::new();

        // Referenced entities with cross-language links.
        let mut person_en = Article::new(
            "Bernardo Bertolucci",
            Language::En,
            "Person",
            Infobox::new("Infobox person"),
        );
        person_en.add_cross_link(Language::Pt, "Bernardo Bertolucci");
        let person_pt = Article::new(
            "Bernardo Bertolucci",
            Language::Pt,
            "Person",
            Infobox::new("Infobox person"),
        );
        let mut country_en = Article::new(
            "Italy",
            Language::En,
            "Country",
            Infobox::new("Infobox country"),
        );
        country_en.add_cross_link(Language::Pt, "Itália");
        let country_pt = Article::new(
            "Itália",
            Language::Pt,
            "Country",
            Infobox::new("Infobox country"),
        );
        corpus.insert(person_en);
        corpus.insert(person_pt);
        corpus.insert(country_en);
        corpus.insert(country_pt);

        for i in 0..2 {
            let mut en_box = Infobox::new("Infobox Film");
            en_box.push(AttributeValue::linked(
                "Directed by",
                "Bernardo Bertolucci",
                vec![Link::plain("Bernardo Bertolucci")],
            ));
            en_box.push(AttributeValue::linked(
                "Country",
                "Italy",
                vec![Link::plain("Italy")],
            ));
            en_box.push(AttributeValue::text("Running time", "160 minutes"));
            let mut en_article = Article::new(format!("Film {i}"), Language::En, "Film", en_box);
            en_article.add_cross_link(Language::Pt, format!("Filme {i}"));

            let mut pt_box = Infobox::new("Infobox Filme");
            pt_box.push(AttributeValue::linked(
                "Direção",
                "Bernardo Bertolucci",
                vec![Link::plain("Bernardo Bertolucci")],
            ));
            pt_box.push(AttributeValue::linked(
                "País",
                "Itália",
                vec![Link::plain("Itália")],
            ));
            pt_box.push(AttributeValue::text("Duração", "160 minutos"));
            let mut pt_article = Article::new(format!("Filme {i}"), Language::Pt, "Filme", pt_box);
            pt_article.add_cross_link(Language::En, format!("Film {i}"));

            corpus.insert(en_article);
            corpus.insert(pt_article);
        }
        corpus
    }

    fn build_schema(corpus: &Corpus) -> DualSchema {
        let dictionary = TitleDictionary::from_corpus(corpus, &Language::Pt, &Language::En);
        DualSchema::build(corpus, &Language::Pt, "Filme", "Film", &dictionary)
    }

    #[test]
    fn groups_attributes_by_language_and_label() {
        let corpus = tiny_corpus();
        let schema = build_schema(&corpus);
        assert_eq!(schema.dual_count, 2);
        assert_eq!(schema.len(), 6);
        assert_eq!(schema.attributes_in(&Language::En).len(), 3);
        assert_eq!(schema.attributes_in(&Language::Pt).len(), 3);
        let directed = schema.index_of(&Language::En, "Directed by").unwrap();
        assert_eq!(schema.attribute(directed).occurrences, 2);
    }

    #[test]
    fn translated_values_use_the_dictionary() {
        let corpus = tiny_corpus();
        let schema = build_schema(&corpus);
        let pais = schema.index_of(&Language::Pt, "país").unwrap();
        let stats = schema.attribute(pais);
        // Raw value keeps the Portuguese form; the translated vector holds
        // the English title.
        assert!(stats.values.get("italia") > 0.0);
        assert!(stats.translated_values.get("italy") > 0.0);
        // English attributes translate to themselves.
        let country = schema.index_of(&Language::En, "country").unwrap();
        assert!(schema.attribute(country).translated_values.get("italy") > 0.0);
    }

    #[test]
    fn link_vectors_share_cluster_tokens_across_languages() {
        let corpus = tiny_corpus();
        let schema = build_schema(&corpus);
        let direcao = schema.index_of(&Language::Pt, "direção").unwrap();
        let directed = schema.index_of(&Language::En, "directed by").unwrap();
        let a = &schema.attribute(direcao).links;
        let b = &schema.attribute(directed).links;
        assert!(a.cosine(b) > 0.99, "cosine = {}", a.cosine(b));
    }

    #[test]
    fn occurrence_patterns_and_grouping_scores() {
        let corpus = tiny_corpus();
        let schema = build_schema(&corpus);
        let directed = schema.index_of(&Language::En, "directed by").unwrap();
        let country = schema.index_of(&Language::En, "country").unwrap();
        assert_eq!(
            schema
                .attribute(directed)
                .co_occurrences(schema.attribute(country)),
            2
        );
        assert!((schema.grouping_score(directed, country) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_cover_only_requested_language() {
        let corpus = tiny_corpus();
        let schema = build_schema(&corpus);
        let freq = schema.frequencies(&Language::Pt);
        assert_eq!(freq.len(), 3);
        // Keys are normalised labels (diacritics folded).
        assert_eq!(freq["direcao"], 2.0);
        assert!(!freq.contains_key("directed by"));
    }

    #[test]
    fn pair_set_insert_and_lookup_are_order_insensitive() {
        let mut set = PairSet::new(5);
        assert!(set.is_empty());
        set.insert(3, 1);
        set.insert(2, 2); // ignored: p == q
        assert!(set.contains(1, 3));
        assert!(set.contains(3, 1));
        assert!(!set.contains(2, 2));
        assert!(!set.contains(0, 4));
        assert_eq!(set.len(), 1);
        set.insert(1, 3); // duplicate
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn candidate_index_is_sound_for_vsim_and_lsim() {
        let corpus = tiny_corpus();
        let schema = build_schema(&corpus);
        let index = CandidateIndex::build(&schema);
        for p in 0..schema.len() {
            for q in (p + 1)..schema.len() {
                let a = schema.attribute(p);
                let b = schema.attribute(q);
                // Soundness: a non-candidate pair must have exactly zero
                // similarity on the corresponding evidence channel.
                if !index.value_candidate(p, q) {
                    assert_eq!(a.values.cosine(&b.values), 0.0);
                    assert_eq!(a.translated_values.cosine(&b.translated_values), 0.0);
                }
                if !index.link_candidate(p, q) {
                    assert_eq!(a.links.cosine(&b.links), 0.0);
                }
            }
        }
        // "directed by" / "direção" share the translated person value and
        // the link cluster; "running time" / "duração" share the canonical
        // numeric token but no links.
        let directed = schema.index_of(&Language::En, "directed by").unwrap();
        let direcao = schema.index_of(&Language::Pt, "direção").unwrap();
        assert!(index.value_candidate(directed, direcao));
        assert!(index.link_candidate(directed, direcao));
        let time = schema.index_of(&Language::En, "running time").unwrap();
        let duracao = schema.index_of(&Language::Pt, "duração").unwrap();
        assert!(index.value_candidate(time, duracao));
        assert!(!index.link_candidate(time, duracao));
        assert!(index.value_candidates() >= 2);
    }

    #[test]
    fn pt_and_en_vocabularies_share_one_arena_without_collision() {
        let corpus = tiny_corpus();
        let schema = build_schema(&corpus);
        let arena = schema.arena();
        // Every vector of every attribute — both languages, all five
        // channels — lives on the schema's single arena, and each id
        // round-trips through its term.
        for attr in &schema.attributes {
            for vector in [
                &attr.values,
                &attr.translated_values,
                &attr.raw_values,
                &attr.translated_raw_values,
                &attr.links,
            ] {
                assert!(Arc::ptr_eq(vector.arena(), arena));
                for (id, _) in vector.id_entries() {
                    assert_eq!(arena.intern(arena.resolve(*id)), Some(*id));
                }
            }
        }
        // Distinct terms of different languages get distinct ids...
        let italia = arena.intern("italia").expect("pt value term interned");
        let italy = arena.intern("italy").expect("en value term interned");
        assert_ne!(italia, italy);
        let pais = schema.attribute(schema.index_of(&Language::Pt, "país").unwrap());
        let country = schema.attribute(schema.index_of(&Language::En, "country").unwrap());
        assert!(pais.values.id_entries().iter().any(|(id, _)| *id == italia));
        assert!(country
            .values
            .id_entries()
            .iter()
            .any(|(id, _)| *id == italy));
        // ...while the dictionary-translated Pt vector meets the En vector
        // on exactly the shared "italy" id — the aliasing `vsim` needs and
        // the only aliasing there is.
        assert!(pais
            .translated_values
            .id_entries()
            .iter()
            .any(|(id, _)| *id == italy));
        assert!(pais
            .translated_values
            .id_entries()
            .iter()
            .all(|(id, _)| *id != italia));
    }

    #[test]
    fn missing_type_yields_empty_schema() {
        let corpus = tiny_corpus();
        let dictionary = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        let schema = DualSchema::build(&corpus, &Language::Pt, "Livro", "Book", &dictionary);
        assert!(schema.is_empty());
        assert_eq!(schema.dual_count, 0);
    }
}
