//! Configuration of the WikiMatch matcher.
//!
//! Two thresholds govern the alignment algorithm (Section 3.3 of the paper):
//!
//! * `Tsim` — the *certainty* threshold. A candidate pair whose
//!   `max(vsim, lsim)` exceeds `Tsim` is accepted immediately; the paper sets
//!   it high (0.6) so that only well-corroborated pairs are selected early.
//! * `TLSI` — the *correlation* threshold. Only pairs with LSI score above
//!   `TLSI` enter the candidate queue, and a new attribute may join an
//!   existing match cluster only if its LSI score with every member exceeds
//!   `TLSI`. The paper sets it low (0.1) because heterogeneity weakens
//!   correlations.
//!
//! The remaining switches implement the ablation configurations of Table 3 /
//! Figure 3 (removing `ReviseUncertain`, `IntegrateMatches`, individual
//! similarity features, the LSI ordering, or collapsing the two-phase
//! algorithm into a single step).

use serde::{Deserialize, Serialize};
use wiki_linalg::LsiConfig;

/// Which score orders the candidate queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateOrdering {
    /// Decreasing LSI score (the paper's default).
    Lsi,
    /// Decreasing `max(vsim, lsim)` — used by the `WikiMatch-LSI` ablation.
    MaxSimilarity,
    /// A deterministic pseudo-random permutation — used by the
    /// `WikiMatch random` ablation.
    Random,
}

/// Full configuration of the matcher.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WikiMatchConfig {
    /// Certainty threshold `Tsim` applied to `max(vsim, lsim)`.
    pub t_sim: f64,
    /// Correlation threshold `TLSI` applied to the LSI score.
    pub t_lsi: f64,
    /// Threshold on the inductive grouping score used by `ReviseUncertain`.
    pub t_eg: f64,
    /// LSI (truncated SVD) settings.
    pub lsi: LsiConfig,
    /// Use value similarity as evidence (`false` = `WikiMatch-vsim`).
    pub use_vsim: bool,
    /// Use link-structure similarity as evidence (`false` = `WikiMatch-lsim`).
    pub use_lsim: bool,
    /// Candidate ordering (LSI, max-similarity, or random).
    pub ordering: CandidateOrdering,
    /// Run the `ReviseUncertain` step (`false` = `WikiMatch-ReviseUncertain`).
    pub use_revise_uncertain: bool,
    /// Enforce the pairwise-correlation constraint when integrating matches
    /// (`false` = `WikiMatch-IntegrateMatches`).
    pub use_integrate_constraint: bool,
    /// Collapse the algorithm into a single step that accepts every candidate
    /// with positive `vsim`/`lsim` (`true` = `WikiMatch single step`).
    pub single_step: bool,
    /// Filter uncertain pairs by the inductive grouping score
    /// (`false` = the "WikiMatch − inductive grouping" row of Table 3).
    pub use_inductive_grouping: bool,
    /// Seed of the deterministic permutation used by
    /// [`CandidateOrdering::Random`].
    pub ordering_seed: u64,
}

impl Default for WikiMatchConfig {
    fn default() -> Self {
        Self {
            // Values used throughout the paper's evaluation (Section 4):
            // Tsim = 0.6 for both vsim and lsim, TLSI = 0.1.
            t_sim: 0.6,
            t_lsi: 0.1,
            t_eg: 0.25,
            lsi: LsiConfig::default(),
            use_vsim: true,
            use_lsim: true,
            ordering: CandidateOrdering::Lsi,
            use_revise_uncertain: true,
            use_integrate_constraint: true,
            single_step: false,
            use_inductive_grouping: true,
            ordering_seed: 17,
        }
    }
}

impl WikiMatchConfig {
    /// The `WikiMatch-ReviseUncertain` ablation (no second phase).
    pub fn without_revise_uncertain(self) -> Self {
        Self {
            use_revise_uncertain: false,
            ..self
        }
    }

    /// The `WikiMatch-IntegrateMatches` ablation (no pairwise-correlation
    /// constraint when merging into clusters).
    pub fn without_integrate_constraint(self) -> Self {
        Self {
            use_integrate_constraint: false,
            ..self
        }
    }

    /// The `WikiMatch random` ablation (random candidate ordering).
    pub fn with_random_ordering(self) -> Self {
        Self {
            ordering: CandidateOrdering::Random,
            ..self
        }
    }

    /// The `WikiMatch single step` ablation.
    pub fn single_step(self) -> Self {
        Self {
            single_step: true,
            ..self
        }
    }

    /// The `WikiMatch-vsim` ablation (no value similarity).
    pub fn without_vsim(self) -> Self {
        Self {
            use_vsim: false,
            ..self
        }
    }

    /// The `WikiMatch-lsim` ablation (no link-structure similarity).
    pub fn without_lsim(self) -> Self {
        Self {
            use_lsim: false,
            ..self
        }
    }

    /// The `WikiMatch-LSI` ablation: candidates are ordered and validated by
    /// `max(vsim, lsim)` instead of the LSI score.
    pub fn without_lsi(self) -> Self {
        Self {
            ordering: CandidateOrdering::MaxSimilarity,
            // With no meaningful LSI, the correlation gates are disabled.
            t_lsi: f64::MIN,
            use_integrate_constraint: false,
            ..self
        }
    }

    /// The "WikiMatch − inductive grouping" ablation: `ReviseUncertain`
    /// integrates every buffered uncertain pair instead of only the highly
    /// correlated ones.
    pub fn without_inductive_grouping(self) -> Self {
        Self {
            use_inductive_grouping: false,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_thresholds() {
        let config = WikiMatchConfig::default();
        assert!((config.t_sim - 0.6).abs() < 1e-12);
        assert!((config.t_lsi - 0.1).abs() < 1e-12);
        assert!(config.use_vsim && config.use_lsim);
        assert_eq!(config.ordering, CandidateOrdering::Lsi);
        assert!(config.use_revise_uncertain);
        assert!(!config.single_step);
    }

    #[test]
    fn ablation_builders_flip_the_right_switches() {
        let base = WikiMatchConfig::default();
        assert!(!base.without_revise_uncertain().use_revise_uncertain);
        assert!(!base.without_integrate_constraint().use_integrate_constraint);
        assert_eq!(
            base.with_random_ordering().ordering,
            CandidateOrdering::Random
        );
        assert!(base.single_step().single_step);
        assert!(!base.without_vsim().use_vsim);
        assert!(!base.without_lsim().use_lsim);
        assert_eq!(
            base.without_lsi().ordering,
            CandidateOrdering::MaxSimilarity
        );
        assert!(!base.without_inductive_grouping().use_inductive_grouping);
        // Builders leave unrelated fields untouched.
        assert!((base.without_vsim().t_sim - 0.6).abs() < 1e-12);
    }

    #[test]
    fn config_serialises() {
        let config = WikiMatchConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("t_sim"));
    }
}
