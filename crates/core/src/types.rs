//! Cross-language entity-type matching (Section 3.1 of the paper).
//!
//! Wikipedia's type system (categories, infobox templates) differs per
//! language edition, so before attributes can be aligned the matcher must
//! discover that e.g. the English type "Film" corresponds to the Portuguese
//! type "Filme". WikiMatch uses a simple but effective signal: if the
//! articles of type `T` in language `L` predominantly cross-link to articles
//! of type `T'` in language `L'`, the two types are equivalent.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use wiki_corpus::{Corpus, Language};

/// A discovered correspondence between entity-type labels of two languages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeMatch {
    /// Type label in the first language.
    pub label_a: String,
    /// Type label in the second language.
    pub label_b: String,
    /// Number of cross-language article pairs supporting the match.
    pub support: usize,
    /// Fraction of `label_a`'s cross-linked articles that land on `label_b`.
    pub confidence: f64,
}

/// Matches entity types between `lang_a` and `lang_b` by majority voting
/// over cross-language links.
///
/// For every type label of `lang_a`, the label of `lang_b` that receives the
/// most cross-links is reported, together with its support (vote count) and
/// confidence (fraction of votes). Types with no cross-linked articles are
/// omitted.
///
/// ```
/// use wiki_corpus::{Dataset, Language, SyntheticConfig};
/// use wikimatch::match_entity_types;
///
/// let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
/// let matches = match_entity_types(&dataset.corpus, &Language::Pt, &Language::En);
/// let film = matches.iter().find(|m| m.label_a == "Filme").unwrap();
/// assert_eq!(film.label_b, "Film");
/// ```
pub fn match_entity_types(corpus: &Corpus, lang_a: &Language, lang_b: &Language) -> Vec<TypeMatch> {
    // votes[label_a][label_b] = number of cross-linked article pairs.
    let mut votes: HashMap<String, HashMap<String, usize>> = HashMap::new();
    for (a_id, b_id) in corpus.cross_language_pairs(lang_a, lang_b) {
        let (Some(a), Some(b)) = (corpus.get(a_id), corpus.get(b_id)) else {
            continue;
        };
        *votes
            .entry(a.entity_type.clone())
            .or_default()
            .entry(b.entity_type.clone())
            .or_insert(0) += 1;
    }

    let mut matches: Vec<TypeMatch> = votes
        .into_iter()
        .filter_map(|(label_a, counts)| {
            let total: usize = counts.values().sum();
            let (label_b, support) = counts
                .into_iter()
                .max_by_key(|(label, n)| (*n, std::cmp::Reverse(label.clone())))?;
            (total > 0).then(|| TypeMatch {
                label_a,
                label_b,
                support,
                confidence: support as f64 / total as f64,
            })
        })
        .collect();
    matches.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.label_a.cmp(&b.label_a))
    });
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Article, Infobox};

    fn corpus() -> Corpus {
        let mut corpus = Corpus::new();
        // Three film pairs, one mislabelled on the Portuguese side.
        for i in 0..3 {
            let mut en = Article::new(
                format!("Film {i}"),
                Language::En,
                "Film",
                Infobox::new("Infobox Film"),
            );
            en.add_cross_link(Language::Pt, format!("Filme {i}"));
            let label = if i == 2 { "Obra" } else { "Filme" };
            let mut pt = Article::new(
                format!("Filme {i}"),
                Language::Pt,
                label,
                Infobox::new("Infobox Filme"),
            );
            pt.add_cross_link(Language::En, format!("Film {i}"));
            corpus.insert(en);
            corpus.insert(pt);
        }
        // One actor pair.
        let mut en = Article::new(
            "Actor 0",
            Language::En,
            "Actor",
            Infobox::new("Infobox Actor"),
        );
        en.add_cross_link(Language::Pt, "Ator 0");
        let mut pt = Article::new("Ator 0", Language::Pt, "Ator", Infobox::new("Infobox Ator"));
        pt.add_cross_link(Language::En, "Actor 0");
        corpus.insert(en);
        corpus.insert(pt);
        // An article with no cross link.
        corpus.insert(Article::new(
            "Orphan",
            Language::En,
            "Film",
            Infobox::new("Infobox Film"),
        ));
        corpus
    }

    #[test]
    fn majority_vote_wins() {
        let corpus = corpus();
        let matches = match_entity_types(&corpus, &Language::En, &Language::Pt);
        let film = matches.iter().find(|m| m.label_a == "Film").unwrap();
        assert_eq!(film.label_b, "Filme");
        assert_eq!(film.support, 2);
        assert!((film.confidence - 2.0 / 3.0).abs() < 1e-9);
        let actor = matches.iter().find(|m| m.label_a == "Actor").unwrap();
        assert_eq!(actor.label_b, "Ator");
        assert_eq!(actor.confidence, 1.0);
    }

    #[test]
    fn direction_matters() {
        let corpus = corpus();
        let matches = match_entity_types(&corpus, &Language::Pt, &Language::En);
        let filme = matches.iter().find(|m| m.label_a == "Filme").unwrap();
        assert_eq!(filme.label_b, "Film");
        // "Obra" maps to Film as well (its only vote).
        let obra = matches.iter().find(|m| m.label_a == "Obra").unwrap();
        assert_eq!(obra.label_b, "Film");
        assert_eq!(obra.support, 1);
    }

    #[test]
    fn empty_corpus_yields_no_matches() {
        let corpus = Corpus::new();
        assert!(match_entity_types(&corpus, &Language::En, &Language::Pt).is_empty());
    }

    #[test]
    fn results_are_sorted_by_support() {
        let corpus = corpus();
        let matches = match_entity_types(&corpus, &Language::En, &Language::Pt);
        for w in matches.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }
}
