//! Match clusters: sets of synonymous attributes within and across
//! languages.
//!
//! The output of the alignment algorithm is a set of matches `M`, where each
//! match `m = {a1 ~ a2 ~ ... ~ ak}` is a cluster of attribute labels that
//! denote the same concept — possibly several labels per language (the
//! paper's `died ~ falecimento ~ morte` example). Cross-language
//! correspondences for evaluation are extracted as all pairs of cluster
//! members that belong to different languages.

use serde::{Deserialize, Serialize};

use wiki_corpus::Language;

use crate::schema::DualSchema;

/// One match: a cluster of attribute indices into the [`DualSchema`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchCluster {
    /// Member attribute indices (insertion order preserved).
    pub members: Vec<usize>,
}

impl MatchCluster {
    /// Creates a cluster from two seed attributes.
    pub fn seed(p: usize, q: usize) -> Self {
        Self {
            members: vec![p, q],
        }
    }

    /// Whether the cluster contains an attribute index.
    pub fn contains(&self, attr: usize) -> bool {
        self.members.contains(&attr)
    }

    /// Adds a member (no-op when already present).
    pub fn add(&mut self, attr: usize) {
        if !self.contains(attr) {
            self.members.push(attr);
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The set of matches produced by the alignment algorithm.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchSet {
    clusters: Vec<MatchCluster>,
}

impl MatchSet {
    /// Creates an empty match set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clusters.
    pub fn clusters(&self) -> &[MatchCluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when no matches have been found.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The index of the cluster containing `attr`, if any.
    pub fn cluster_of(&self, attr: usize) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(attr))
    }

    /// Whether `attr` is already part of some match.
    pub fn contains(&self, attr: usize) -> bool {
        self.cluster_of(attr).is_some()
    }

    /// Adds a new cluster seeded with `p ~ q` and returns its index.
    pub fn add_cluster(&mut self, p: usize, q: usize) -> usize {
        self.clusters.push(MatchCluster::seed(p, q));
        self.clusters.len() - 1
    }

    /// Adds `attr` to an existing cluster.
    pub fn add_to_cluster(&mut self, cluster: usize, attr: usize) {
        self.clusters[cluster].add(attr);
    }

    /// Mutable access to a cluster.
    pub fn cluster_mut(&mut self, cluster: usize) -> &mut MatchCluster {
        &mut self.clusters[cluster]
    }

    /// All pairs of cluster members that belong to *different* languages,
    /// reported as `(name in lang_a, name in lang_b)`.
    ///
    /// This is the set `C` of derived cross-language correspondences used by
    /// the evaluation metrics.
    pub fn cross_language_pairs(
        &self,
        schema: &DualSchema,
        lang_a: &Language,
        lang_b: &Language,
    ) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for cluster in &self.clusters {
            for &p in &cluster.members {
                for &q in &cluster.members {
                    if p == q {
                        continue;
                    }
                    let a = schema.attribute(p);
                    let b = schema.attribute(q);
                    if &a.language == lang_a && &b.language == lang_b {
                        out.push((a.name.clone(), b.name.clone()));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// All pairs of cluster members in the *same* language (intra-language
    /// synonyms), reported as sorted name pairs.
    pub fn intra_language_pairs(
        &self,
        schema: &DualSchema,
        language: &Language,
    ) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for cluster in &self.clusters {
            let names: Vec<&str> = cluster
                .members
                .iter()
                .map(|&m| schema.attribute(m))
                .filter(|a| &a.language == language)
                .map(|a| a.name.as_str())
                .collect();
            for i in 0..names.len() {
                for j in (i + 1)..names.len() {
                    let (a, b) = if names[i] <= names[j] {
                        (names[i], names[j])
                    } else {
                        (names[j], names[i])
                    };
                    out.push((a.to_string(), b.to_string()));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Renders the clusters as human-readable strings
    /// (`"died ~ falecimento ~ morte"`), useful for reports and Table 1.
    pub fn render(&self, schema: &DualSchema) -> Vec<String> {
        self.clusters
            .iter()
            .map(|c| {
                c.members
                    .iter()
                    .map(|&m| schema.attribute(m).name.clone())
                    .collect::<Vec<_>>()
                    .join(" ~ ")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Article, AttributeValue, Corpus, Infobox};
    use wiki_translate::TitleDictionary;

    fn schema() -> DualSchema {
        let mut corpus = Corpus::new();
        let mut en_box = Infobox::new("Infobox Actor");
        en_box.push(AttributeValue::text("born", "1950"));
        en_box.push(AttributeValue::text("died", "2000"));
        let mut en = Article::new("A", Language::En, "Actor", en_box);
        en.add_cross_link(Language::Pt, "B");
        let mut pt_box = Infobox::new("Infobox Ator");
        pt_box.push(AttributeValue::text("nascimento", "1950"));
        pt_box.push(AttributeValue::text("falecimento", "2000"));
        pt_box.push(AttributeValue::text("morte", "2000"));
        let mut pt = Article::new("B", Language::Pt, "Ator", pt_box);
        pt.add_cross_link(Language::En, "A");
        corpus.insert(en);
        corpus.insert(pt);
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        DualSchema::build(&corpus, &Language::Pt, "Ator", "Actor", &dict)
    }

    #[test]
    fn cluster_operations() {
        let mut set = MatchSet::new();
        assert!(set.is_empty());
        let c = set.add_cluster(0, 1);
        set.add_to_cluster(c, 2);
        set.add_to_cluster(c, 2);
        assert_eq!(set.clusters()[c].len(), 3);
        assert_eq!(set.cluster_of(2), Some(c));
        assert_eq!(set.cluster_of(9), None);
        assert!(set.contains(0));
    }

    #[test]
    fn cross_and_intra_language_pair_extraction() {
        let schema = schema();
        let born = schema.index_of(&Language::En, "born").unwrap();
        let died = schema.index_of(&Language::En, "died").unwrap();
        let nascimento = schema.index_of(&Language::Pt, "nascimento").unwrap();
        let falecimento = schema.index_of(&Language::Pt, "falecimento").unwrap();
        let morte = schema.index_of(&Language::Pt, "morte").unwrap();

        let mut set = MatchSet::new();
        let c0 = set.add_cluster(born, nascimento);
        let c1 = set.add_cluster(died, falecimento);
        set.add_to_cluster(c1, morte);
        let _ = c0;

        let cross = set.cross_language_pairs(&schema, &Language::Pt, &Language::En);
        assert_eq!(
            cross,
            vec![
                ("falecimento".to_string(), "died".to_string()),
                ("morte".to_string(), "died".to_string()),
                ("nascimento".to_string(), "born".to_string()),
            ]
        );
        let intra = set.intra_language_pairs(&schema, &Language::Pt);
        assert_eq!(
            intra,
            vec![("falecimento".to_string(), "morte".to_string())]
        );
        assert!(set.intra_language_pairs(&schema, &Language::En).is_empty());

        let rendered = set.render(&schema);
        assert!(rendered.iter().any(|r| r.contains("falecimento ~ morte")
            || r.contains("morte") && r.contains("falecimento")));
    }
}
