//! Banded SimHash candidate generation
//! ([`ComputeMode::Lsh`](crate::similarity::ComputeMode::Lsh)).
//!
//! The **explicitly approximate** companion to [`crate::filter`]: instead
//! of a provable bound, value-channel candidates come from locality
//! sensitive hashing. Each attribute's dictionary-translated value vector
//! is reduced to a `bands · rows ≤ 64`-bit SimHash signature — bit `k` is
//! the sign of `Σ w_t · s_k(t)` where `s_k(t) ∈ {±1}` is a pseudo-random
//! hyperplane derived by hashing the *term string* (FNV-1a, salted per
//! plane), so signatures are stable across arenas and platforms and need
//! no random state. The signature is cut into `bands` bands of `rows` bits;
//! two attributes become candidates when any band matches exactly. For two
//! vectors at cosine `s` a bit agrees with probability `1 − arccos(s)/π`,
//! so a band matches with that probability to the `rows`-th power — the
//! usual banding S-curve: near-duplicates almost surely collide, low
//! similarity pairs almost never do.
//!
//! Link-channel candidates use the exact shared-term probe (link vectors
//! are short, and an exact channel keeps `lsim`-driven matches lossless).
//! Every candidate is then scored with the *exact* dense-pass float ops;
//! pairs with any non-zero channel are stored. What LSH trades away is
//! **recall of the value channel**: a true pair can miss every band and
//! vanish from the table. [`candidate_recall`] measures exactly that
//! against an oracle table, and the mode is rejected wherever exactness is
//! contractual (snapshot capture, delta patching).

use std::collections::HashMap;

use wiki_linalg::LsiConfig;

use crate::filter::{merge_pair_lists, probe_channel};
use crate::schema::DualSchema;
use crate::similarity::{
    lsim, pack_occurrence_patterns, packed_patterns_intersect, vsim, CandidatePair, PairCounts,
    SimilarityTable,
};

/// FNV-1a over a byte string — the same platform-stable hash the snapshot
/// checksums use, applied here to term strings so signatures do not depend
/// on arena id assignment.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: decorrelates the per-plane salt from the term
/// hash so plane signs are independent across bits.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The SimHash signature of one term vector over `bits` hyperplanes, or
/// `None` for an empty vector — empty vectors have cosine 0 with
/// everything, and bucketing them together would only manufacture a
/// quadratic clique of guaranteed non-matches.
fn signature(schema: &DualSchema, attr: usize, bits: u32) -> Option<u64> {
    let vector = &schema.attributes[attr].translated_values;
    if vector.is_empty() {
        return None;
    }
    let arena = schema.arena();
    let mut acc = vec![0.0f64; bits as usize];
    for (id, weight) in vector.id_entries() {
        let base = fnv1a64(arena.resolve(*id).as_bytes());
        for (k, slot) in acc.iter_mut().enumerate() {
            // Plane k's side for this term: one mixed bit of the salted
            // term hash.
            if mix(base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(k as u64 + 1))) & 1 == 1 {
                *slot += weight;
            } else {
                *slot -= weight;
            }
        }
    }
    let mut sig = 0u64;
    for (k, sum) in acc.iter().enumerate() {
        if *sum > 0.0 {
            sig |= 1u64 << k;
        }
    }
    Some(sig)
}

/// Value-channel candidate pairs from signature banding: unsorted,
/// deduplicated, `p < q`.
fn banded_candidates(schema: &DualSchema, bands: u32, rows: u32) -> Vec<(u32, u32)> {
    let signatures: Vec<Option<u64>> = (0..schema.len())
        .map(|a| signature(schema, a, bands * rows))
        .collect();
    let mask = if rows == 64 {
        u64::MAX
    } else {
        (1u64 << rows) - 1
    };
    let mut buckets: HashMap<(u32, u64), Vec<u32>> = HashMap::new();
    for (a, sig) in signatures.iter().enumerate() {
        let Some(sig) = sig else { continue };
        for band in 0..bands {
            let key = (band, (sig >> (band * rows)) & mask);
            buckets.entry(key).or_default().push(a as u32);
        }
    }
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for members in buckets.into_values() {
        for (i, &p) in members.iter().enumerate() {
            for &q in &members[i + 1..] {
                pairs.push((p.min(q), p.max(q)));
            }
        }
    }
    // HashMap iteration order is arbitrary; sort + dedup makes the
    // candidate *set* (and therefore the table) deterministic.
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// The banded-LSH sparse build (see the module docs for the candidate
/// generation and what the mode trades away).
pub(crate) fn compute_lsh(
    schema: &DualSchema,
    lsi_config: LsiConfig,
    bands: u32,
    rows: u32,
) -> (SimilarityTable, PairCounts) {
    let n = schema.len();
    let attrs = &schema.attributes;
    let value_candidates = banded_candidates(schema, bands, rows);
    // Link channel stays exact: every pair sharing a link-cluster token is
    // a candidate (the non-candidates have a certified zero `lsim`).
    let link_candidates = probe_channel(
        n,
        schema.arena().len(),
        |a, ids| {
            for (id, _) in attrs[a].links.id_entries() {
                ids.push(*id);
            }
        },
        |_, _, _| true,
    );

    let mut scored: u64 = 0;
    let mut pairs: Vec<CandidatePair> = Vec::new();
    for (p, q, _, _) in merge_pair_lists(value_candidates, link_candidates) {
        let (p, q) = (p as usize, q as usize);
        // Both channels are exact-scored for every candidate — an LSH
        // candidate is likely enough to matter that skipping the second
        // cosine would save little and complicate the stored contract.
        scored += 2;
        let vs = vsim(schema, p, q);
        let ls = lsim(schema, p, q);
        if vs > 0.0 || ls > 0.0 {
            pairs.push(CandidatePair {
                p,
                q,
                vsim: vs,
                lsim: ls,
                lsi: 0.0,
            });
        }
    }

    let lsi_model = SimilarityTable::fit_lsi(schema, lsi_config);
    let occurrence_bits = pack_occurrence_patterns(schema);
    for pair in &mut pairs {
        pair.lsi = SimilarityTable::lsi_score_with(schema, &lsi_model, pair.p, pair.q, || {
            packed_patterns_intersect(&occurrence_bits[pair.p], &occurrence_bits[pair.q])
        });
    }

    (
        SimilarityTable::from_sparse_pairs(pairs, n),
        PairCounts::of_total(n, scored),
    )
}

/// Fraction of `oracle` pairs whose value or link similarity reaches
/// `threshold` that `approx` also stores — the recall an approximate
/// (LSH) table achieves against an exact one. Returns `1.0` when the
/// oracle has no pair at the threshold (nothing to recall).
pub fn candidate_recall(oracle: &SimilarityTable, approx: &SimilarityTable, threshold: f64) -> f64 {
    let mut relevant = 0usize;
    let mut recalled = 0usize;
    for pair in oracle.pairs() {
        if pair.vsim >= threshold || pair.lsim >= threshold {
            relevant += 1;
            if approx.pair(pair.p, pair.q).is_some() {
                recalled += 1;
            }
        }
    }
    if relevant == 0 {
        1.0
    } else {
        recalled as f64 / relevant as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_and_mix_are_stable() {
        // Pinned values: signatures must not drift across releases, or
        // LSH recall measurements stop being comparable.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(mix(0), 0);
        assert_ne!(mix(1), mix(2));
    }

    #[test]
    fn recall_is_one_when_nothing_is_relevant() {
        let empty = SimilarityTable::from_sparse_pairs(Vec::new(), 4);
        assert_eq!(candidate_recall(&empty, &empty, 0.5), 1.0);
    }
}
