//! The WikiMatch matcher configuration holder and the legacy one-shot
//! pipeline entry points.
//!
//! [`WikiMatch`] carries the configuration and implements
//! [`SchemaMatcher`](crate::SchemaMatcher), which makes it one plugin among
//! the baselines. Sessions over a dataset — including the precomputation of
//! the title dictionary and the per-type schema caches — live in
//! [`MatchEngine`]; the one-shot methods on `WikiMatch`
//! (`align_type`, `align_all`, `prepare_type`, `match_types`) are kept as
//! deprecated shims that build a throwaway engine per call.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wiki_corpus::{Dataset, Language, TypePairing};

use crate::config::WikiMatchConfig;
use crate::engine::MatchEngine;
use crate::matches::MatchSet;
use crate::schema::DualSchema;
use crate::similarity::SimilarityTable;
use crate::types::TypeMatch;

/// The result of aligning one entity type.
///
/// The schema and similarity table are shared (`Arc`) with the engine that
/// produced the alignment, so holding many alignments of the same type
/// does not duplicate the prepared artifacts.
#[derive(Debug, Clone)]
pub struct TypeAlignment {
    /// Language-independent type identifier.
    pub type_id: String,
    /// The dual-language schema the alignment was computed on.
    pub schema: Arc<DualSchema>,
    /// The pairwise similarity evidence.
    pub table: Arc<SimilarityTable>,
    /// The discovered match clusters.
    pub matches: MatchSet,
    /// Language pair `(foreign, English)`.
    pub languages: (Language, Language),
}

impl TypeAlignment {
    /// Derived cross-language correspondences as
    /// `(foreign-language attribute, English attribute)` pairs.
    pub fn cross_pairs(&self) -> Vec<(String, String)> {
        self.matches
            .cross_language_pairs(&self.schema, &self.languages.0, &self.languages.1)
    }

    /// Derived intra-language synonym pairs for one language.
    pub fn intra_pairs(&self, language: &Language) -> Vec<(String, String)> {
        self.matches.intra_language_pairs(&self.schema, language)
    }

    /// Human-readable rendering of the match clusters
    /// (e.g. `"died ~ falecimento ~ morte"`).
    pub fn rendered_clusters(&self) -> Vec<String> {
        self.matches.render(&self.schema)
    }
}

/// A serialisable summary of a type alignment (used by the experiment
/// harness to persist results).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlignmentSummary {
    /// Type identifier.
    pub type_id: String,
    /// Number of dual-language infoboxes.
    pub dual_infoboxes: usize,
    /// Number of attribute groups in the dual schema.
    pub attributes: usize,
    /// Number of match clusters.
    pub clusters: usize,
    /// Derived cross-language pairs.
    pub cross_pairs: Vec<(String, String)>,
}

impl From<&TypeAlignment> for AlignmentSummary {
    fn from(alignment: &TypeAlignment) -> Self {
        Self {
            type_id: alignment.type_id.clone(),
            dual_infoboxes: alignment.schema.dual_count,
            attributes: alignment.schema.len(),
            clusters: alignment.matches.len(),
            cross_pairs: alignment.cross_pairs(),
        }
    }
}

/// The WikiMatch matcher: the paper's configuration plus the
/// [`SchemaMatcher`](crate::SchemaMatcher) implementation.
///
/// To align a dataset, build a session with
/// [`MatchEngine::builder`](crate::MatchEngine::builder) and call
/// [`align`](crate::MatchEngine::align) /
/// [`align_all`](crate::MatchEngine::align_all) on it.
#[derive(Debug, Clone, Copy, Default)]
pub struct WikiMatch {
    config: WikiMatchConfig,
}

impl WikiMatch {
    /// Creates a matcher with the given configuration.
    pub fn new(config: WikiMatchConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WikiMatchConfig {
        &self.config
    }

    /// Step 1: discover the entity-type correspondences of the dataset's
    /// language pair from cross-language links.
    #[deprecated(
        since = "0.2.0",
        note = "build a MatchEngine and use MatchEngine::type_matches, which computes them once per dataset"
    )]
    pub fn match_types(&self, dataset: &Dataset) -> Vec<TypeMatch> {
        // Type matching needs neither the dictionary nor the caches, so the
        // shim skips the engine and calls the discovery step directly.
        crate::types::match_entity_types(
            &dataset.corpus,
            dataset.other_language(),
            dataset.english(),
        )
    }

    /// Builds the dual-language schema and similarity table for one type
    /// pairing, from the pairing's own labels — the pre-0.2 code path,
    /// kept verbatim (including the per-call dictionary rebuild, which is
    /// why it is deprecated).
    #[deprecated(
        since = "0.2.0",
        note = "use MatchEngine::schema / MatchEngine::similarity, which share one title dictionary across all types"
    )]
    pub fn prepare_type(
        &self,
        dataset: &Dataset,
        pairing: &TypePairing,
    ) -> (DualSchema, SimilarityTable) {
        let dictionary = wiki_translate::TitleDictionary::from_corpus(
            &dataset.corpus,
            dataset.other_language(),
            dataset.english(),
        );
        let schema = DualSchema::build(
            &dataset.corpus,
            dataset.other_language(),
            &pairing.label_other,
            &pairing.label_en,
            &dictionary,
        );
        let table = SimilarityTable::compute(&schema, self.config.lsi);
        (schema, table)
    }

    /// Aligns the attributes of one entity type (one-shot, clone-free).
    #[deprecated(since = "0.2.0", note = "use MatchEngine::align")]
    pub fn align_type(&self, dataset: &Dataset, pairing: &TypePairing) -> TypeAlignment {
        #[allow(deprecated)]
        let (schema, table) = self.prepare_type(dataset, pairing);
        let matches = crate::alignment::AttributeAlignment::new(&schema, &table, self.config).run();
        TypeAlignment {
            type_id: pairing.type_id.clone(),
            schema: Arc::new(schema),
            table: Arc::new(table),
            matches,
            languages: dataset.languages.clone(),
        }
    }

    /// Aligns every entity type of the dataset.
    ///
    /// Routes through a throwaway [`MatchEngine`] session: the one dataset
    /// clone buys a single dictionary build shared by all types plus
    /// parallel per-type alignment — strictly cheaper than the pre-0.2
    /// body, which rebuilt the dictionary for every type.
    #[deprecated(
        since = "0.2.0",
        note = "use MatchEngine::align_all, which amortizes the dictionary and parallelizes per-type alignment"
    )]
    pub fn align_all(&self, dataset: &Dataset) -> Vec<TypeAlignment> {
        MatchEngine::builder(dataset.clone())
            .config(self.config)
            .build()
            .align_all()
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shims must stay behavior-identical for one release
mod tests {
    use super::*;
    use wiki_corpus::SyntheticConfig;

    fn dataset() -> Dataset {
        Dataset::pt_en(&SyntheticConfig::tiny())
    }

    #[test]
    fn type_matching_recovers_the_catalog_pairings() {
        let dataset = dataset();
        let matcher = WikiMatch::default();
        let type_matches = matcher.match_types(&dataset);
        // Every catalog pairing should be recovered by majority voting.
        for pairing in &dataset.types {
            let found = type_matches
                .iter()
                .find(|m| m.label_a == pairing.label_other)
                .unwrap_or_else(|| panic!("no type match for {}", pairing.label_other));
            assert_eq!(
                found.label_b, pairing.label_en,
                "wrong match for {}",
                pairing.label_other
            );
        }
    }

    #[test]
    fn film_alignment_contains_expected_pairs() {
        let dataset = dataset();
        let matcher = WikiMatch::default();
        let pairing = dataset.type_pairing("film").unwrap();
        let alignment = matcher.align_type(&dataset, pairing);
        let pairs = alignment.cross_pairs();
        assert!(
            pairs.contains(&("direcao".to_string(), "directed by".to_string())),
            "direcao ~ directed by not found in {pairs:?}"
        );
        assert!(
            pairs.contains(&("pais".to_string(), "country".to_string())),
            "pais ~ country not found"
        );
        // Every derived pair maps existing attributes.
        for (pt, en) in &pairs {
            assert!(alignment.schema.index_of(&Language::Pt, pt).is_some());
            assert!(alignment.schema.index_of(&Language::En, en).is_some());
        }
    }

    #[test]
    fn prepare_type_honours_caller_constructed_pairings() {
        let dataset = dataset();
        let matcher = WikiMatch::default();
        // A pairing the dataset does not list: same labels, custom type id.
        let film = dataset.type_pairing("film").unwrap();
        let custom = TypePairing {
            type_id: "my custom film".to_string(),
            label_other: film.label_other.clone(),
            label_en: film.label_en.clone(),
        };
        let (custom_schema, _) = matcher.prepare_type(&dataset, &custom);
        let (dataset_schema, _) = matcher.prepare_type(&dataset, film);
        // Built from the pairing's own labels, not looked up by id.
        assert_eq!(custom_schema, dataset_schema);
        let alignment = matcher.align_type(&dataset, &custom);
        assert_eq!(alignment.type_id, "my custom film");
        assert!(!alignment.cross_pairs().is_empty());
    }

    #[test]
    fn alignment_summary_serialises() {
        let dataset = dataset();
        let matcher = WikiMatch::default();
        let alignment = matcher.align_type(&dataset, dataset.type_pairing("actor").unwrap());
        let summary = AlignmentSummary::from(&alignment);
        assert_eq!(summary.type_id, "actor");
        assert!(summary.dual_infoboxes > 0);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("cross_pairs"));
    }

    #[test]
    fn align_all_covers_every_type() {
        let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
        let matcher = WikiMatch::default();
        let alignments = matcher.align_all(&dataset);
        assert_eq!(alignments.len(), 4);
        for alignment in &alignments {
            assert!(alignment.schema.dual_count > 0, "{}", alignment.type_id);
        }
    }
}
