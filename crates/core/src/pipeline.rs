//! The end-to-end WikiMatch pipeline over a [`Dataset`].
//!
//! [`WikiMatch`] orchestrates the three steps of the paper:
//!
//! 1. match entity types across languages ([`crate::types`]);
//! 2. build, per matched type, the dual-language schema with its similarity
//!    evidence ([`crate::schema`], [`crate::similarity`]);
//! 3. run the alignment algorithm ([`crate::alignment`]) and expose the
//!    derived correspondences.

use serde::{Deserialize, Serialize};

use wiki_corpus::{Dataset, Language, TypePairing};
use wiki_translate::TitleDictionary;

use crate::alignment::AttributeAlignment;
use crate::config::WikiMatchConfig;
use crate::matches::MatchSet;
use crate::schema::DualSchema;
use crate::similarity::SimilarityTable;
use crate::types::{match_entity_types, TypeMatch};

/// The result of aligning one entity type.
#[derive(Debug, Clone)]
pub struct TypeAlignment {
    /// Language-independent type identifier.
    pub type_id: String,
    /// The dual-language schema the alignment was computed on.
    pub schema: DualSchema,
    /// The pairwise similarity evidence.
    pub table: SimilarityTable,
    /// The discovered match clusters.
    pub matches: MatchSet,
    /// Language pair `(foreign, English)`.
    pub languages: (Language, Language),
}

impl TypeAlignment {
    /// Derived cross-language correspondences as
    /// `(foreign-language attribute, English attribute)` pairs.
    pub fn cross_pairs(&self) -> Vec<(String, String)> {
        self.matches
            .cross_language_pairs(&self.schema, &self.languages.0, &self.languages.1)
    }

    /// Derived intra-language synonym pairs for one language.
    pub fn intra_pairs(&self, language: &Language) -> Vec<(String, String)> {
        self.matches.intra_language_pairs(&self.schema, language)
    }

    /// Human-readable rendering of the match clusters
    /// (e.g. `"died ~ falecimento ~ morte"`).
    pub fn rendered_clusters(&self) -> Vec<String> {
        self.matches.render(&self.schema)
    }
}

/// A serialisable summary of a type alignment (used by the experiment
/// harness to persist results).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlignmentSummary {
    /// Type identifier.
    pub type_id: String,
    /// Number of dual-language infoboxes.
    pub dual_infoboxes: usize,
    /// Number of attribute groups in the dual schema.
    pub attributes: usize,
    /// Number of match clusters.
    pub clusters: usize,
    /// Derived cross-language pairs.
    pub cross_pairs: Vec<(String, String)>,
}

impl From<&TypeAlignment> for AlignmentSummary {
    fn from(alignment: &TypeAlignment) -> Self {
        Self {
            type_id: alignment.type_id.clone(),
            dual_infoboxes: alignment.schema.dual_count,
            attributes: alignment.schema.len(),
            clusters: alignment.matches.len(),
            cross_pairs: alignment.cross_pairs(),
        }
    }
}

/// The WikiMatch matcher.
#[derive(Debug, Clone, Default)]
pub struct WikiMatch {
    config: WikiMatchConfig,
}

impl WikiMatch {
    /// Creates a matcher with the given configuration.
    pub fn new(config: WikiMatchConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WikiMatchConfig {
        &self.config
    }

    /// Step 1: discover the entity-type correspondences of the dataset's
    /// language pair from cross-language links.
    pub fn match_types(&self, dataset: &Dataset) -> Vec<TypeMatch> {
        match_entity_types(
            &dataset.corpus,
            dataset.other_language(),
            dataset.english(),
        )
    }

    /// Builds the dual-language schema and similarity table for one type
    /// pairing (exposed separately because the baselines reuse it).
    pub fn prepare_type(&self, dataset: &Dataset, pairing: &TypePairing) -> (DualSchema, SimilarityTable) {
        let dictionary = TitleDictionary::from_corpus(
            &dataset.corpus,
            dataset.other_language(),
            dataset.english(),
        );
        let schema = DualSchema::build(
            &dataset.corpus,
            dataset.other_language(),
            &pairing.label_other,
            &pairing.label_en,
            &dictionary,
        );
        let table = SimilarityTable::compute(&schema, self.config.lsi);
        (schema, table)
    }

    /// Aligns the attributes of one entity type.
    pub fn align_type(&self, dataset: &Dataset, pairing: &TypePairing) -> TypeAlignment {
        let (schema, table) = self.prepare_type(dataset, pairing);
        let matches = AttributeAlignment::new(&schema, &table, self.config).run();
        TypeAlignment {
            type_id: pairing.type_id.clone(),
            schema,
            table,
            matches,
            languages: dataset.languages.clone(),
        }
    }

    /// Aligns every entity type of the dataset.
    pub fn align_all(&self, dataset: &Dataset) -> Vec<TypeAlignment> {
        dataset
            .types
            .iter()
            .map(|pairing| self.align_type(dataset, pairing))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::SyntheticConfig;

    fn dataset() -> Dataset {
        Dataset::pt_en(&SyntheticConfig::tiny())
    }

    #[test]
    fn type_matching_recovers_the_catalog_pairings() {
        let dataset = dataset();
        let matcher = WikiMatch::default();
        let type_matches = matcher.match_types(&dataset);
        // Every catalog pairing should be recovered by majority voting.
        for pairing in &dataset.types {
            let found = type_matches
                .iter()
                .find(|m| m.label_a == pairing.label_other)
                .unwrap_or_else(|| panic!("no type match for {}", pairing.label_other));
            assert_eq!(
                found.label_b, pairing.label_en,
                "wrong match for {}",
                pairing.label_other
            );
        }
    }

    #[test]
    fn film_alignment_contains_expected_pairs() {
        let dataset = dataset();
        let matcher = WikiMatch::default();
        let pairing = dataset.type_pairing("film").unwrap();
        let alignment = matcher.align_type(&dataset, pairing);
        let pairs = alignment.cross_pairs();
        assert!(
            pairs.contains(&("direcao".to_string(), "directed by".to_string())),
            "direcao ~ directed by not found in {pairs:?}"
        );
        assert!(
            pairs.contains(&("pais".to_string(), "country".to_string())),
            "pais ~ country not found"
        );
        // Every derived pair maps existing attributes.
        for (pt, en) in &pairs {
            assert!(alignment.schema.index_of(&Language::Pt, pt).is_some());
            assert!(alignment.schema.index_of(&Language::En, en).is_some());
        }
    }

    #[test]
    fn alignment_summary_serialises() {
        let dataset = dataset();
        let matcher = WikiMatch::default();
        let alignment = matcher.align_type(&dataset, dataset.type_pairing("actor").unwrap());
        let summary = AlignmentSummary::from(&alignment);
        assert_eq!(summary.type_id, "actor");
        assert!(summary.dual_infoboxes > 0);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("cross_pairs"));
    }

    #[test]
    fn align_all_covers_every_type() {
        let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
        let matcher = WikiMatch::default();
        let alignments = matcher.align_all(&dataset);
        assert_eq!(alignments.len(), 4);
        for alignment in &alignments {
            assert!(alignment.schema.dual_count > 0, "{}", alignment.type_id);
        }
    }
}
