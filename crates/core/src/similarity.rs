//! Similarity measures: `vsim`, `lsim` and the LSI correlation table.
//!
//! * **Cross-language value similarity** (`vsim`, Section 3.2): the cosine of
//!   the attributes' value vectors, computed on the *translated* vectors so
//!   that "Estados Unidos" and "United States" land on the same term.
//! * **Link-structure similarity** (`lsim`): the cosine of the attributes'
//!   link vectors; link targets were already unified into cross-language
//!   entity clusters by [`crate::schema::DualSchema::build`], so two
//!   attributes that link to the same real-world entities score high even
//!   though the anchor texts differ.
//! * **LSI attribute correlation**: the occurrence matrix over dual-language
//!   infoboxes is decomposed with a truncated SVD and attribute correlation
//!   is measured as the cosine of the reduced vectors, with the paper's sign
//!   conventions: cross-language pairs use the cosine directly, co-occurring
//!   same-language pairs are forced to 0 (they cannot be synonyms), and
//!   non-co-occurring same-language pairs use the complement of the cosine.

use std::ops::Range;
use std::sync::{Arc, OnceLock};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use wiki_linalg::{LsiConfig, LsiModel, Matrix};
use wiki_text::ByteRegion;

use crate::schema::{CandidateIndex, DualSchema};

/// How [`SimilarityTable::compute`] traverses the attribute-pair space.
///
/// The two *exact* modes (`Pruned`, `Dense`) produce **bit-identical**
/// tables (pinned by the `pruned_table_is_byte_identical_to_dense` tests);
/// they differ only in how much work they do per pair. The two additional
/// modes relax completeness — not accuracy — for scale: every score they
/// *do* store is still produced by the exact same float operations as the
/// dense pass, but sub-threshold (`Filtered`) or un-generated (`Lsh`) pairs
/// are dropped from the table.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ComputeMode {
    /// Candidate-pruned, parallel build (the default): a
    /// [`CandidateIndex`] over the attributes' value and link terms decides
    /// which pairs can have non-zero `vsim` / `lsim`; only those cosines
    /// are computed (non-candidates are exactly `0.0` by construction),
    /// co-occurrence tests run on bit-packed occurrence patterns, and rows
    /// are scored on parallel threads via the rayon shim.
    #[default]
    Pruned,
    /// The exact-equivalence fallback: the straightforward dense
    /// `O(|A|·|B|)` reference pass over every pair, single-threaded. Kept
    /// as the semantic ground truth the pruned path is tested against.
    Dense,
    /// Threshold-filtered sparse build: an index-probe pass counts shared
    /// terms per pair and a provable weight-mass upper bound (see
    /// [`crate::filter`]) skips every pair that cannot reach `threshold`
    /// on either direct channel. The table stores exactly the pairs with
    /// `vsim >= threshold` or `lsim >= threshold`; stored scores at or
    /// above the threshold are bit-identical to `Dense`, channels below it
    /// are reported as `0.0`.
    Filtered {
        /// Minimum per-channel cosine a pair must reach to be stored;
        /// validated finite and in `(0, 1]` by every public constructor.
        threshold: f64,
    },
    /// Banded SimHash LSH candidate generation (see [`crate::lsh`]):
    /// **explicitly approximate**. Value-channel candidates come from
    /// signature banding and can miss true pairs (recall is measured, not
    /// guaranteed); the pairs that are generated carry exact,
    /// bit-identical scores. Rejected wherever exactness is contractual
    /// (snapshot capture, delta patching).
    Lsh {
        /// Number of signature bands compared independently.
        bands: u32,
        /// Signature bits per band; `bands * rows` must not exceed the
        /// 64-bit signature width.
        rows: u32,
    },
}

// `PartialEq` is derived, so `Eq` only needs the no-NaN promise for the
// `threshold` field — upheld because `ComputeMode::filtered`, `FromStr`
// and `Deserialize` all validate the threshold as finite and in (0, 1].
impl Eq for ComputeMode {}

impl ComputeMode {
    /// Threshold used by a bare `"filtered"` mode string.
    pub const DEFAULT_FILTER_THRESHOLD: f64 = 0.6;
    /// Band count used by a bare `"lsh"` mode string.
    pub const DEFAULT_LSH_BANDS: u32 = 16;
    /// Rows (signature bits) per band used by a bare `"lsh"` mode string.
    pub const DEFAULT_LSH_ROWS: u32 = 4;

    /// The threshold-filtered mode.
    ///
    /// # Panics
    /// When `threshold` is not a finite number in `(0, 1]` — a threshold
    /// of zero would make every pair a keeper (use `Dense`), and anything
    /// above one stores nothing.
    pub fn filtered(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0 && threshold <= 1.0,
            "filter threshold must be finite and in (0, 1], got {threshold}"
        );
        ComputeMode::Filtered { threshold }
    }

    /// The banded-LSH mode.
    ///
    /// # Panics
    /// When either parameter is zero or `bands * rows` exceeds the 64-bit
    /// signature width.
    pub fn lsh(bands: u32, rows: u32) -> Self {
        assert!(
            bands >= 1 && rows >= 1 && bands.saturating_mul(rows) <= 64,
            "lsh needs bands, rows >= 1 and bands * rows <= 64, got {bands}x{rows}"
        );
        ComputeMode::Lsh { bands, rows }
    }

    /// True for the modes whose tables are bit-identical to `Dense` on
    /// **every** pair. Snapshot capture and delta patching require an
    /// exact mode; the sparse modes trade completeness for scale.
    pub fn is_exact(self) -> bool {
        matches!(self, ComputeMode::Pruned | ComputeMode::Dense)
    }
}

impl std::fmt::Display for ComputeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeMode::Pruned => f.write_str("pruned"),
            ComputeMode::Dense => f.write_str("dense"),
            ComputeMode::Filtered { threshold } => write!(f, "filtered:{threshold}"),
            ComputeMode::Lsh { bands, rows } => write!(f, "lsh:{bands}x{rows}"),
        }
    }
}

/// Error returned when parsing a [`ComputeMode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseComputeModeError(String);

impl std::fmt::Display for ParseComputeModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown compute mode {:?}; expected \"pruned\", \"dense\", \
             \"filtered[:T]\" with T finite in (0, 1], or \"lsh[:BxR]\" \
             with B, R >= 1 and B*R <= 64",
            self.0
        )
    }
}

impl std::error::Error for ParseComputeModeError {}

impl std::str::FromStr for ComputeMode {
    type Err = ParseComputeModeError;

    /// Parses `"pruned"` / `"dense"` / `"filtered[:T]"` / `"lsh[:BxR]"`
    /// (case-insensitive, also accepting the capitalised variant names),
    /// so the mode can be set from `matchd` configuration and bench CLI
    /// flags. Bare `"filtered"` and `"lsh"` use the `DEFAULT_*` constants.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        let err = || ParseComputeModeError(s.to_string());
        if let Some(rest) = lower.strip_prefix("filtered") {
            let threshold = match rest.strip_prefix(':') {
                Some(spec) => spec.parse::<f64>().map_err(|_| err())?,
                None if rest.is_empty() => Self::DEFAULT_FILTER_THRESHOLD,
                None => return Err(err()),
            };
            if !(threshold.is_finite() && threshold > 0.0 && threshold <= 1.0) {
                return Err(err());
            }
            return Ok(ComputeMode::Filtered { threshold });
        }
        if let Some(rest) = lower.strip_prefix("lsh") {
            let (bands, rows) = match rest.strip_prefix(':') {
                Some(spec) => {
                    let (bands, rows) = spec.split_once('x').ok_or_else(err)?;
                    (
                        bands.parse::<u32>().map_err(|_| err())?,
                        rows.parse::<u32>().map_err(|_| err())?,
                    )
                }
                None if rest.is_empty() => (Self::DEFAULT_LSH_BANDS, Self::DEFAULT_LSH_ROWS),
                None => return Err(err()),
            };
            if bands == 0 || rows == 0 || bands.saturating_mul(rows) > 64 {
                return Err(err());
            }
            return Ok(ComputeMode::Lsh { bands, rows });
        }
        match lower.as_str() {
            "pruned" => Ok(ComputeMode::Pruned),
            "dense" => Ok(ComputeMode::Dense),
            _ => Err(err()),
        }
    }
}

// The mode serializes as its `Display` string (`"pruned"`,
// `"filtered:0.6"`, ...) rather than a derived variant tree: configuration
// and the `/stats` endpoint show the same text a CLI flag accepts, and the
// string round-trips through `FromStr` (which also validates the
// parameters, so a snapshot cannot smuggle in a NaN threshold).
impl Serialize for ComputeMode {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for ComputeMode {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let text = value.as_str().ok_or_else(|| {
            serde::Error::custom(format!("expected compute-mode string, found {value:?}"))
        })?;
        text.parse().map_err(serde::Error::custom)
    }
}

/// Tally of direct-channel cosine evaluations a similarity-table build
/// performed versus provably (or, under LSH, heuristically) avoided.
///
/// The dense pass evaluates `n·(n-1)` channel cosines for `n` attributes
/// (one value + one link cosine per unordered pair); `scored + pruned`
/// always equals that total, so the split is comparable across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PairCounts {
    /// Channel cosines actually evaluated.
    pub scored: u64,
    /// Channel cosines skipped — via an exact zero certificate (`Pruned`),
    /// a sound upper bound (`Filtered`), or absent candidates (`Lsh`).
    pub pruned: u64,
}

impl PairCounts {
    /// The `scored`/`pruned` split of a build over `n` attributes that
    /// evaluated `scored` channel cosines.
    pub(crate) fn of_total(n: usize, scored: u64) -> Self {
        let total = (n as u64).saturating_mul(n.saturating_sub(1) as u64);
        Self {
            scored,
            pruned: total.saturating_sub(scored),
        }
    }
}

/// A candidate attribute pair with its similarity evidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidatePair {
    /// Index of the first attribute in the [`DualSchema`].
    pub p: usize,
    /// Index of the second attribute in the [`DualSchema`].
    pub q: usize,
    /// Cross-language value similarity.
    pub vsim: f64,
    /// Link-structure similarity.
    pub lsim: f64,
    /// LSI correlation score (paper's sign conventions applied).
    pub lsi: f64,
}

impl CandidatePair {
    /// The strongest of the two direct-evidence scores.
    pub fn max_sim(&self) -> f64 {
        self.vsim.max(self.lsim)
    }
}

/// Value similarity between two attributes of a dual schema.
///
/// For cross-language pairs the cosine is computed on the dictionary
/// translated vectors; for same-language pairs the raw vectors are used.
pub fn vsim(schema: &DualSchema, p: usize, q: usize) -> f64 {
    let a = schema.attribute(p);
    let b = schema.attribute(q);
    if a.language == b.language {
        a.values.cosine(&b.values)
    } else {
        a.translated_values.cosine(&b.translated_values)
    }
}

/// Link-structure similarity between two attributes of a dual schema.
pub fn lsim(schema: &DualSchema, p: usize, q: usize) -> f64 {
    schema.attribute(p).links.cosine(&schema.attribute(q).links)
}

/// Where a table's pairs live: on the heap, or borrowed from a mapped (v4)
/// snapshot region as three fixed-stride raw-`f64`-bits channel sections
/// (`lsi`, `vsim`, `lsim`, each `n_pairs * 8` bytes in canonical pair
/// order). A mapped table decodes **lazily on first touch** — this is the
/// per-(type, channel) page-in of the out-of-core tier — and the decoded
/// pairs are bit-identical to an owned decode because every weight travels
/// as raw IEEE-754 bits.
#[derive(Debug, Clone)]
enum PairStore {
    Owned(Vec<CandidatePair>),
    Mapped {
        region: Arc<dyn ByteRegion>,
        lsi: Range<usize>,
        vsim: Range<usize>,
        lsim: Range<usize>,
        cache: OnceLock<Vec<CandidatePair>>,
    },
}

/// All pairwise similarity evidence for one dual-language schema.
#[derive(Debug, Clone)]
pub struct SimilarityTable {
    /// Candidate pairs sorted by `(p, q)` with `p < q`. The exact modes
    /// store every unordered pair; the sparse modes only the survivors.
    store: PairStore,
    /// Number of attributes in the schema the table was built for.
    len: usize,
    /// True when the store holds **every** unordered pair in lexicographic
    /// order, so [`pair`](Self::pair) can use O(1) index arithmetic;
    /// sparse (filtered / LSH) tables binary-search instead. Mapped tables
    /// are always dense — only exact-mode artifacts are persisted.
    dense_layout: bool,
}

impl SimilarityTable {
    /// Computes `vsim`, `lsim` and LSI scores for every attribute pair of
    /// the schema, using the default [`ComputeMode::Pruned`] traversal.
    pub fn compute(schema: &DualSchema, lsi_config: LsiConfig) -> Self {
        Self::compute_with(schema, lsi_config, ComputeMode::Pruned)
    }

    /// Computes the table with the dense reference pass
    /// ([`ComputeMode::Dense`]).
    pub fn compute_dense(schema: &DualSchema, lsi_config: LsiConfig) -> Self {
        Self::compute_with(schema, lsi_config, ComputeMode::Dense)
    }

    /// Computes the table with an explicit traversal mode.
    pub fn compute_with(schema: &DualSchema, lsi_config: LsiConfig, mode: ComputeMode) -> Self {
        Self::compute_counted(schema, lsi_config, mode).0
    }

    /// Computes the table and reports how many direct-channel cosines were
    /// evaluated versus pruned — the `pairs_scored` / `pairs_pruned`
    /// gauges the engine exposes on `/stats`.
    pub fn compute_counted(
        schema: &DualSchema,
        lsi_config: LsiConfig,
        mode: ComputeMode,
    ) -> (Self, PairCounts) {
        match mode {
            ComputeMode::Dense | ComputeMode::Pruned => {
                let index = CandidateIndex::build(schema);
                Self::compute_counted_with_index(schema, lsi_config, mode, &index)
            }
            ComputeMode::Filtered { threshold } => {
                let _span = wiki_obs::Span::enter("similarity_filtered");
                crate::filter::compute_filtered(schema, lsi_config, threshold)
            }
            ComputeMode::Lsh { bands, rows } => {
                let _span = wiki_obs::Span::enter("similarity_lsh");
                crate::lsh::compute_lsh(schema, lsi_config, bands, rows)
            }
        }
    }

    /// Computes the table with an explicit traversal mode and a caller-built
    /// [`CandidateIndex`] over the same schema.
    ///
    /// [`crate::MatchEngine`] builds the index once per type and keeps it as
    /// part of the prepared artifacts (so it can be persisted alongside the
    /// table); the dense pass never consults it, and the sparse modes use
    /// their own probe structures instead.
    pub fn compute_with_index(
        schema: &DualSchema,
        lsi_config: LsiConfig,
        mode: ComputeMode,
        index: &CandidateIndex,
    ) -> Self {
        Self::compute_counted_with_index(schema, lsi_config, mode, index).0
    }

    /// [`compute_counted`](Self::compute_counted) with a caller-built
    /// index for the exact modes.
    pub fn compute_counted_with_index(
        schema: &DualSchema,
        lsi_config: LsiConfig,
        mode: ComputeMode,
        index: &CandidateIndex,
    ) -> (Self, PairCounts) {
        match mode {
            ComputeMode::Dense => {
                let _span = wiki_obs::Span::enter("similarity_dense");
                let table = Self::compute_dense_impl(schema, lsi_config);
                let scored =
                    (schema.len() as u64).saturating_mul(schema.len().saturating_sub(1) as u64);
                (table, PairCounts::of_total(schema.len(), scored))
            }
            ComputeMode::Pruned => {
                let _span = wiki_obs::Span::enter("similarity_pruned");
                let table = Self::compute_pruned_with(schema, lsi_config, index);
                // The pruned pass evaluates exactly one cosine per
                // candidate pair per channel; everything else is written
                // as a certified 0.0.
                let scored = (index.value_candidates() + index.link_candidates()) as u64;
                (table, PairCounts::of_total(schema.len(), scored))
            }
            sparse => Self::compute_counted(schema, lsi_config, sparse),
        }
    }

    /// Reassembles a table from persisted parts. The caller (the snapshot
    /// reader) guarantees `pairs` holds every unordered pair `(p < q)` over
    /// `len` attributes in lexicographic order — the layout
    /// [`pair`](Self::pair) depends on.
    pub(crate) fn from_raw_parts(pairs: Vec<CandidatePair>, len: usize) -> Self {
        debug_assert_eq!(pairs.len(), len * len.saturating_sub(1) / 2);
        Self {
            store: PairStore::Owned(pairs),
            len,
            dense_layout: true,
        }
    }

    /// Assembles a dense table whose channel values are **borrowed** from a
    /// mapped snapshot region: `lsi` / `vsim` / `lsim` are the byte ranges
    /// of the three fixed-stride sections (raw little-endian `f64` bits,
    /// one value per canonical pair). Bounds, section sizes and 8-byte
    /// stride alignment are validated here, so the lazy decode on first
    /// touch is infallible; returns `None` when the layout is broken.
    pub fn from_mapped(
        region: Arc<dyn ByteRegion>,
        lsi: Range<usize>,
        vsim: Range<usize>,
        lsim: Range<usize>,
        len: usize,
    ) -> Option<Self> {
        let n_pairs = len.checked_mul(len.saturating_sub(1))? / 2;
        let section_len = n_pairs.checked_mul(8)?;
        let total = region.bytes().len();
        for range in [&lsi, &vsim, &lsim] {
            if range.start > range.end || range.end > total {
                return None;
            }
            if range.end - range.start != section_len || !range.start.is_multiple_of(8) {
                return None;
            }
        }
        Some(Self {
            store: PairStore::Mapped {
                region,
                lsi,
                vsim,
                lsim,
                cache: OnceLock::new(),
            },
            len,
            dense_layout: true,
        })
    }

    /// The pair list, materializing a mapped store on first touch.
    fn stored_pairs(&self) -> &[CandidatePair] {
        match &self.store {
            PairStore::Owned(pairs) => pairs,
            PairStore::Mapped {
                region,
                lsi,
                vsim,
                lsim,
                cache,
            } => cache.get_or_init(|| {
                region.note_page_in(lsi.len() + vsim.len() + lsim.len());
                let bytes = region.bytes();
                let channel = |range: &Range<usize>, i: usize| {
                    let at = range.start + i * 8;
                    f64::from_bits(u64::from_le_bytes(
                        bytes[at..at + 8].try_into().expect("8-byte field"),
                    ))
                };
                let n_pairs = self.len * self.len.saturating_sub(1) / 2;
                let mut pairs = Vec::with_capacity(n_pairs);
                let mut i = 0usize;
                for p in 0..self.len {
                    for q in (p + 1)..self.len {
                        pairs.push(CandidatePair {
                            p,
                            q,
                            vsim: channel(vsim, i),
                            lsim: channel(lsim, i),
                            lsi: channel(lsi, i),
                        });
                        i += 1;
                    }
                }
                pairs
            }),
        }
    }

    /// Number of pairs currently materialized on the heap: everything for
    /// an owned table, `0` for a mapped table nothing has touched yet. The
    /// resident-bytes accounting of the out-of-core tier is built on this.
    pub fn materialized_pairs(&self) -> usize {
        match &self.store {
            PairStore::Owned(pairs) => pairs.len(),
            PairStore::Mapped { cache, .. } => cache.get().map_or(0, Vec::len),
        }
    }

    /// True when the pairs are borrowed from a mapped region rather than
    /// heap-owned.
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, PairStore::Mapped { .. })
    }

    /// Assembles a sparse table from surviving pairs sorted by `(p, q)`.
    /// A sparse table that happens to contain every pair still satisfies
    /// the dense-layout invariant (lexicographic order is required), so it
    /// is promoted to the O(1) lookup path.
    pub(crate) fn from_sparse_pairs(pairs: Vec<CandidatePair>, len: usize) -> Self {
        debug_assert!(pairs
            .windows(2)
            .all(|w| (w[0].p, w[0].q) < (w[1].p, w[1].q)));
        debug_assert!(pairs.iter().all(|pair| pair.p < pair.q && pair.q < len));
        let dense_layout = pairs.len() == len * len.saturating_sub(1) / 2;
        Self {
            store: PairStore::Owned(pairs),
            len,
            dense_layout,
        }
    }

    /// The dense reference pass: every pair, every cosine, single thread.
    fn compute_dense_impl(schema: &DualSchema, lsi_config: LsiConfig) -> Self {
        let n = schema.len();
        let lsi_model = Self::fit_lsi(schema, lsi_config);

        let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
        for p in 0..n {
            for q in (p + 1)..n {
                let lsi = Self::lsi_score(schema, &lsi_model, p, q);
                pairs.push(CandidatePair {
                    p,
                    q,
                    vsim: vsim(schema, p, q),
                    lsim: lsim(schema, p, q),
                    lsi,
                });
            }
        }
        Self {
            store: PairStore::Owned(pairs),
            len: n,
            dense_layout: true,
        }
    }

    /// The candidate-pruned, parallel pass.
    ///
    /// Per-pair work drops from two term-vector cosines plus an
    /// O(dual-count) occurrence zip to, for the typical non-candidate pair,
    /// two O(1) bit tests plus a popcount over the packed occurrence words.
    /// Rows are distributed over threads in an interleaved order so each
    /// chunk gets a mix of long (low `p`) and short (high `p`) rows, then
    /// re-assembled in row order — results are identical to the dense pass
    /// bit for bit, regardless of thread count.
    fn compute_pruned_with(
        schema: &DualSchema,
        lsi_config: LsiConfig,
        index: &CandidateIndex,
    ) -> Self {
        let n = schema.len();
        let lsi_model = Self::fit_lsi(schema, lsi_config);
        let occurrence_bits = pack_occurrence_patterns(schema);

        // Interleave rows front/back for load balance (row p has n-1-p pairs).
        let mut row_order: Vec<usize> = Vec::with_capacity(n);
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            row_order.push(lo);
            lo += 1;
            if lo < hi {
                hi -= 1;
                row_order.push(hi);
            }
        }

        let mut rows: Vec<(usize, Vec<CandidatePair>)> = row_order
            .par_iter()
            .map(|&p| {
                let row: Vec<CandidatePair> = ((p + 1)..n)
                    .map(|q| {
                        let vsim = if index.value_candidate(p, q) {
                            vsim(schema, p, q)
                        } else {
                            0.0
                        };
                        let lsim = if index.link_candidate(p, q) {
                            lsim(schema, p, q)
                        } else {
                            0.0
                        };
                        let lsi = Self::lsi_score_with(schema, &lsi_model, p, q, || {
                            packed_patterns_intersect(&occurrence_bits[p], &occurrence_bits[q])
                        });
                        CandidatePair {
                            p,
                            q,
                            vsim,
                            lsim,
                            lsi,
                        }
                    })
                    .collect();
                (p, row)
            })
            .collect();
        rows.sort_by_key(|(p, _)| *p);
        // Assemble into one exactly-sized vector, freeing each row as it is
        // drained, instead of a flat_map collect that grows by reallocation
        // while every row is still live.
        let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
        for (_, row) in rows {
            pairs.extend(row);
        }
        Self {
            store: PairStore::Owned(pairs),
            len: n,
            dense_layout: true,
        }
    }

    /// Fits the LSI model on the attribute × dual-infobox occurrence matrix.
    pub(crate) fn fit_lsi(schema: &DualSchema, config: LsiConfig) -> LsiModel {
        let _span = wiki_obs::Span::enter("lsi_fit");
        let n = schema.len();
        let m = schema.dual_count;
        let mut occurrence = Matrix::zeros(n, m);
        for (i, attr) in schema.attributes.iter().enumerate() {
            for (j, present) in attr.occurrence_pattern.iter().enumerate() {
                if *present {
                    occurrence.set(i, j, 1.0);
                }
            }
        }
        LsiModel::fit(&occurrence, config)
    }

    /// The paper's LSI score with its sign conventions (dense reference
    /// path; the co-occurrence test zips the boolean patterns).
    fn lsi_score(schema: &DualSchema, model: &LsiModel, p: usize, q: usize) -> f64 {
        Self::lsi_score_with(schema, model, p, q, || {
            schema.attribute(p).co_occurrences(schema.attribute(q)) > 0
        })
    }

    /// Sign-convention core shared by the dense and pruned paths.
    ///
    /// `co_occurs` — whether the two attributes ever appear in the same
    /// dual infobox — is a closure, not a bool: it is only relevant (and
    /// only evaluated) for same-language pairs, so cross-language pairs pay
    /// nothing for it in either pass. The dense path hands in the boolean
    /// zip, the pruned path the AND+popcount over packed patterns.
    pub(crate) fn lsi_score_with(
        schema: &DualSchema,
        model: &LsiModel,
        p: usize,
        q: usize,
        co_occurs: impl FnOnce() -> bool,
    ) -> f64 {
        if model.is_empty() || model.rank() == 0 {
            return 0.0;
        }
        let a = schema.attribute(p);
        let b = schema.attribute(q);
        let cosine = model.similarity(p, q);
        if a.language != b.language {
            // Cross-language pair: similar occurrence patterns indicate
            // cross-language synonymy.
            cosine.clamp(0.0, 1.0)
        } else if co_occurs() {
            // Same-language attributes that co-occur in an infobox are not
            // synonyms.
            0.0
        } else {
            // Same-language attributes that never co-occur: the *less*
            // similar their occurrence patterns, the more likely they are
            // intra-language synonyms.
            (1.0 - cosine).clamp(0.0, 1.0)
        }
    }

    /// Number of attributes the table covers.
    pub fn attribute_count(&self) -> usize {
        self.len
    }

    /// All candidate pairs (unordered, `p < q`). Touching a mapped table
    /// here (or through any other accessor) pages its channels in.
    pub fn pairs(&self) -> &[CandidatePair] {
        self.stored_pairs()
    }

    /// The candidate pair for `(p, q)` (order-insensitive). In a sparse
    /// table `None` means the pair was filtered out (or, under LSH, never
    /// generated) — no evidence, not evidence of zero.
    pub fn pair(&self, p: usize, q: usize) -> Option<&CandidatePair> {
        if p == q {
            return None;
        }
        let (lo, hi) = if p < q { (p, q) } else { (q, p) };
        let pairs = self.stored_pairs();
        if self.dense_layout {
            // Pairs are generated in lexicographic order; index arithmetic:
            // offset(lo) = lo*len - lo*(lo+1)/2, then + (hi - lo - 1).
            let offset = lo * self.len - lo * (lo + 1) / 2 + (hi - lo - 1);
            pairs.get(offset)
        } else {
            pairs
                .binary_search_by(|pair| (pair.p, pair.q).cmp(&(lo, hi)))
                .ok()
                .map(|i| &pairs[i])
        }
    }

    /// True when the table stores every unordered pair (the exact modes'
    /// layout, required by the snapshot encoder and the delta patcher).
    pub fn is_dense_layout(&self) -> bool {
        self.dense_layout
    }

    /// Candidate pairs with an LSI score above `threshold`, sorted by
    /// decreasing LSI score (deterministic tie-break by indices).
    pub fn above_lsi(&self, threshold: f64) -> Vec<CandidatePair> {
        let mut out: Vec<CandidatePair> = self
            .stored_pairs()
            .iter()
            .filter(|pair| pair.lsi > threshold)
            .copied()
            .collect();
        // `total_cmp` rather than `partial_cmp`: the comparator is a total
        // order for every possible float (NaN included), so equal-score
        // pairs rank identically across runs and platforms, with the
        // attribute indices as the stable secondary key.
        out.sort_by(|a, b| {
            b.lsi
                .total_cmp(&a.lsi)
                .then_with(|| (a.p, a.q).cmp(&(b.p, b.q)))
        });
        out
    }
}

/// Packs every attribute's boolean occurrence pattern into `u64` words so
/// the pruned path can test co-occurrence with a handful of ANDs instead of
/// an O(dual-count) boolean zip per pair.
pub(crate) fn pack_occurrence_patterns(schema: &DualSchema) -> Vec<Vec<u64>> {
    let words = schema.dual_count.div_ceil(64);
    schema
        .attributes
        .iter()
        .map(|attr| {
            let mut packed = vec![0u64; words];
            for (j, present) in attr.occurrence_pattern.iter().enumerate() {
                if *present {
                    packed[j / 64] |= 1u64 << (j % 64);
                }
            }
            packed
        })
        .collect()
}

/// True when two packed occurrence patterns share at least one set bit —
/// exactly `AttributeStats::co_occurrences(..) > 0`, word-parallel.
pub(crate) fn packed_patterns_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Article, AttributeValue, Corpus, Infobox, Language, Link};
    use wiki_translate::TitleDictionary;

    /// Corpus where `born`/`nascimento` share values (via translation),
    /// `directed by`/`direção` share links, and `died`/`morte` share only
    /// occurrence patterns.
    fn corpus() -> Corpus {
        let mut corpus = Corpus::new();
        let mut usa_en = Article::new("United States", Language::En, "Country", Infobox::new("c"));
        usa_en.add_cross_link(Language::Pt, "Estados Unidos");
        corpus.insert(usa_en);
        corpus.insert(Article::new(
            "Estados Unidos",
            Language::Pt,
            "Country",
            Infobox::new("c"),
        ));
        let mut person_en = Article::new(
            "Bernardo Bertolucci",
            Language::En,
            "Person",
            Infobox::new("p"),
        );
        person_en.add_cross_link(Language::Pt, "Bernardo Bertolucci");
        corpus.insert(person_en);
        corpus.insert(Article::new(
            "Bernardo Bertolucci",
            Language::Pt,
            "Person",
            Infobox::new("p"),
        ));

        for i in 0..4 {
            let mut en_box = Infobox::new("Infobox Actor");
            en_box.push(AttributeValue::linked(
                "born",
                "United States",
                vec![Link::plain("United States")],
            ));
            en_box.push(AttributeValue::linked(
                "directed by",
                "Bernardo Bertolucci",
                vec![Link::plain("Bernardo Bertolucci")],
            ));
            if i % 2 == 0 {
                en_box.push(AttributeValue::text("died", "June 4, 1975"));
            }
            let mut en = Article::new(format!("Actor {i}"), Language::En, "Actor", en_box);
            en.add_cross_link(Language::Pt, format!("Ator {i}"));

            let mut pt_box = Infobox::new("Infobox Ator");
            pt_box.push(AttributeValue::linked(
                "nascimento",
                "Estados Unidos",
                vec![Link::plain("Estados Unidos")],
            ));
            pt_box.push(AttributeValue::linked(
                "direção",
                "Bernardo Bertolucci",
                vec![Link::plain("Bernardo Bertolucci")],
            ));
            if i % 2 == 0 {
                pt_box.push(AttributeValue::text("morte", "4 de Junho de 1975"));
            } else {
                pt_box.push(AttributeValue::text("falecimento", "4 de Junho de 1975"));
            }
            let mut pt = Article::new(format!("Ator {i}"), Language::Pt, "Ator", pt_box);
            pt.add_cross_link(Language::En, format!("Actor {i}"));

            corpus.insert(en);
            corpus.insert(pt);
        }
        corpus
    }

    fn schema_and_table() -> (DualSchema, SimilarityTable) {
        let corpus = corpus();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        let schema = DualSchema::build(&corpus, &Language::Pt, "Ator", "Actor", &dict);
        let table = SimilarityTable::compute(&schema, LsiConfig::default());
        (schema, table)
    }

    #[test]
    fn vsim_fires_after_dictionary_translation() {
        let (schema, _) = schema_and_table();
        let born = schema.index_of(&Language::En, "born").unwrap();
        let nascimento = schema.index_of(&Language::Pt, "nascimento").unwrap();
        let died = schema.index_of(&Language::En, "died").unwrap();
        assert!(vsim(&schema, born, nascimento) > 0.9);
        assert!(vsim(&schema, born, died) < 0.1);
    }

    #[test]
    fn vsim_canonicalises_dates_across_languages() {
        let (schema, _) = schema_and_table();
        let died = schema.index_of(&Language::En, "died").unwrap();
        let morte = schema.index_of(&Language::Pt, "morte").unwrap();
        // "June 4, 1975" and "4 de Junho de 1975" map to the same token.
        assert!(vsim(&schema, died, morte) > 0.9);
    }

    #[test]
    fn lsim_uses_cross_language_entity_clusters() {
        let (schema, _) = schema_and_table();
        let directed = schema.index_of(&Language::En, "directed by").unwrap();
        let direcao = schema.index_of(&Language::Pt, "direção").unwrap();
        let born = schema.index_of(&Language::En, "born").unwrap();
        assert!(lsim(&schema, directed, direcao) > 0.99);
        assert!(lsim(&schema, directed, born) < 0.01);
    }

    #[test]
    fn lsi_sign_conventions() {
        let (schema, table) = schema_and_table();
        let born = schema.index_of(&Language::En, "born").unwrap();
        let directed = schema.index_of(&Language::En, "directed by").unwrap();
        let morte = schema.index_of(&Language::Pt, "morte").unwrap();
        let falecimento = schema.index_of(&Language::Pt, "falecimento").unwrap();

        // Same-language co-occurring attributes get exactly 0.
        assert_eq!(table.pair(born, directed).unwrap().lsi, 0.0);
        // Same-language attributes that never co-occur (morte/falecimento)
        // get the complement — a high score here.
        let intra = table.pair(morte, falecimento).unwrap().lsi;
        assert!(intra > 0.5, "intra-language synonym LSI = {intra}");
        // Cross-language pair with aligned occurrence patterns scores high.
        let nascimento = schema.index_of(&Language::Pt, "nascimento").unwrap();
        let cross = table.pair(born, nascimento).unwrap().lsi;
        assert!(cross > 0.8, "cross-language LSI = {cross}");
        // All scores are bounded.
        for pair in table.pairs() {
            assert!((0.0..=1.0).contains(&pair.lsi), "lsi = {}", pair.lsi);
            assert!((0.0..=1.0 + 1e-9).contains(&pair.vsim));
            assert!((0.0..=1.0 + 1e-9).contains(&pair.lsim));
        }
    }

    #[test]
    fn pair_lookup_is_order_insensitive_and_complete() {
        let (schema, table) = schema_and_table();
        let n = schema.len();
        assert_eq!(table.pairs().len(), n * (n - 1) / 2);
        for p in 0..n {
            assert!(table.pair(p, p).is_none());
            for q in 0..n {
                if p == q {
                    continue;
                }
                let a = table.pair(p, q).unwrap();
                let b = table.pair(q, p).unwrap();
                assert_eq!((a.p, a.q), (b.p, b.q));
                assert_eq!(a.p.min(a.q), p.min(q));
                assert_eq!(a.p.max(a.q), p.max(q));
            }
        }
    }

    #[test]
    fn pruned_table_is_byte_identical_to_dense() {
        let corpus = corpus();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        let schema = DualSchema::build(&corpus, &Language::Pt, "Ator", "Actor", &dict);
        let dense = SimilarityTable::compute_dense(&schema, LsiConfig::default());
        let pruned =
            SimilarityTable::compute_with(&schema, LsiConfig::default(), ComputeMode::Pruned);
        assert_eq!(dense.pairs().len(), pruned.pairs().len());
        for (d, p) in dense.pairs().iter().zip(pruned.pairs()) {
            assert_eq!((d.p, d.q), (p.p, p.q));
            // Bit-for-bit equality, not approximate equality: the pruned
            // path must call the exact same float operations for candidate
            // pairs and write literal 0.0 only where the dense cosine is
            // provably 0.0.
            assert_eq!(d.vsim.to_bits(), p.vsim.to_bits(), "vsim {}-{}", d.p, d.q);
            assert_eq!(d.lsim.to_bits(), p.lsim.to_bits(), "lsim {}-{}", d.p, d.q);
            assert_eq!(d.lsi.to_bits(), p.lsi.to_bits(), "lsi {}-{}", d.p, d.q);
        }
    }

    /// Lays a dense table's three channels out as fixed-stride raw-bits
    /// sections (the v4 on-disk shape) and returns the region plus ranges.
    fn mapped_table_layout(
        table: &SimilarityTable,
    ) -> (Vec<u8>, Range<usize>, Range<usize>, Range<usize>) {
        let mut buf = Vec::new();
        let mut section = |field: fn(&CandidatePair) -> f64| {
            let start = buf.len();
            for pair in table.pairs() {
                buf.extend_from_slice(&field(pair).to_bits().to_le_bytes());
            }
            start..buf.len()
        };
        let lsi = section(|p| p.lsi);
        let vsim = section(|p| p.vsim);
        let lsim = section(|p| p.lsim);
        (buf, lsi, vsim, lsim)
    }

    #[test]
    fn mapped_table_matches_owned_bit_for_bit() {
        let (_, table) = schema_and_table();
        let (buf, lsi, vsim, lsim) = mapped_table_layout(&table);
        let mapped =
            SimilarityTable::from_mapped(Arc::new(buf), lsi, vsim, lsim, table.attribute_count())
                .expect("valid layout");
        assert!(mapped.is_mapped());
        // Nothing decoded until first touch.
        assert_eq!(mapped.materialized_pairs(), 0);
        assert_eq!(mapped.pairs().len(), table.pairs().len());
        assert_eq!(mapped.materialized_pairs(), table.pairs().len());
        for (a, b) in table.pairs().iter().zip(mapped.pairs()) {
            assert_eq!((a.p, a.q), (b.p, b.q));
            assert_eq!(a.vsim.to_bits(), b.vsim.to_bits());
            assert_eq!(a.lsim.to_bits(), b.lsim.to_bits());
            assert_eq!(a.lsi.to_bits(), b.lsi.to_bits());
        }
        // O(1) dense lookup works over the mapped store too.
        for pair in table.pairs() {
            let found = mapped.pair(pair.p, pair.q).unwrap();
            assert_eq!(found.lsi.to_bits(), pair.lsi.to_bits());
        }
    }

    #[test]
    fn mapped_table_rejects_broken_layouts() {
        let (_, table) = schema_and_table();
        let n = table.attribute_count();
        let (buf, lsi, vsim, lsim) = mapped_table_layout(&table);
        let region: Arc<dyn ByteRegion> = Arc::new(buf);
        // Section length does not match the pair count.
        assert!(SimilarityTable::from_mapped(
            Arc::clone(&region),
            lsi.clone(),
            vsim.clone(),
            lsim.clone(),
            n + 1
        )
        .is_none());
        // Out-of-bounds section.
        assert!(SimilarityTable::from_mapped(
            Arc::clone(&region),
            lsi.clone(),
            vsim.clone(),
            lsim.start + 8..lsim.end + 8,
            n
        )
        .is_none());
        // Misaligned (non 8-stride) section start.
        assert!(SimilarityTable::from_mapped(
            Arc::clone(&region),
            lsi.start + 4..lsi.end + 4,
            vsim,
            lsim,
            n
        )
        .is_none());
    }

    #[test]
    fn compute_defaults_to_the_pruned_mode() {
        assert_eq!(ComputeMode::default(), ComputeMode::Pruned);
        let (schema, table) = schema_and_table();
        let dense = SimilarityTable::compute_dense(&schema, LsiConfig::default());
        assert_eq!(table.pairs(), dense.pairs());
    }

    #[test]
    fn filtered_table_stores_exactly_the_at_threshold_pairs() {
        let (schema, _) = schema_and_table();
        let dense = SimilarityTable::compute_dense(&schema, LsiConfig::default());
        let total = (schema.len() * (schema.len() - 1)) as u64;
        for threshold in [0.2, 0.5, 0.9] {
            let (filtered, counts) = SimilarityTable::compute_counted(
                &schema,
                LsiConfig::default(),
                ComputeMode::filtered(threshold),
            );
            assert_eq!(counts.scored + counts.pruned, total);
            for d in dense.pairs() {
                let stored = filtered.pair(d.p, d.q);
                if d.vsim >= threshold || d.lsim >= threshold {
                    let s = stored.expect("above-threshold pair must be stored");
                    if d.vsim >= threshold {
                        assert_eq!(s.vsim.to_bits(), d.vsim.to_bits());
                    } else {
                        assert_eq!(s.vsim, 0.0);
                    }
                    if d.lsim >= threshold {
                        assert_eq!(s.lsim.to_bits(), d.lsim.to_bits());
                    } else {
                        assert_eq!(s.lsim, 0.0);
                    }
                    assert_eq!(s.lsi.to_bits(), d.lsi.to_bits());
                } else {
                    assert!(
                        stored.is_none(),
                        "sub-threshold pair ({}, {}) must be dropped",
                        d.p,
                        d.q
                    );
                }
            }
        }
    }

    #[test]
    fn lsh_table_scores_are_bit_identical_where_present() {
        let (schema, _) = schema_and_table();
        let dense = SimilarityTable::compute_dense(&schema, LsiConfig::default());
        let (lsh, counts) = SimilarityTable::compute_counted(
            &schema,
            LsiConfig::default(),
            ComputeMode::lsh(16, 4),
        );
        assert_eq!(
            counts.scored + counts.pruned,
            (schema.len() * (schema.len() - 1)) as u64
        );
        // Approximate *candidate generation*, exact scoring: whatever LSH
        // stores must carry the oracle's bits.
        assert!(!lsh.pairs().is_empty());
        for pair in lsh.pairs() {
            let d = dense.pair(pair.p, pair.q).unwrap();
            assert_eq!(pair.vsim.to_bits(), d.vsim.to_bits());
            assert_eq!(pair.lsim.to_bits(), d.lsim.to_bits());
            assert_eq!(pair.lsi.to_bits(), d.lsi.to_bits());
        }
        // The link channel uses an exact shared-term probe, so no pair
        // with non-zero lsim can be missing.
        for d in dense.pairs() {
            if d.lsim > 0.0 {
                assert!(lsh.pair(d.p, d.q).is_some(), "lsim pair ({}, {})", d.p, d.q);
            }
        }
    }

    #[test]
    fn packed_patterns_match_boolean_co_occurrence() {
        let (schema, _) = schema_and_table();
        let bits = pack_occurrence_patterns(&schema);
        for p in 0..schema.len() {
            for q in (p + 1)..schema.len() {
                let expected = schema.attribute(p).co_occurrences(schema.attribute(q)) > 0;
                assert_eq!(packed_patterns_intersect(&bits[p], &bits[q]), expected);
            }
        }
    }

    #[test]
    fn compute_mode_round_trips_through_serde_and_from_str() {
        for (mode, text) in [
            (ComputeMode::Pruned, "pruned"),
            (ComputeMode::Dense, "dense"),
            (ComputeMode::filtered(0.6), "filtered:0.6"),
            (ComputeMode::filtered(0.25), "filtered:0.25"),
            (ComputeMode::lsh(16, 4), "lsh:16x4"),
            (ComputeMode::lsh(8, 8), "lsh:8x8"),
        ] {
            // Display / FromStr.
            assert_eq!(mode.to_string(), text);
            assert_eq!(text.parse::<ComputeMode>().unwrap(), mode);
            assert_eq!(text.to_uppercase().parse::<ComputeMode>().unwrap(), mode);
            // serde (via the Value tree the shims use).
            let value = mode.serialize_value();
            assert_eq!(ComputeMode::deserialize_value(&value).unwrap(), mode);
            // The serde variant names are also accepted by FromStr so a
            // serialized mode can be fed back through a CLI flag.
            let serde_name = value.as_str().unwrap().to_string();
            assert_eq!(serde_name.parse::<ComputeMode>().unwrap(), mode);
        }
        let err = "fast".parse::<ComputeMode>().unwrap_err();
        assert!(err.to_string().contains("fast"), "{err}");
    }

    #[test]
    fn compute_mode_parsing_applies_defaults_and_validates_parameters() {
        // Bare names pick the documented defaults.
        assert_eq!(
            "filtered".parse::<ComputeMode>().unwrap(),
            ComputeMode::filtered(ComputeMode::DEFAULT_FILTER_THRESHOLD)
        );
        assert_eq!(
            "lsh".parse::<ComputeMode>().unwrap(),
            ComputeMode::lsh(
                ComputeMode::DEFAULT_LSH_BANDS,
                ComputeMode::DEFAULT_LSH_ROWS
            )
        );
        // Invalid parameters are rejected, never constructed.
        for bad in [
            "filtered:0",
            "filtered:-0.5",
            "filtered:1.5",
            "filtered:nan",
            "filtered:inf",
            "filtered:",
            "lsh:0x4",
            "lsh:16x0",
            "lsh:16x5", // 80 signature bits > 64
            "lsh:16",
            "lsh:",
            "filteredx",
            "lshy",
        ] {
            assert!(
                bad.parse::<ComputeMode>().is_err(),
                "{bad} should not parse"
            );
        }
        // Exactness classification: the sparse modes are not oracles.
        assert!(ComputeMode::Pruned.is_exact());
        assert!(ComputeMode::Dense.is_exact());
        assert!(!ComputeMode::filtered(0.6).is_exact());
        assert!(!ComputeMode::lsh(16, 4).is_exact());
    }

    #[test]
    fn ranking_is_deterministic_for_ties_and_total_for_nan() {
        // A hand-built table over 4 attributes: three pairs tied at 0.9, one
        // NaN score, and two distinct scores. Regression test for the
        // NaN-unsafe `partial_cmp` tie-breaking this module used to have:
        // with `total_cmp` + the (p, q) secondary key the ranked output is a
        // fixed sequence, not whatever the sort happened to do with
        // incomparable or equal keys.
        let scores = [
            ((0, 1), 0.9),
            ((0, 2), f64::NAN),
            ((0, 3), 0.9),
            ((1, 2), 0.3),
            ((1, 3), 0.9),
            ((2, 3), 0.7),
        ];
        let pairs: Vec<CandidatePair> = scores
            .iter()
            .map(|&((p, q), lsi)| CandidatePair {
                p,
                q,
                vsim: 0.0,
                lsim: 0.0,
                lsi,
            })
            .collect();
        let table = SimilarityTable::from_raw_parts(pairs, 4);
        let ranked: Vec<(usize, usize)> = table
            .above_lsi(0.2)
            .into_iter()
            .map(|pair| (pair.p, pair.q))
            .collect();
        // NaN fails the `> threshold` filter; the 0.9 ties come out in
        // ascending (p, q) order.
        assert_eq!(ranked, vec![(0, 1), (0, 3), (1, 3), (2, 3), (1, 2)]);
        // Repeated runs agree (the comparator is a pure total order).
        for _ in 0..8 {
            let again: Vec<(usize, usize)> = table
                .above_lsi(0.2)
                .into_iter()
                .map(|pair| (pair.p, pair.q))
                .collect();
            assert_eq!(again, ranked);
        }
    }

    #[test]
    fn above_lsi_is_sorted_and_filtered() {
        let (_, table) = schema_and_table();
        let ranked = table.above_lsi(0.1);
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].lsi >= w[1].lsi);
        }
        for pair in &ranked {
            assert!(pair.lsi > 0.1);
        }
        // A prohibitive threshold removes everything.
        assert!(table.above_lsi(1.1).is_empty());
    }
}
