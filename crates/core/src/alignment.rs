//! The `AttributeAlignment` algorithm (Algorithm 1 of the paper), its
//! `IntegrateMatches` helper (Algorithm 2) and the `ReviseUncertain` step
//! (Section 3.4).
//!
//! The algorithm proceeds in two phases:
//!
//! 1. **Certain phase.** Candidate pairs whose LSI correlation exceeds
//!    `TLSI` are processed in decreasing LSI order. A pair whose
//!    `max(vsim, lsim)` exceeds `Tsim` is a *certain* correspondence and is
//!    integrated into the match set; other pairs are buffered as
//!    *uncertain*. Integration enforces a pairwise-correlation constraint: a
//!    new attribute may join an existing cluster only if its LSI score with
//!    every current member exceeds `TLSI` (this is what keeps `morte` out of
//!    the `born ~ nascimento` cluster in the paper's Example 2).
//! 2. **Revision phase (`ReviseUncertain`).** Buffered uncertain pairs whose
//!    attributes co-occur strongly with already-matched attributes — as
//!    measured by the *inductive grouping score* — are integrated as well,
//!    recovering correct correspondences whose value/link similarity is low
//!    (the `other names ~ outros nomes` case).
//!
//! All the ablation switches of [`WikiMatchConfig`]
//! act here, which is what the component-contribution experiments (Table 3 /
//! Figure 3) exercise.

use crate::config::{CandidateOrdering, WikiMatchConfig};
use crate::matches::MatchSet;
use crate::schema::DualSchema;
use crate::similarity::{CandidatePair, SimilarityTable};

/// The attribute-alignment algorithm over one dual-language schema.
#[derive(Debug, Clone)]
pub struct AttributeAlignment<'a> {
    schema: &'a DualSchema,
    table: &'a SimilarityTable,
    config: WikiMatchConfig,
}

impl<'a> AttributeAlignment<'a> {
    /// Creates the aligner for a schema and its similarity table.
    pub fn new(
        schema: &'a DualSchema,
        table: &'a SimilarityTable,
        config: WikiMatchConfig,
    ) -> Self {
        Self {
            schema,
            table,
            config,
        }
    }

    /// Runs the full algorithm and returns the set of matches.
    pub fn run(&self) -> MatchSet {
        let mut matches = MatchSet::new();
        let mut uncertain: Vec<CandidatePair> = Vec::new();

        for pair in self.ordered_candidates() {
            let evidence = self.evidence(&pair);
            let accept = if self.config.single_step {
                evidence > 0.0
            } else {
                evidence > self.config.t_sim
            };
            if accept {
                self.integrate(&pair, &mut matches);
            } else {
                uncertain.push(pair);
            }
        }

        if self.config.use_revise_uncertain && !self.config.single_step {
            for pair in self.revise_uncertain(&uncertain, &matches) {
                self.integrate(&pair, &mut matches);
            }
        }
        matches
    }

    /// The direct-evidence score used to accept a candidate, honouring the
    /// feature-ablation switches.
    fn evidence(&self, pair: &CandidatePair) -> f64 {
        let v = if self.config.use_vsim { pair.vsim } else { 0.0 };
        let l = if self.config.use_lsim { pair.lsim } else { 0.0 };
        v.max(l)
    }

    /// Builds the candidate queue: pairs above `TLSI`, ordered according to
    /// the configuration.
    fn ordered_candidates(&self) -> Vec<CandidatePair> {
        match self.config.ordering {
            CandidateOrdering::Lsi => self.table.above_lsi(self.config.t_lsi),
            CandidateOrdering::MaxSimilarity => {
                let mut pairs: Vec<CandidatePair> = self
                    .table
                    .pairs()
                    .iter()
                    .filter(|p| self.evidence(p) > 0.0)
                    .copied()
                    .collect();
                // `total_cmp` for a NaN-safe total order: equal-evidence
                // pairs fall through to the attribute indices, so the queue
                // is identical across runs and platforms.
                pairs.sort_by(|a, b| {
                    self.evidence(b)
                        .total_cmp(&self.evidence(a))
                        .then_with(|| (a.p, a.q).cmp(&(b.p, b.q)))
                });
                pairs
            }
            CandidateOrdering::Random => {
                let mut pairs = self.table.above_lsi(self.config.t_lsi);
                deterministic_shuffle(&mut pairs, self.config.ordering_seed);
                pairs
            }
        }
    }

    /// `IntegrateMatches` (Algorithm 2): decides whether the candidate pair
    /// creates a new cluster, extends an existing one, or is ignored.
    fn integrate(&self, pair: &CandidatePair, matches: &mut MatchSet) {
        let in_p = matches.cluster_of(pair.p);
        let in_q = matches.cluster_of(pair.q);
        match (in_p, in_q) {
            (None, None) => {
                matches.add_cluster(pair.p, pair.q);
            }
            (Some(cluster), None) => {
                if self.correlated_with_all(pair.q, cluster, matches) {
                    matches.add_to_cluster(cluster, pair.q);
                }
            }
            (None, Some(cluster)) => {
                if self.correlated_with_all(pair.p, cluster, matches) {
                    matches.add_to_cluster(cluster, pair.p);
                }
            }
            // Both attributes already matched (possibly in different
            // clusters): the paper's algorithm leaves them untouched.
            (Some(_), Some(_)) => {}
        }
    }

    /// The pairwise-correlation constraint of `IntegrateMatches`: the new
    /// attribute must have an LSI score above `TLSI` with every member of
    /// the target cluster. Disabled by the `-IntegrateMatches` ablation.
    fn correlated_with_all(&self, attr: usize, cluster: usize, matches: &MatchSet) -> bool {
        if !self.config.use_integrate_constraint {
            return true;
        }
        matches.clusters()[cluster].members.iter().all(|&member| {
            self.table
                .pair(attr, member)
                .map(|p| p.lsi > self.config.t_lsi)
                .unwrap_or(false)
        })
    }

    /// `ReviseUncertain`: selects the buffered pairs whose attributes are
    /// strongly co-grouped with already-matched attributes.
    fn revise_uncertain(
        &self,
        uncertain: &[CandidatePair],
        matches: &MatchSet,
    ) -> Vec<CandidatePair> {
        if !self.config.use_inductive_grouping {
            return uncertain.to_vec();
        }
        let mut revised: Vec<(f64, CandidatePair)> = uncertain
            .iter()
            .filter_map(|pair| {
                // Revision reinforces *weak* evidence; pairs with no direct
                // evidence at all (zero value and link similarity) stay
                // rejected regardless of how well they co-occur with the
                // existing matches.
                if self.evidence(pair) <= 0.0 {
                    return None;
                }
                let score = self.inductive_grouping_score(pair, matches);
                (score > self.config.t_eg).then_some((score, *pair))
            })
            .collect();
        // Integrate the strongest revisions first; `total_cmp` plus the
        // attribute-index key keeps the order stable even for tied (or
        // pathological) grouping scores.
        revised.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| (a.1.p, a.1.q).cmp(&(b.1.p, b.1.q)))
        });
        revised.into_iter().map(|(_, pair)| pair).collect()
    }

    /// The inductive grouping score `eg(a, a')` of Section 3.4: the average
    /// product of grouping scores between each attribute and the matched
    /// attributes it co-occurs with in its own language, restricted to
    /// matched attribute pairs `(ca ~ c'a)` that belong to the same cluster.
    fn inductive_grouping_score(&self, pair: &CandidatePair, matches: &MatchSet) -> f64 {
        let a = pair.p;
        let b = pair.q;
        let lang_a = &self.schema.attribute(a).language;
        let lang_b = &self.schema.attribute(b).language;

        let mut total = 0.0;
        let mut count = 0usize;
        for cluster in matches.clusters() {
            // Matched attributes of a's language and of b's language within
            // the same cluster (i.e. ca ~ c'a holds).
            let ca: Vec<usize> = cluster
                .members
                .iter()
                .copied()
                .filter(|&m| &self.schema.attribute(m).language == lang_a && m != a)
                .collect();
            let cb: Vec<usize> = cluster
                .members
                .iter()
                .copied()
                .filter(|&m| &self.schema.attribute(m).language == lang_b && m != b)
                .collect();
            for &x in &ca {
                for &y in &cb {
                    let ga = self.schema.grouping_score(a, x);
                    let gb = self.schema.grouping_score(b, y);
                    if ga > 0.0 || gb > 0.0 {
                        total += ga * gb;
                        count += 1;
                    }
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Deterministic Fisher-Yates shuffle driven by a splitmix64 stream; used by
/// the random-ordering ablation so results stay reproducible.
fn deterministic_shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Article, AttributeValue, Corpus, Infobox, Language, Link};
    use wiki_linalg::LsiConfig;
    use wiki_translate::TitleDictionary;

    /// A corpus engineered so that:
    /// * `born`/`nascimento` is a certain match (shared values),
    /// * `directed by`/`direção` is a certain match (shared links),
    /// * `other names`/`outros nomes` is correct but value-dissimilar
    ///   (uncertain: values are unrelated free text), and
    /// * `died`/`falecimento`/`morte` includes an intra-language synonym.
    fn corpus() -> Corpus {
        let mut corpus = Corpus::new();
        let countries = [("United States", "Estados Unidos"), ("Ireland", "Irlanda")];
        for (en, pt) in countries {
            let mut a = Article::new(en, Language::En, "Country", Infobox::new("c"));
            a.add_cross_link(Language::Pt, pt);
            corpus.insert(a);
            corpus.insert(Article::new(pt, Language::Pt, "Country", Infobox::new("c")));
        }
        let mut person = Article::new("Some Director", Language::En, "Person", Infobox::new("p"));
        person.add_cross_link(Language::Pt, "Some Director");
        corpus.insert(person);
        corpus.insert(Article::new(
            "Some Director",
            Language::Pt,
            "Person",
            Infobox::new("p"),
        ));

        for i in 0..8 {
            let country = countries[i % 2];
            let mut en_box = Infobox::new("Infobox Actor");
            en_box.push(AttributeValue::linked(
                "born",
                country.0,
                vec![Link::plain(country.0)],
            ));
            en_box.push(AttributeValue::linked(
                "directed by",
                "Some Director",
                vec![Link::plain("Some Director")],
            ));
            en_box.push(AttributeValue::text("other names", format!("Falcon {i}")));
            if i < 4 {
                en_box.push(AttributeValue::text("died", format!("{}", 1990 + i)));
            }
            let mut en = Article::new(format!("Actor {i}"), Language::En, "Actor", en_box);
            en.add_cross_link(Language::Pt, format!("Ator {i}"));

            let mut pt_box = Infobox::new("Infobox Ator");
            pt_box.push(AttributeValue::linked(
                "nascimento",
                country.1,
                vec![Link::plain(country.1)],
            ));
            pt_box.push(AttributeValue::linked(
                "direção",
                "Some Director",
                vec![Link::plain("Some Director")],
            ));
            // Mostly different alias strings: value similarity is positive
            // but far below the certainty threshold, so the pair can only be
            // recovered by ReviseUncertain.
            let alias = if i == 0 {
                "Falcon 0".to_string()
            } else {
                format!("Vega {i}")
            };
            pt_box.push(AttributeValue::text("outros nomes", alias));
            if i < 4 {
                let name = if i % 2 == 0 { "falecimento" } else { "morte" };
                pt_box.push(AttributeValue::text(name, format!("{}", 1990 + i)));
            }
            let mut pt = Article::new(format!("Ator {i}"), Language::Pt, "Ator", pt_box);
            pt.add_cross_link(Language::En, format!("Actor {i}"));
            corpus.insert(en);
            corpus.insert(pt);
        }
        corpus
    }

    fn setup(config: WikiMatchConfig) -> (DualSchema, MatchSet) {
        let corpus = corpus();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        let schema = DualSchema::build(&corpus, &Language::Pt, "Ator", "Actor", &dict);
        let table = SimilarityTable::compute(&schema, LsiConfig::default());
        let matches = AttributeAlignment::new(&schema, &table, config).run();
        (schema, matches)
    }

    fn has_pair(schema: &DualSchema, matches: &MatchSet, pt: &str, en: &str) -> bool {
        matches
            .cross_language_pairs(schema, &Language::Pt, &Language::En)
            .contains(&(pt.to_string(), en.to_string()))
    }

    #[test]
    fn finds_certain_value_and_link_matches() {
        let (schema, matches) = setup(WikiMatchConfig::default());
        // Derived pairs use normalised labels ("direcao", not "direção").
        assert!(has_pair(&schema, &matches, "nascimento", "born"));
        assert!(has_pair(&schema, &matches, "direcao", "directed by"));
    }

    #[test]
    fn revise_uncertain_recovers_low_similarity_matches() {
        let with = setup(WikiMatchConfig::default());
        let without = setup(WikiMatchConfig::default().without_revise_uncertain());
        // The alias attribute has disjoint values, so it can only be found by
        // the revision phase.
        assert!(has_pair(&with.0, &with.1, "outros nomes", "other names"));
        assert!(!has_pair(
            &without.0,
            &without.1,
            "outros nomes",
            "other names"
        ));
        // Removing the phase never *adds* correspondences.
        let n_with = with
            .1
            .cross_language_pairs(&with.0, &Language::Pt, &Language::En)
            .len();
        let n_without = without
            .1
            .cross_language_pairs(&without.0, &Language::Pt, &Language::En)
            .len();
        assert!(n_with >= n_without);
    }

    #[test]
    fn incorrect_cross_pairs_are_not_produced() {
        let (schema, matches) = setup(WikiMatchConfig::default());
        assert!(!has_pair(&schema, &matches, "direção", "born"));
        assert!(!has_pair(&schema, &matches, "nascimento", "directed by"));
        assert!(!has_pair(&schema, &matches, "outros nomes", "born"));
    }

    #[test]
    fn single_step_accepts_any_positive_evidence() {
        let (schema, single) = setup(WikiMatchConfig::default().single_step());
        let pairs = single.cross_language_pairs(&schema, &Language::Pt, &Language::En);
        // The single-step ablation accepts every candidate with positive
        // vsim/lsim, so the strongly corroborated matches are still present…
        assert!(pairs.contains(&("nascimento".to_string(), "born".to_string())));
        assert!(pairs.contains(&("direcao".to_string(), "directed by".to_string())));
        // …and weakly corroborated (date-overlap) pairs are accepted too,
        // which is what erodes precision in the paper's Table 3.
        assert!(
            pairs
                .iter()
                .any(|(pt, en)| en == "died" && (pt == "falecimento" || pt == "morte")),
            "expected a death-date pair among {pairs:?}"
        );
    }

    #[test]
    fn random_ordering_is_deterministic_per_seed() {
        let config = WikiMatchConfig::default().with_random_ordering();
        let (schema_a, a) = setup(config);
        let (_, b) = setup(config);
        assert_eq!(
            a.cross_language_pairs(&schema_a, &Language::Pt, &Language::En),
            b.cross_language_pairs(&schema_a, &Language::Pt, &Language::En)
        );
    }

    #[test]
    fn ablations_do_not_panic_and_stay_consistent() {
        for config in [
            WikiMatchConfig::default().without_vsim(),
            WikiMatchConfig::default().without_lsim(),
            WikiMatchConfig::default().without_lsi(),
            WikiMatchConfig::default().without_integrate_constraint(),
            WikiMatchConfig::default().without_inductive_grouping(),
        ] {
            let (schema, matches) = setup(config);
            for (pt, en) in matches.cross_language_pairs(&schema, &Language::Pt, &Language::En) {
                // Every reported pair references attributes that exist.
                assert!(schema.index_of(&Language::Pt, &pt).is_some());
                assert!(schema.index_of(&Language::En, &en).is_some());
            }
        }
    }

    #[test]
    fn deterministic_shuffle_is_stable() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        deterministic_shuffle(&mut a, 5);
        deterministic_shuffle(&mut b, 5);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..20).collect();
        deterministic_shuffle(&mut c, 6);
        assert_ne!(a, c);
    }
}
