//! Snapshot persistence for [`MatchEngine`] artifacts.
//!
//! Every artifact the engine computes — the bilingual title dictionary and
//! the per-type [`DualSchema`] / [`SimilarityTable`] / `CandidateIndex`
//! triple — is a pure function of the corpus, yet a fresh process rebuilds
//! all of it from scratch. This module materializes those artifacts in a
//! **versioned, std-only binary format** so a restarting service can warm
//! up by *loading* instead of *recomputing* (the same move Tuffy makes by
//! pushing inference state into a persistent store instead of RAM):
//!
//! ```text
//! header   magic (8B) | format version (u32) | corpus fingerprint (u64)
//!          | payload length (u64) | FNV-1a checksum of payload (u64)
//! payload  title dictionary | per-type records: arena string table (each
//!          term once, in id order) then attributes whose vectors are
//!          delta-compressed varint id streams + raw IEEE-754 weight bits,
//!          plus bit-packed occurrence patterns
//! ```
//!
//! Guarantees:
//!
//! * **Bit-identical loads.** Floats round-trip through
//!   [`f64::to_bits`]/[`f64::from_bits`], term vectors and dictionary
//!   entries through their exact sorted entry lists — a restored engine
//!   produces byte-for-byte the alignments of a fresh build (pinned by
//!   `tests/snapshot_roundtrip.rs`).
//! * **Self-validating files.** A snapshot names its format version and the
//!   fingerprint of the corpus it was captured from; loading rejects
//!   truncated files, checksum mismatches (corruption), version bumps and
//!   fingerprint mismatches with a typed [`SnapshotError`] instead of
//!   deserializing garbage.
//! * **Atomic saves.** [`EngineSnapshot::save`] writes to a temporary file
//!   in the target directory and renames it into place, so a concurrent
//!   reader never observes a half-written snapshot.
//!
//! ```
//! use wiki_corpus::{Dataset, SyntheticConfig};
//! use wikimatch::snapshot::EngineSnapshot;
//! use wikimatch::MatchEngine;
//!
//! let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
//! let engine = MatchEngine::new(dataset.clone());
//! engine.align("film");
//!
//! // Persist the session's cached artifacts ...
//! let bytes = EngineSnapshot::capture(&engine).unwrap().to_bytes();
//!
//! // ... and warm-start a new session from them: zero artifact builds.
//! let snapshot = EngineSnapshot::from_bytes(&bytes).unwrap();
//! let restored = MatchEngine::builder(dataset)
//!     .build_from_snapshot(snapshot)
//!     .unwrap();
//! assert_eq!(restored.stats().artifact_builds, 0);
//! assert_eq!(restored.cached_types(), 1);
//! ```

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use rayon::prelude::*;

use wiki_corpus::{Article, AttributeValue, Dataset, Infobox, Language, Link};
use wiki_text::TermVector;
use wiki_translate::TitleDictionary;

use crate::delta::{CorpusDelta, DeltaOp};
use crate::engine::{MatchEngine, PreparedType};
use crate::schema::{AttributeStats, CandidateIndex, DualSchema, PairSet};
use crate::similarity::{CandidatePair, SimilarityTable};

/// Version stamped into every snapshot header; readers reject anything
/// else. Bump it whenever the payload layout changes.
///
/// Version history:
/// * **1** — string-keyed term vectors: every vector spelled its terms out,
///   so a term occurring in `k` vectors was written `k` times.
/// * **2** — interned vocabulary: each type record opens with its arena's
///   string table (every term written exactly once, in id order) and
///   vectors are delta-encoded `u32` id streams plus raw weight bits.
///   Version-1 files are rejected with [`SnapshotError::UnsupportedVersion`]
///   — rebuild and re-persist, the artifacts are pure functions of the
///   corpus.
/// * **3** — journaled-delta era: the base payload layout is unchanged from
///   version 2, but a base image may now be accompanied by a sibling
///   [`DeltaJournal`] whose records chain forward from the base fingerprint.
///   The stamp separates bases written by journal-aware builds from
///   pre-journal files, so an old reader can never pair a journal with a
///   base it does not understand. Version-2 files are rejected — rebuild
///   and re-persist.
/// * **4** — the **directly-addressable** layout (see [`crate::direct`]):
///   an offset directory plus fixed-stride sections that artifacts can
///   borrow from a mapped region without decoding. Version 3 remains the
///   compact wire/archive form and the version [`EngineSnapshot::save`]
///   writes; version-4 files are written by
///   [`EngineSnapshot::save_direct`](crate::direct) and *accepted* by
///   [`EngineSnapshot::from_bytes`] (decoded into owned artifacts — the
///   two forms convert losslessly in both directions).
pub const FORMAT_VERSION: u32 = 3;

/// Magic bytes opening every snapshot file (shared by the compact v3 form
/// and the directly-addressable v4 form — the version field tells them
/// apart).
pub(crate) const MAGIC: [u8; 8] = *b"WMSNAP\r\n";

/// Fixed size of the header preceding the payload.
pub(crate) const HEADER_LEN: usize = MAGIC.len() + 4 + 8 + 8 + 8;

/// Why loading (or saving) a snapshot failed.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the underlying file failed.
    Io(io::Error),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The snapshot was captured from a different corpus than the dataset
    /// it is being restored against.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot.
        found: u64,
        /// Fingerprint of the dataset the caller supplied.
        expected: u64,
    },
    /// The payload bytes do not hash to the checksum in the header — the
    /// file was corrupted after writing.
    ChecksumMismatch {
        /// Checksum computed over the payload as read.
        found: u64,
        /// Checksum recorded in the header.
        expected: u64,
    },
    /// The engine runs a sparse / approximate compute mode
    /// (`filtered` / `lsh`) whose artifacts do not satisfy the snapshot
    /// contract — a restored snapshot must be bit-identical to a cold
    /// rebuild, and a sparse table's membership is not. The payload names
    /// the offending mode.
    InexactMode(String),
    /// The file ends before the length its header (or a length prefix
    /// inside the payload) promises.
    Truncated,
    /// The payload decoded but violates a structural invariant.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot I/O error: {err}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot was captured from a different corpus \
                 (fingerprint {found:#018x}, dataset has {expected:#018x})"
            ),
            SnapshotError::ChecksumMismatch { found, expected } => write!(
                f,
                "snapshot payload is corrupted \
                 (checksum {found:#018x}, header says {expected:#018x})"
            ),
            SnapshotError::InexactMode(mode) => write!(
                f,
                "compute mode {mode:?} builds sparse artifacts that cannot satisfy \
                 the snapshot's bit-identical-rebuild contract"
            ),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::Malformed(detail) => write!(f, "malformed snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(err: io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// Streaming FNV-1a (64-bit) — the checksum and fingerprint hash. Not
/// cryptographic; it guards against corruption and stale artifacts, not
/// adversaries.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Hashes a length-prefixed string so adjacent fields cannot alias.
    fn update_str(&mut self, s: &str) {
        self.update(&(s.len() as u64).to_le_bytes());
        self.update(s.as_bytes());
    }

    fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Checksum of a payload: FNV-1a 64 folded over little-endian `u64` words
/// (plus a byte-wise tail). Word-at-a-time keeps the validation pass at
/// memory speed — snapshots at the larger tiers run to tens of megabytes,
/// and a byte-wise hash there would cost as much as the decode itself.
pub(crate) fn checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut words = payload.chunks_exact(8);
    for word in &mut words {
        h ^= u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic fingerprint of everything the engine's artifacts depend
/// on: the language pair, the type pairings and the full corpus content
/// (titles, entity types, infobox attribute/value/link data and
/// cross-language links, in article-id order).
///
/// Two datasets with the same fingerprint produce bit-identical artifacts;
/// a snapshot whose fingerprint differs from the dataset it is restored
/// against is rejected — this is the invalidation mechanism of the serving
/// layer's disk tier.
pub fn corpus_fingerprint(dataset: &Dataset) -> u64 {
    let mut h = Fnv::new();
    h.update_str(dataset.languages.0.code());
    h.update_str(dataset.languages.1.code());
    h.update_u64(dataset.types.len() as u64);
    for pairing in &dataset.types {
        h.update_str(&pairing.type_id);
        h.update_str(&pairing.label_other);
        h.update_str(&pairing.label_en);
    }
    h.update_u64(dataset.corpus.len() as u64);
    for article in dataset.corpus.articles() {
        h.update_u64(u64::from(article.id.0));
        h.update_str(&article.title);
        h.update_str(article.language.code());
        h.update_str(&article.entity_type);
        h.update_str(&article.infobox.template);
        h.update_u64(article.infobox.attributes.len() as u64);
        for attr in &article.infobox.attributes {
            h.update_str(&attr.name);
            h.update_str(&attr.value);
            h.update_u64(attr.links.len() as u64);
            for link in &attr.links {
                h.update_str(&link.target);
                h.update_str(&link.anchor);
            }
        }
        h.update_u64(article.cross_links.len() as u64);
        for (language, title) in &article.cross_links {
            h.update_str(language.code());
            h.update_str(title);
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Encoding primitives.

/// Appends little-endian primitives and length-prefixed strings to a byte
/// buffer.
pub(crate) struct Enc(pub(crate) Vec<u8>);

impl Enc {
    pub(crate) fn new() -> Self {
        Self(Vec::new())
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// LEB128 variable-length `u32` — term-id deltas are almost always tiny,
    /// so most take one byte instead of four.
    pub(crate) fn varu32(&mut self, mut v: u32) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.0.push(byte);
                return;
            }
            self.0.push(byte | 0x80);
        }
    }
}

/// Cursor over a payload slice; every read is bounds-checked and failures
/// surface as [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`].
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` count that must fit `usize` and cannot exceed the bytes
    /// remaining (each counted element occupies ≥ 1 byte), so a corrupted
    /// length cannot trigger an absurd pre-allocation. Only valid for
    /// values that prefix a sequence of counted elements — plain scalars
    /// use [`scalar`](Self::scalar), which has no such bound.
    pub(crate) fn count(&mut self) -> Result<usize, SnapshotError> {
        let v = self.scalar()?;
        if v > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(v)
    }

    /// A `u64` scalar that must fit `usize` (e.g. an occurrence counter —
    /// any magnitude is legitimate, unrelated to the bytes remaining).
    pub(crate) fn scalar(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Malformed(format!("value {v} overflows usize")))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("non-UTF-8 string".to_string()))
    }

    /// LEB128 variable-length `u32` (see [`Enc::varu32`]).
    pub(crate) fn varu32(&mut self) -> Result<u32, SnapshotError> {
        let mut value: u32 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            let bits = u32::from(byte & 0x7f);
            // The fifth byte may only carry the top 4 bits of a u32 and
            // must be the last.
            if shift == 28 && (bits > 0x0f || byte & 0x80 != 0) {
                return Err(SnapshotError::Malformed("varint overflows u32".to_string()));
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Section encoders/decoders.

/// Encodes one interned vector as a delta-compressed id stream: entry
/// count, then per entry a varint id delta (ids are strictly increasing, so
/// the first delta is the id itself and subsequent ones are `id - prev`,
/// always ≥ 1 and usually one byte) followed by the raw weight bits. Terms
/// are **not** written here — the type's arena string table spells each
/// term exactly once.
///
/// Schema vectors are built on the schema arena, so the id fast path is the
/// norm; a vector that was moved off it (e.g. a `pub` field mutated through
/// the copy-on-write `add` API) is re-interned term by term rather than
/// having its foreign ids written verbatim — ids from another arena would
/// encode a checksum-valid file that decodes to the *wrong terms*.
///
/// # Panics
/// Panics when such a detached vector contains a term the schema arena does
/// not know: the snapshot could not represent it, and a loud failure at
/// capture time beats a silently wrong file.
fn encode_term_vector(enc: &mut Enc, vector: &TermVector, arena: &Arc<wiki_text::TermArena>) {
    enc.u64(vector.len() as u64);
    let mut prev: u32 = 0;
    if Arc::ptr_eq(vector.arena(), arena) {
        for &(id, weight) in vector.id_entries() {
            enc.varu32(id - prev);
            enc.f64(weight);
            prev = id;
        }
    } else {
        for (term, weight) in vector.iter() {
            let id = arena
                .intern(term)
                .expect("schema arena must hold every term of every schema vector");
            enc.varu32(id - prev);
            enc.f64(weight);
            prev = id;
        }
    }
}

fn decode_term_vector(
    dec: &mut Dec<'_>,
    arena: &Arc<wiki_text::TermArena>,
) -> Result<TermVector, SnapshotError> {
    let n = dec.count()?;
    let mut entries = Vec::with_capacity(n);
    let mut prev: u32 = 0;
    for i in 0..n {
        let delta = dec.varu32()?;
        if i > 0 && delta == 0 {
            return Err(SnapshotError::Malformed(
                "term vector ids not strictly increasing".to_string(),
            ));
        }
        let id = prev
            .checked_add(delta)
            .ok_or_else(|| SnapshotError::Malformed("term vector id overflows u32".to_string()))?;
        let weight = dec.f64()?;
        entries.push((id, weight));
        prev = id;
    }
    TermVector::from_ids(Arc::clone(arena), entries).ok_or_else(|| {
        SnapshotError::Malformed("term vector ids out of order or outside the arena".to_string())
    })
}

pub(crate) fn encode_pattern(enc: &mut Enc, pattern: &[bool]) {
    // Bit-packed; the length is the schema's dual count, known to the
    // decoder, so only the words are written.
    let words = pattern.len().div_ceil(64);
    let mut packed = vec![0u64; words];
    for (j, present) in pattern.iter().enumerate() {
        if *present {
            packed[j / 64] |= 1u64 << (j % 64);
        }
    }
    for word in packed {
        enc.u64(word);
    }
}

pub(crate) fn decode_pattern(dec: &mut Dec<'_>, len: usize) -> Result<Vec<bool>, SnapshotError> {
    let words = len.div_ceil(64);
    // The words are about to be read from the payload; bounding the
    // allocation by the bytes actually present keeps a corrupted
    // `dual_count` from triggering a huge pre-allocation.
    if words.saturating_mul(8) > dec.remaining() {
        return Err(SnapshotError::Truncated);
    }
    let mut pattern = vec![false; len];
    for w in 0..words {
        let word = dec.u64()?;
        if w + 1 == words && !len.is_multiple_of(64) && word >> (len % 64) != 0 {
            return Err(SnapshotError::Malformed(
                "occurrence pattern has bits beyond the dual count".to_string(),
            ));
        }
        for (j, slot) in pattern[w * 64..].iter_mut().take(64).enumerate() {
            *slot = word & (1u64 << j) != 0;
        }
    }
    Ok(pattern)
}

fn encode_schema(enc: &mut Enc, schema: &DualSchema) {
    enc.str(schema.languages.0.code());
    enc.str(schema.languages.1.code());
    enc.str(&schema.label_other);
    enc.str(&schema.label_en);
    enc.u64(schema.dual_count as u64);
    // The arena string table: every distinct term of the type, written
    // exactly once in id (= lexicographic) order. The vectors below are
    // pure id streams against it — in the version-1 format each term was
    // re-spelled in every vector it occurred in, which dominated the file.
    let arena = schema.arena();
    enc.u64(arena.len() as u64);
    for term in arena.terms() {
        enc.str(term);
    }
    enc.u64(schema.attributes.len() as u64);
    for attr in &schema.attributes {
        enc.str(attr.language.code());
        enc.str(&attr.name);
        enc.u64(attr.occurrences as u64);
        encode_term_vector(enc, &attr.values, arena);
        encode_term_vector(enc, &attr.translated_values, arena);
        encode_term_vector(enc, &attr.raw_values, arena);
        encode_term_vector(enc, &attr.translated_raw_values, arena);
        encode_term_vector(enc, &attr.links, arena);
        encode_pattern(enc, &attr.occurrence_pattern);
    }
}

fn decode_schema(dec: &mut Dec<'_>) -> Result<DualSchema, SnapshotError> {
    let language_other = Language::from_code(&dec.str()?);
    let language_en = Language::from_code(&dec.str()?);
    let label_other = dec.str()?;
    let label_en = dec.str()?;
    // `dual_count` is a scalar, not an element count: a type with many
    // dual infoboxes but few (or term-poor) attributes can legitimately
    // encode to fewer bytes than `dual_count` — the `count()` guard would
    // wrongly reject such a file as truncated. The per-attribute pattern
    // reads below bound the allocation instead.
    let dual_count = dec.scalar()?;
    let n_terms = dec.count()?;
    let mut terms = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        terms.push(dec.str()?);
    }
    let arena = Arc::new(
        wiki_text::TermArena::from_sorted_terms(terms).ok_or_else(|| {
            SnapshotError::Malformed("arena string table not strictly sorted".to_string())
        })?,
    );
    let n = dec.count()?;
    let mut attributes = Vec::with_capacity(n);
    for _ in 0..n {
        let language = Language::from_code(&dec.str()?);
        let name = dec.str()?;
        let occurrences = dec.scalar()?;
        let values = decode_term_vector(dec, &arena)?;
        let translated_values = decode_term_vector(dec, &arena)?;
        let raw_values = decode_term_vector(dec, &arena)?;
        let translated_raw_values = decode_term_vector(dec, &arena)?;
        let links = decode_term_vector(dec, &arena)?;
        let occurrence_pattern = decode_pattern(dec, dual_count)?;
        attributes.push(AttributeStats {
            language,
            name,
            occurrences,
            values,
            translated_values,
            raw_values,
            translated_raw_values,
            links,
            occurrence_pattern,
        });
    }
    Ok(DualSchema::from_parts_in_arena(
        (language_other, language_en),
        label_other,
        label_en,
        attributes,
        dual_count,
        arena,
    ))
}

/// Encodes one score channel sparsely: a bitmap over the canonical pair
/// order marking entries whose bit pattern is not `+0.0`, followed by just
/// those raw bit patterns. The pruned similarity build writes literal `0.0`
/// for every non-candidate pair (the vast majority at scale), so this cuts
/// the dominant block of the file to the candidate density — and `-0.0` or
/// any other special value is still stored verbatim, keeping the round trip
/// bit-exact.
fn encode_sparse_channel(enc: &mut Enc, values: impl Iterator<Item = f64>, n_pairs: usize) {
    let mut bitmap = vec![0u64; n_pairs.div_ceil(64)];
    let mut nonzero: Vec<u64> = Vec::new();
    for (i, value) in values.enumerate() {
        let bits = value.to_bits();
        if bits != 0 {
            bitmap[i / 64] |= 1u64 << (i % 64);
            nonzero.push(bits);
        }
    }
    for word in bitmap {
        enc.u64(word);
    }
    enc.u64(nonzero.len() as u64);
    for bits in nonzero {
        enc.u64(bits);
    }
}

/// Decodes one sparse channel into zero-copy `(bitmap bytes, value bytes)`
/// slices of the payload (a little-endian `u64` word layout means global
/// bit `i` lives at byte `i / 8`, bit `i % 8`).
fn decode_sparse_channel<'a>(
    dec: &mut Dec<'a>,
    n_pairs: usize,
) -> Result<(&'a [u8], &'a [u8]), SnapshotError> {
    let words = n_pairs.div_ceil(64);
    let bitmap = dec.take(words.saturating_mul(8))?;
    let count = dec.count()?;
    let set_bits: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
    if count != set_bits {
        return Err(SnapshotError::Malformed(format!(
            "sparse channel declares {count} values but its bitmap has {set_bits} bits set"
        )));
    }
    let values = dec.take(count.saturating_mul(8))?;
    Ok((bitmap, values))
}

/// Sequential reader over a sparse channel: for each pair index (visited in
/// order) returns the stored value when its bitmap bit is set, `0.0`
/// otherwise.
struct SparseCursor<'a> {
    bitmap: &'a [u8],
    values: &'a [u8],
    next: usize,
}

impl SparseCursor<'_> {
    fn get(&mut self, i: usize) -> f64 {
        if self.bitmap[i / 8] & (1u8 << (i % 8)) != 0 {
            let bytes = &self.values[self.next..self.next + 8];
            self.next += 8;
            f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8-byte value")))
        } else {
            0.0
        }
    }
}

fn encode_table(enc: &mut Enc, table: &SimilarityTable) {
    // Pair indices are implicit: pairs are stored in the table's canonical
    // lexicographic (p < q) order. LSI is dense by nature (the paper's
    // complement convention makes most same-language scores non-zero), so
    // it is written as a dense block; `vsim` / `lsim` are zero for every
    // non-candidate pair and are written sparsely.
    enc.u64(table.attribute_count() as u64);
    let n_pairs = table.pairs().len();
    for pair in table.pairs() {
        enc.f64(pair.lsi);
    }
    encode_sparse_channel(enc, table.pairs().iter().map(|p| p.vsim), n_pairs);
    encode_sparse_channel(enc, table.pairs().iter().map(|p| p.lsim), n_pairs);
}

fn decode_table(dec: &mut Dec<'_>, schema_len: usize) -> Result<SimilarityTable, SnapshotError> {
    let n = dec.count()?;
    if n != schema_len {
        return Err(SnapshotError::Malformed(format!(
            "similarity table covers {n} attributes, schema has {schema_len}"
        )));
    }
    let n_pairs = n * n.saturating_sub(1) / 2;
    // One bounds check for the dense LSI block, then chunked walks — this
    // section dominates load time at the larger tiers, so it must not pay
    // per-field cursor overhead.
    let lsi_bytes = dec.take(
        n_pairs
            .checked_mul(8)
            .ok_or_else(|| SnapshotError::Malformed(format!("pair count {n_pairs} overflows")))?,
    )?;
    let (vsim_bitmap, vsim_values) = decode_sparse_channel(dec, n_pairs)?;
    let (lsim_bitmap, lsim_values) = decode_sparse_channel(dec, n_pairs)?;

    let mut lsi = lsi_bytes.chunks_exact(8);
    let mut vsim = SparseCursor {
        bitmap: vsim_bitmap,
        values: vsim_values,
        next: 0,
    };
    let mut lsim = SparseCursor {
        bitmap: lsim_bitmap,
        values: lsim_values,
        next: 0,
    };
    let mut pairs = Vec::with_capacity(n_pairs);
    let mut i = 0usize;
    for p in 0..n {
        for q in (p + 1)..n {
            let chunk = lsi.next().expect("block sized to n_pairs chunks");
            pairs.push(CandidatePair {
                p,
                q,
                vsim: vsim.get(i),
                lsim: lsim.get(i),
                lsi: f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8-byte field"))),
            });
            i += 1;
        }
    }
    Ok(SimilarityTable::from_raw_parts(pairs, n))
}

pub(crate) fn encode_pair_set(enc: &mut Enc, set: &PairSet) {
    enc.u64(set.words().len() as u64);
    for &word in set.words() {
        enc.u64(word);
    }
}

pub(crate) fn decode_pair_set(dec: &mut Dec<'_>, n: usize) -> Result<PairSet, SnapshotError> {
    let words_len = dec.count()?;
    let mut words = Vec::with_capacity(words_len);
    for _ in 0..words_len {
        words.push(dec.u64()?);
    }
    PairSet::from_words(n, words).ok_or_else(|| {
        SnapshotError::Malformed(format!(
            "pair set word count {words_len} does not match {n} attributes"
        ))
    })
}

fn encode_index(enc: &mut Enc, index: &CandidateIndex) {
    encode_pair_set(enc, index.value_pairs());
    encode_pair_set(enc, index.link_pairs());
}

/// Decodes one length-prefixed per-type record
/// (`type_id | schema | table | index`).
fn decode_type_record(record: &[u8]) -> Result<(String, PreparedType), SnapshotError> {
    let mut dec = Dec::new(record);
    let type_id = dec.str()?;
    let schema = decode_schema(&mut dec)?;
    let table = decode_table(&mut dec, schema.len())?;
    let index = decode_index(&mut dec, schema.len())?;
    if !dec.finished() {
        return Err(SnapshotError::Malformed(format!(
            "type record {type_id:?} longer than its contents"
        )));
    }
    let arena = Arc::clone(schema.arena());
    let vector_entries = schema.vector_entry_count();
    Ok((
        type_id,
        PreparedType {
            schema: Arc::new(schema),
            table: Arc::new(table),
            index: Some(Arc::new(index)),
            arena,
            vector_entries,
            region: None,
        },
    ))
}

fn decode_index(dec: &mut Dec<'_>, schema_len: usize) -> Result<CandidateIndex, SnapshotError> {
    let value_pairs = decode_pair_set(dec, schema_len)?;
    let link_pairs = decode_pair_set(dec, schema_len)?;
    Ok(CandidateIndex::from_parts(value_pairs, link_pairs))
}

/// Writes `bytes` to `path` atomically: the bytes land in a temporary
/// sibling file (`.{name}.tmp-{pid}-{seq}`) which is renamed into place, so
/// a concurrent reader sees either the old file or the new one, never a
/// torn write. Shared by the snapshot (v3 and v4) and journal save paths.
///
/// The temp name is unique per *call*, not just per process: two threads
/// spilling the same corpus concurrently (a warm racing an eviction) would
/// otherwise interleave writes into one temp file and rename garbage into
/// place. A crash between write and rename strands the temp file — the
/// registry sweeps `.tmp-` leftovers from its snapshot directory at
/// startup.
///
/// `failpoint` names the fault-injection hook covering the temp-file write
/// (e.g. `snapshot.save.write`); a torn write or abort injected there
/// strands a torn *temp* file while the target stays intact — exactly the
/// guarantee the rename protocol exists to provide, and what the chaos
/// harness verifies.
pub(crate) fn write_atomically(
    path: &Path,
    bytes: &[u8],
    failpoint: &str,
) -> Result<(), SnapshotError> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| SnapshotError::Malformed(format!("bad target path {path:?}")))?;
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}-{seq}", std::process::id()));
    let result = fs::File::create(&tmp)
        .and_then(|mut file| wiki_fault::write_all(failpoint, &mut file, bytes))
        .and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result.map_err(SnapshotError::from)
}

// ---------------------------------------------------------------------------
// The snapshot itself.

/// A captured set of [`MatchEngine`] artifacts ready to be persisted: the
/// corpus fingerprint, the bilingual title dictionary and the per-type
/// prepared artifacts that were cached at capture time.
#[derive(Debug)]
pub struct EngineSnapshot {
    /// Fingerprint of the corpus the artifacts were computed from (see
    /// [`corpus_fingerprint`]).
    pub fingerprint: u64,
    /// The session's bilingual title dictionary.
    pub dictionary: TitleDictionary,
    /// Cached per-type artifacts, in dataset type order.
    pub types: Vec<(String, PreparedType)>,
}

impl EngineSnapshot {
    /// Captures the engine's dictionary plus every per-type artifact set
    /// currently cached. Call [`MatchEngine::prepare_all`] first to capture
    /// a fully warmed session.
    ///
    /// Fails with [`SnapshotError::InexactMode`] when the engine runs a
    /// sparse compute mode (`filtered` / `lsh`): those tables drop pairs by
    /// design, so a snapshot of them could never honor the
    /// bit-identical-to-a-cold-rebuild restore contract.
    pub fn capture(engine: &MatchEngine) -> Result<Self, SnapshotError> {
        if !engine.compute_mode().is_exact() {
            return Err(SnapshotError::InexactMode(
                engine.compute_mode().to_string(),
            ));
        }
        Ok(Self {
            fingerprint: engine.fingerprint(),
            dictionary: engine.dictionary().as_ref().clone(),
            types: engine.cached_artifacts(),
        })
    }

    /// Number of per-type artifact sets in the snapshot.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Serializes the snapshot into the framed binary format (header with
    /// magic, version, fingerprint, payload length and checksum, then the
    /// payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let _span = wiki_obs::Span::enter("snapshot_encode");
        wiki_fault::pause("snapshot.encode");
        let mut enc = Enc::new();
        // Dictionary: entries sorted by key for a canonical byte stream.
        enc.str(self.dictionary.source().code());
        enc.str(self.dictionary.target().code());
        let mut entries: Vec<(&str, &str)> = self.dictionary.entries().collect();
        entries.sort_unstable();
        enc.u64(entries.len() as u64);
        for (key, value) in entries {
            enc.str(key);
            enc.str(value);
        }
        // Per-type records, each length-prefixed so the reader can split
        // the payload into independent records and decode them in parallel.
        enc.u64(self.types.len() as u64);
        for (type_id, prepared) in &self.types {
            let mut record = Enc::new();
            record.str(type_id);
            encode_schema(&mut record, &prepared.schema);
            encode_table(&mut record, &prepared.table);
            // `capture` refuses sparse-mode engines, so every prepared
            // artifact reaching serialization carries its index.
            let index = prepared
                .index
                .as_ref()
                .expect("snapshots only hold exact-mode artifacts, which have an index");
            encode_index(&mut record, index);
            enc.u64(record.0.len() as u64);
            enc.0.extend_from_slice(&record.0);
        }
        let payload = enc.0;

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes a snapshot, validating magic, version, payload length
    /// and checksum before decoding anything.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let _span = wiki_obs::Span::enter("snapshot_decode");
        if bytes.len() < HEADER_LEN {
            return if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
                Err(SnapshotError::BadMagic)
            } else {
                Err(SnapshotError::Truncated)
            };
        }
        let (header, payload) = bytes.split_at(HEADER_LEN);
        if header[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let field = |offset: usize, len: usize| &header[offset..offset + len];
        let version = u32::from_le_bytes(field(8, 4).try_into().expect("4 bytes"));
        if version == crate::direct::DIRECT_FORMAT_VERSION {
            // The directly-addressable form: same framing, sectioned
            // payload. Decoded here into fully heap-owned artifacts — the
            // zero-copy path is `crate::direct::MappedSnapshot::open`.
            return crate::direct::decode_owned(bytes);
        }
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let fingerprint = u64::from_le_bytes(field(12, 8).try_into().expect("8 bytes"));
        let payload_len = u64::from_le_bytes(field(20, 8).try_into().expect("8 bytes"));
        match u64::try_from(payload.len()) {
            Ok(have) if have < payload_len => return Err(SnapshotError::Truncated),
            Ok(have) if have > payload_len => {
                return Err(SnapshotError::Malformed(format!(
                    "{} trailing bytes after the payload",
                    have - payload_len
                )))
            }
            _ => {}
        }
        let expected = u64::from_le_bytes(field(28, 8).try_into().expect("8 bytes"));
        let found = checksum(payload);
        if found != expected {
            return Err(SnapshotError::ChecksumMismatch { found, expected });
        }

        let mut dec = Dec::new(payload);
        let source = Language::from_code(&dec.str()?);
        let target = Language::from_code(&dec.str()?);
        let n_entries = dec.count()?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let key = dec.str()?;
            let value = dec.str()?;
            entries.push((key, value));
        }
        let dictionary = TitleDictionary::from_entries(source, target, entries);

        let n_types = dec.count()?;
        let mut records = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            let len = dec.count()?;
            records.push(dec.take(len)?);
        }
        if !dec.finished() {
            return Err(SnapshotError::Malformed(
                "payload longer than its contents".to_string(),
            ));
        }
        // Records are independent; decoding them — the bulk of the work at
        // the larger tiers — runs on parallel threads.
        let types = records
            .par_iter()
            .map(|record| decode_type_record(record))
            .collect::<Vec<Result<(String, PreparedType), SnapshotError>>>()
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            fingerprint,
            dictionary,
            types,
        })
    }

    /// Writes the framed snapshot to a writer.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        writer.write_all(&self.to_bytes())
    }

    /// Reads a framed snapshot from a reader (consumes it to EOF).
    pub fn read_from(reader: &mut impl Read) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Saves the snapshot to `path` atomically: the bytes are written to a
    /// temporary sibling file and renamed into place, so concurrent readers
    /// see either the old snapshot or the new one, never a torn write.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let _span = wiki_obs::Span::enter("snapshot_save");
        wiki_obs::registry()
            .counter(
                "wm_snapshot_saves_total",
                "Engine snapshots written to disk.",
            )
            .inc();
        write_atomically(path, &self.to_bytes(), "snapshot.save.write")
    }

    /// Loads a snapshot from `path`.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let _span = wiki_obs::Span::enter("snapshot_load");
        wiki_obs::registry()
            .counter(
                "wm_snapshot_loads_total",
                "Engine snapshots read from disk.",
            )
            .inc();
        let mut bytes = fs::read(path)?;
        wiki_fault::filter_read("snapshot.load.read", &mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Reads just the 36-byte header of a snapshot file and returns its
    /// `(format_version, corpus_fingerprint)` — enough to decide whether a
    /// disk snapshot is already current without decoding (or even reading)
    /// the payload. Validates the magic only; the payload is untouched, so
    /// a torn or corrupt file can still pass this peek and must be fully
    /// validated by whichever loader follows.
    pub fn peek_header(path: &Path) -> Result<(u32, u64), SnapshotError> {
        use std::io::Read as _;
        let mut file = fs::File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)
            .map_err(|_| SnapshotError::Truncated)?;
        if header[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let fingerprint = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        Ok((version, fingerprint))
    }
}

// ---------------------------------------------------------------------------
// The delta journal.

/// Version stamped into every journal header; readers reject anything else.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every journal file.
const JOURNAL_MAGIC: [u8; 8] = *b"WMJRNL\r\n";

/// Fixed size of the journal header preceding the records.
const JOURNAL_HEADER_LEN: usize = JOURNAL_MAGIC.len() + 4 + 8;

fn encode_article(enc: &mut Enc, article: &Article) {
    enc.str(&article.title);
    enc.str(article.language.code());
    enc.str(&article.entity_type);
    enc.str(&article.infobox.template);
    enc.u64(article.infobox.attributes.len() as u64);
    for attr in &article.infobox.attributes {
        enc.str(&attr.name);
        enc.str(&attr.value);
        enc.u64(attr.links.len() as u64);
        for link in &attr.links {
            enc.str(&link.target);
            enc.str(&link.anchor);
        }
    }
    enc.u64(article.cross_links.len() as u64);
    for (language, title) in &article.cross_links {
        enc.str(language.code());
        enc.str(title);
    }
}

fn decode_article(dec: &mut Dec<'_>) -> Result<Article, SnapshotError> {
    let title = dec.str()?;
    let language = Language::from_code(&dec.str()?);
    let entity_type = dec.str()?;
    let mut infobox = Infobox::new(dec.str()?);
    let n_attrs = dec.count()?;
    for _ in 0..n_attrs {
        let name = dec.str()?;
        let value = dec.str()?;
        let n_links = dec.count()?;
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            let target = dec.str()?;
            let anchor = dec.str()?;
            links.push(Link::with_anchor(target, anchor));
        }
        infobox.push(AttributeValue::linked(name, value, links));
    }
    // The persisted article never carries an id: ids are corpus-local and
    // minted (or looked up) when the delta is applied.
    let mut article = Article::new(title, language, entity_type, infobox);
    let n_cross = dec.count()?;
    for _ in 0..n_cross {
        let language = Language::from_code(&dec.str()?);
        let title = dec.str()?;
        article.cross_links.push((language, title));
    }
    Ok(article)
}

fn encode_delta(enc: &mut Enc, delta: &CorpusDelta) {
    enc.u64(delta.ops.len() as u64);
    for op in &delta.ops {
        match op {
            DeltaOp::Upsert(article) => {
                enc.0.push(0);
                encode_article(enc, article);
            }
            DeltaOp::Remove { language, title } => {
                enc.0.push(1);
                enc.str(language.code());
                enc.str(title);
            }
        }
    }
}

fn decode_delta(dec: &mut Dec<'_>) -> Result<CorpusDelta, SnapshotError> {
    let n_ops = dec.count()?;
    let mut delta = CorpusDelta::new();
    for _ in 0..n_ops {
        match dec.take(1)?[0] {
            0 => delta.push(DeltaOp::Upsert(decode_article(dec)?)),
            1 => {
                let language = Language::from_code(&dec.str()?);
                let title = dec.str()?;
                delta.push(DeltaOp::Remove { language, title });
            }
            tag => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown delta op tag {tag}"
                )))
            }
        }
    }
    Ok(delta)
}

/// One journaled mutation: the delta itself plus the fingerprint chain that
/// pins *where in the corpus lineage* it applies. `parent_fingerprint` must
/// equal the fingerprint of the corpus the delta is replayed onto and
/// `post_fingerprint` the fingerprint of the corpus it produces — replay
/// verifies both, so a journal can never be applied to the wrong base or in
/// the wrong order.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRecord {
    /// Zero-based position in the journal; records must be consecutive.
    pub seq: u64,
    /// Fingerprint of the corpus this delta applies to (the previous
    /// record's [`post_fingerprint`](Self::post_fingerprint), or the
    /// journal's base fingerprint for record 0).
    pub parent_fingerprint: u64,
    /// Fingerprint of the corpus after applying the delta.
    pub post_fingerprint: u64,
    /// The mutation batch itself.
    pub delta: CorpusDelta,
}

fn encode_journal_record(record: &DeltaRecord) -> Vec<u8> {
    let mut payload = Enc::new();
    payload.u64(record.seq);
    payload.u64(record.parent_fingerprint);
    payload.u64(record.post_fingerprint);
    encode_delta(&mut payload, &record.delta);
    let payload = payload.0;
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses one length-prefixed record off the front of `buf`, validating its
/// checksum and its place in the chain; returns the record and the bytes
/// consumed.
fn decode_journal_record(
    buf: &[u8],
    expected_seq: u64,
    expected_parent: u64,
) -> Result<(DeltaRecord, usize), SnapshotError> {
    let mut dec = Dec::new(buf);
    let payload_len = dec.count()?;
    let expected = dec.u64()?;
    let payload = dec.take(payload_len)?;
    let found = checksum(payload);
    if found != expected {
        return Err(SnapshotError::ChecksumMismatch { found, expected });
    }
    let mut p = Dec::new(payload);
    let seq = p.u64()?;
    let parent_fingerprint = p.u64()?;
    let post_fingerprint = p.u64()?;
    let delta = decode_delta(&mut p)?;
    if !p.finished() {
        return Err(SnapshotError::Malformed(format!(
            "journal record {seq} longer than its contents"
        )));
    }
    if seq != expected_seq {
        return Err(SnapshotError::Malformed(format!(
            "journal records out of order: found sequence {seq}, expected {expected_seq}"
        )));
    }
    if parent_fingerprint != expected_parent {
        return Err(SnapshotError::Malformed(format!(
            "journal replay order broken: record {seq} chains from \
             {parent_fingerprint:#018x}, but the journal tip is {expected_parent:#018x}"
        )));
    }
    Ok((
        DeltaRecord {
            seq,
            parent_fingerprint,
            post_fingerprint,
            delta,
        },
        16 + payload_len,
    ))
}

/// A journaled log of corpus deltas chained forward from a base corpus
/// fingerprint — the second half of the version-3 persistence story: the
/// base [`EngineSnapshot`] freezes a corpus, the journal records where the
/// corpus went from there, and replaying the journal over the base
/// reproduces the live engine without a cold rebuild.
///
/// The on-disk format mirrors the snapshot's framing discipline at record
/// granularity:
///
/// ```text
/// header   magic (8B) | journal version (u32) | base fingerprint (u64)
/// record   payload length (u64) | checksum (u64) | payload
/// payload  seq (u64) | parent fingerprint (u64) | post fingerprint (u64)
///          | delta ops
/// ```
///
/// Records are individually checksummed so a torn tail (the failure mode of
/// append-only logs) costs exactly the torn records: [`recover`](Self::recover)
/// keeps the valid prefix, while the strict [`from_bytes`](Self::from_bytes)
/// rejects the file. The `seq` / fingerprint chain makes replay-order
/// tampering (reordered, dropped or cross-wired records) detectable even
/// though every individual record is checksum-valid.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaJournal {
    /// Fingerprint of the corpus the journal starts from — the snapshot a
    /// replayer must hold before applying record 0.
    pub base_fingerprint: u64,
    /// The chained delta records, in replay order.
    pub records: Vec<DeltaRecord>,
}

impl DeltaJournal {
    /// An empty journal rooted at `base_fingerprint`.
    pub fn new(base_fingerprint: u64) -> Self {
        Self {
            base_fingerprint,
            records: Vec::new(),
        }
    }

    /// Number of records in the journal.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The fingerprint of the corpus obtained by replaying the whole
    /// journal over its base — the last record's post fingerprint, or the
    /// base fingerprint for an empty journal.
    pub fn tip(&self) -> u64 {
        self.records
            .last()
            .map_or(self.base_fingerprint, |r| r.post_fingerprint)
    }

    /// Appends a delta that was applied to the corpus at the journal's
    /// current [`tip`](Self::tip), producing `post_fingerprint`; returns
    /// the chained record (e.g. for mirroring to disk with
    /// [`append_record_to`](Self::append_record_to)).
    pub fn append(&mut self, delta: CorpusDelta, post_fingerprint: u64) -> &DeltaRecord {
        let record = DeltaRecord {
            seq: self.records.len() as u64,
            parent_fingerprint: self.tip(),
            post_fingerprint,
            delta,
        };
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// Serializes the journal (header plus every record).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&JOURNAL_MAGIC);
        out.extend_from_slice(&JOURNAL_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.base_fingerprint.to_le_bytes());
        for record in &self.records {
            out.extend_from_slice(&encode_journal_record(record));
        }
        out
    }

    fn parse(bytes: &[u8], lenient: bool) -> Result<(Self, bool), SnapshotError> {
        if bytes.len() < JOURNAL_HEADER_LEN {
            return if bytes.len() >= JOURNAL_MAGIC.len()
                && bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC
            {
                Err(SnapshotError::BadMagic)
            } else {
                Err(SnapshotError::Truncated)
            };
        }
        if bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != JOURNAL_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: JOURNAL_FORMAT_VERSION,
            });
        }
        let base_fingerprint = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let mut journal = DeltaJournal::new(base_fingerprint);
        let mut pos = JOURNAL_HEADER_LEN;
        let mut dropped_tail = false;
        while pos < bytes.len() {
            match decode_journal_record(&bytes[pos..], journal.records.len() as u64, journal.tip())
            {
                Ok((record, consumed)) => {
                    journal.records.push(record);
                    pos += consumed;
                }
                Err(err) if lenient => {
                    // Torn or corrupted tail: everything before this record
                    // validated, so the prefix is a usable journal.
                    let _ = err;
                    dropped_tail = true;
                    break;
                }
                Err(err) => return Err(err),
            }
        }
        Ok((journal, dropped_tail))
    }

    /// Deserializes a journal **strictly**: any torn, corrupted or
    /// chain-breaking record rejects the whole file.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::parse(bytes, false).map(|(journal, _)| journal)
    }

    /// Deserializes a journal **leniently**: the valid record prefix is
    /// kept and a torn or corrupted tail is dropped (the second return is
    /// `true` when that happened). Header-level problems — wrong magic,
    /// unsupported version, a header shorter than its fixed size — are
    /// still fatal: there is no usable prefix without a valid header.
    ///
    /// This is the crash-recovery entry point: a process killed mid-append
    /// leaves a torn final record, and the journal is still good up to it.
    pub fn recover(bytes: &[u8]) -> Result<(Self, bool), SnapshotError> {
        Self::parse(bytes, true)
    }

    /// Loads a journal from `path` (strict).
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let mut bytes = fs::read(path)?;
        wiki_fault::filter_read("journal.load.read", &mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Loads a journal from `path` leniently (see [`recover`](Self::recover)).
    pub fn load_recovering(path: &Path) -> Result<(Self, bool), SnapshotError> {
        let mut bytes = fs::read(path)?;
        wiki_fault::filter_read("journal.load.read", &mut bytes)?;
        Self::recover(&bytes)
    }

    /// Saves the whole journal to `path` atomically (temp file + rename,
    /// like [`EngineSnapshot::save`]) — the compaction path, which rewrites
    /// the journal as empty (or short) against a freshly saved base.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        write_atomically(path, &self.to_bytes(), "journal.save.write")
    }

    /// Appends one record to the journal file at `path`, creating the file
    /// (with a header rooted at `base_fingerprint`) when it does not exist
    /// or is empty. The record bytes are written in one `write_all` call;
    /// a crash mid-append leaves a torn tail that
    /// [`recover`](Self::recover) drops.
    pub fn append_record_to(
        path: &Path,
        base_fingerprint: u64,
        record: &DeltaRecord,
    ) -> Result<(), SnapshotError> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        let needs_header = fs::metadata(path).map(|m| m.len() == 0).unwrap_or(true);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        // Header (when the file is fresh) and record go out in ONE buffer
        // through one failpoint-instrumented write, so an injected torn
        // write or mid-append abort tears exactly where a real crash
        // would: anywhere inside the appended span, never before it.
        let record_bytes = encode_journal_record(record);
        let mut buf;
        let out = if needs_header {
            buf = Vec::with_capacity(JOURNAL_HEADER_LEN + record_bytes.len());
            buf.extend_from_slice(&JOURNAL_MAGIC);
            buf.extend_from_slice(&JOURNAL_FORMAT_VERSION.to_le_bytes());
            buf.extend_from_slice(&base_fingerprint.to_le_bytes());
            buf.extend_from_slice(&record_bytes);
            &buf
        } else {
            &record_bytes
        };
        wiki_fault::write_all("journal.append.write", &mut file, out)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::SyntheticConfig;

    fn snapshot_bytes() -> (Dataset, Vec<u8>) {
        let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
        let engine = MatchEngine::new(dataset.clone());
        engine.align("film").unwrap();
        engine.align("actor").unwrap();
        let bytes = EngineSnapshot::capture(&engine).unwrap().to_bytes();
        (dataset, bytes)
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = Dataset::vn_en(&SyntheticConfig::tiny());
        let b = Dataset::vn_en(&SyntheticConfig::tiny());
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        let other_seed = Dataset::vn_en(&SyntheticConfig {
            seed: 43,
            ..SyntheticConfig::tiny()
        });
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&other_seed));
        let other_pair = Dataset::pt_en(&SyntheticConfig::tiny());
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&other_pair));
    }

    #[test]
    fn round_trip_restores_bit_identical_artifacts() {
        let (dataset, bytes) = snapshot_bytes();
        let reference = MatchEngine::new(dataset.clone());
        let snapshot = EngineSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snapshot.type_count(), 2);
        let restored = MatchEngine::builder(dataset)
            .build_from_snapshot(snapshot)
            .unwrap();
        assert_eq!(restored.cached_types(), 2);
        assert_eq!(restored.stats().artifact_builds, 0);
        for type_id in ["film", "actor"] {
            let fresh = reference.prepared(type_id).unwrap();
            let loaded = restored.prepared(type_id).unwrap();
            assert_eq!(fresh.schema.len(), loaded.schema.len());
            for (a, b) in fresh.table.pairs().iter().zip(loaded.table.pairs()) {
                assert_eq!((a.p, a.q), (b.p, b.q));
                assert_eq!(a.vsim.to_bits(), b.vsim.to_bits());
                assert_eq!(a.lsim.to_bits(), b.lsim.to_bits());
                assert_eq!(a.lsi.to_bits(), b.lsi.to_bits());
            }
            assert_eq!(
                reference.align(type_id).unwrap().cross_pairs(),
                restored.align(type_id).unwrap().cross_pairs()
            );
        }
        // Restoring served the cached artifacts; no build happened.
        assert_eq!(restored.stats().artifact_builds, 0);
        // A type outside the snapshot still builds lazily.
        assert!(restored.align("show").is_some());
        assert_eq!(restored.stats().artifact_builds, 1);
    }

    #[test]
    fn scalar_fields_larger_than_the_remaining_payload_round_trip() {
        // `occurrences` (and `dual_count`) are scalars whose magnitude is
        // unrelated to the bytes that follow them — a near-universal
        // attribute in a huge corpus has a count far larger than its own
        // encoded tail. A hand-built snapshot with an outsized counter must
        // survive the round trip instead of being rejected as truncated.
        let attr = |name: &str| AttributeStats {
            language: Language::En,
            name: name.to_string(),
            occurrences: 5_000_000,
            values: TermVector::from_terms(["x"]),
            translated_values: TermVector::from_terms(["x"]),
            raw_values: TermVector::new(),
            translated_raw_values: TermVector::new(),
            links: TermVector::new(),
            occurrence_pattern: vec![true, false],
        };
        let schema = DualSchema::from_parts(
            (Language::Pt, Language::En),
            "Filme".to_string(),
            "Film".to_string(),
            vec![attr("a"), attr("b")],
            2,
        );
        let table = SimilarityTable::from_raw_parts(
            vec![CandidatePair {
                p: 0,
                q: 1,
                vsim: 1.0,
                lsim: 0.0,
                lsi: 0.5,
            }],
            2,
        );
        let index = CandidateIndex::from_parts(PairSet::new(2), PairSet::new(2));
        let arena = Arc::clone(schema.arena());
        let vector_entries = schema.vector_entry_count();
        let snapshot = EngineSnapshot {
            fingerprint: 7,
            dictionary: TitleDictionary::from_entries(Language::Pt, Language::En, Vec::new()),
            types: vec![(
                "film".to_string(),
                PreparedType {
                    schema: Arc::new(schema),
                    table: Arc::new(table),
                    index: Some(Arc::new(index)),
                    arena,
                    vector_entries,
                    region: None,
                },
            )],
        };
        let loaded = EngineSnapshot::from_bytes(&snapshot.to_bytes())
            .expect("outsized scalar fields must not read as truncation");
        assert_eq!(loaded.types[0].1.schema.attribute(0).occurrences, 5_000_000);
        assert_eq!(loaded.types[0].1.table.pairs().len(), 1);
    }

    #[test]
    fn truncated_files_are_rejected() {
        let (_, bytes) = snapshot_bytes();
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
            assert!(
                matches!(
                    EngineSnapshot::from_bytes(&bytes[..cut]),
                    Err(SnapshotError::Truncated)
                ),
                "cut at {cut} not detected as truncation"
            );
        }
    }

    #[test]
    fn corrupted_payloads_fail_the_checksum() {
        let (_, mut bytes) = snapshot_bytes();
        let flip = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[flip] ^= 0xFF;
        assert!(matches!(
            EngineSnapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_bumps_and_bad_magic_are_rejected() {
        let (_, bytes) = snapshot_bytes();
        // +1 lands on the directly-addressable v4 version, which the reader
        // *accepts* (and then rejects as malformed, since the payload is a
        // v3 stream); +2 is the first genuinely unknown version.
        let mut bumped = bytes.clone();
        bumped[8] = bumped[8].wrapping_add(2);
        assert!(matches!(
            EngineSnapshot::from_bytes(&bumped),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 2 && supported == FORMAT_VERSION
        ));
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert!(matches!(
            EngineSnapshot::from_bytes(&wrong_magic),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn version_1_files_are_rejected_as_unsupported() {
        // A minimal, checksum-valid file stamped with the retired
        // string-keyed format version: the reader must refuse it with
        // `UnsupportedVersion` *before* touching the payload (whose layout
        // it can no longer parse), telling operators to re-persist rather
        // than decoding garbage.
        let payload = [0u8; 16];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            EngineSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion {
                found: 1,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn sparse_mode_engines_are_refused_by_capture_and_restore() {
        use crate::similarity::ComputeMode;
        let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
        for mode in [
            ComputeMode::filtered(0.5),
            ComputeMode::lsh(
                ComputeMode::DEFAULT_LSH_BANDS,
                ComputeMode::DEFAULT_LSH_ROWS,
            ),
        ] {
            let engine = MatchEngine::builder(dataset.clone())
                .compute_mode(mode)
                .build();
            engine.align("film").unwrap();
            assert!(
                matches!(
                    EngineSnapshot::capture(&engine),
                    Err(SnapshotError::InexactMode(_))
                ),
                "capture must refuse {mode}"
            );
            // Restoring an exact snapshot into a sparse-mode session is
            // refused for the same reason.
            let exact = MatchEngine::new(dataset.clone());
            exact.align("film").unwrap();
            let snapshot = EngineSnapshot::capture(&exact).unwrap();
            assert!(
                matches!(
                    MatchEngine::builder(dataset.clone())
                        .compute_mode(mode)
                        .build_from_snapshot(snapshot),
                    Err(SnapshotError::InexactMode(_))
                ),
                "restore must refuse {mode}"
            );
        }
    }

    #[test]
    fn fingerprint_mismatch_blocks_restore() {
        let (_, bytes) = snapshot_bytes();
        let snapshot = EngineSnapshot::from_bytes(&bytes).unwrap();
        let other = Dataset::vn_en(&SyntheticConfig {
            seed: 99,
            ..SyntheticConfig::tiny()
        });
        assert!(matches!(
            MatchEngine::builder(other).build_from_snapshot(snapshot),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let (dataset, bytes) = snapshot_bytes();
        let snapshot = EngineSnapshot::from_bytes(&bytes).unwrap();
        let dir = std::env::temp_dir().join(format!("wm-snap-test-{}", std::process::id()));
        let path = dir.join("vi-tiny.snap");
        snapshot.save(&path).unwrap();
        let loaded = EngineSnapshot::load(&path).unwrap();
        assert_eq!(loaded.fingerprint, snapshot.fingerprint);
        assert_eq!(loaded.type_count(), snapshot.type_count());
        let restored = MatchEngine::builder(dataset)
            .build_from_snapshot(loaded)
            .unwrap();
        assert_eq!(restored.cached_types(), 2);
        // No temp file left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let missing = std::env::temp_dir().join("wm-snap-test-definitely-missing.snap");
        assert!(matches!(
            EngineSnapshot::load(&missing),
            Err(SnapshotError::Io(err)) if err.kind() == io::ErrorKind::NotFound
        ));
    }
}
