//! # wikimatch
//!
//! A from-scratch Rust implementation of **WikiMatch** — the multilingual
//! schema-matching approach for Wikipedia infoboxes introduced by Nguyen,
//! Moreira, Nguyen, Nguyen and Freire, *"Multilingual Schema Matching for
//! Wikipedia Infoboxes"*, PVLDB 5(2), 2011.
//!
//! WikiMatch finds correspondences between infobox attributes coming from
//! articles in different languages, without training data, external
//! dictionaries or machine translation. It combines four sources of
//! similarity evidence:
//!
//! 1. **Value similarity** ([`similarity`]): cosine between attribute value
//!    vectors, after translating values through an automatically derived
//!    bilingual title dictionary (built from cross-language links).
//! 2. **Link-structure similarity**: cosine between the sets of articles an
//!    attribute's values link to, with targets unified through the corpus'
//!    cross-language entity clusters.
//! 3. **Attribute correlation via LSI** ([`similarity::SimilarityTable`]):
//!    cosine between reduced attribute vectors obtained by a truncated SVD
//!    of the attribute × dual-language-infobox occurrence matrix.
//! 4. **Inductive grouping** ([`alignment`]): co-occurrence of unmatched
//!    attributes with already-matched ones, used by the `ReviseUncertain`
//!    step to recover correct-but-low-confidence matches.
//!
//! ## Quick start
//!
//! Matching is served by a corpus-scoped session, the [`MatchEngine`]: build
//! it once per dataset and it precomputes the bilingual title dictionary,
//! then computes the entity-type correspondences and the per-type schema and
//! similarity artifacts once on first use, so every request after the first
//! is served from the session's caches.
//!
//! ```
//! use wiki_corpus::{Dataset, SyntheticConfig};
//! use wikimatch::MatchEngine;
//!
//! // Generate a small Portuguese-English corpus with ground truth and open
//! // a matching session over it.
//! let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
//! let engine = MatchEngine::builder(dataset).build();
//!
//! // Align the attributes of the "film" entity type. The title dictionary
//! // was built once at session start; aligning more types reuses it.
//! let alignment = engine.align("film").expect("film type exists");
//!
//! // Cross-language correspondences, e.g. ("direcao", "directed by").
//! assert!(!alignment.cross_pairs().is_empty());
//!
//! // Align every type of the dataset, in parallel.
//! let all = engine.align_all();
//! assert_eq!(all.len(), engine.dataset().types.len());
//! ```
//!
//! Any implementation of the [`SchemaMatcher`] trait — WikiMatch itself or
//! the baselines in `wiki-baselines` — can be driven through the same
//! session with [`MatchEngine::align_with`]:
//!
//! ```
//! use wiki_corpus::{Dataset, SyntheticConfig};
//! use wikimatch::{MatchEngine, SchemaMatcher, WikiMatch};
//!
//! let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
//! let matcher = WikiMatch::default(); // any SchemaMatcher
//! let pairs = engine.align_with(&matcher, "film").expect("film type exists");
//! assert!(!pairs.is_empty());
//! ```
//!
//! ## Deprecation path
//!
//! Before 0.2 the crate exposed one-shot calls on [`WikiMatch`]
//! (`align_type`, `align_all`, `prepare_type`, `match_types`) that rebuilt
//! the title dictionary from the whole corpus on every call. They remain as
//! deprecated shims — `align_all` routes through a throwaway
//! [`MatchEngine`] (so it already amortizes the dictionary across types);
//! the single-type calls keep the old per-call behavior — and will be
//! removed one release after 0.2; migrate by holding a `MatchEngine`
//! wherever a `Dataset` is repeatedly matched.
//!
//! ## Module map
//!
//! * [`engine`] — the [`MatchEngine`] session and the [`SchemaMatcher`]
//!   plugin trait every matcher (core and baselines) implements.
//! * [`config`] — thresholds (`Tsim`, `TLSI`), LSI settings and ablation
//!   switches used by the component-contribution experiments (Table 3).
//! * [`schema`] — builds the dual-language schema of an entity type:
//!   attribute groups with value vectors, link vectors and occurrence
//!   patterns.
//! * [`similarity`] — `vsim`, `lsim` and the LSI correlation table.
//! * [`filter`] — threshold-filtered sparse similarity build behind
//!   `ComputeMode::Filtered` (provable weight-mass upper bounds in the
//!   style of the similarity-join prefix/length filters).
//! * [`lsh`] — banded SimHash candidate generation behind
//!   `ComputeMode::Lsh` (explicitly approximate; recall is measured
//!   against the exact oracle, never assumed).
//! * [`mod@matches`] — match clusters (synonym sets spanning both languages).
//! * [`alignment`] — the `AttributeAlignment`, `IntegrateMatches` and
//!   `ReviseUncertain` algorithms (Algorithms 1 and 2 of the paper).
//! * [`types`] — cross-language entity-type matching (Section 3.1).
//! * [`pipeline`] — [`TypeAlignment`] results and the [`WikiMatch`]
//!   configuration holder (plus the deprecated one-shot entry points).
//! * [`snapshot`] — versioned binary persistence of engine artifacts
//!   ([`EngineSnapshot`]), enabling zero-rebuild warm starts, plus the
//!   journaled delta log ([`DeltaJournal`]) that lets mutated corpora
//!   warm-start too.
//! * [`delta`] — live-corpus mutations ([`CorpusDelta`]) and the
//!   incremental artifact patcher behind [`MatchEngine::apply_delta`].
//! * [`direct`] — the directly-addressable snapshot layout (format v4): an
//!   offset directory plus fixed-stride sections that artifacts can *borrow*
//!   from without decoding, and the converters to/from the compact v3 wire
//!   form.
//! * [`mmap`] — a std-only `mmap(2)` wrapper ([`MappedRegion`]) so v4
//!   snapshots are paged in by the OS instead of heap-decoded.

// `mmap.rs` is the single place unsafe is allowed: the raw mmap/munmap FFI.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod config;
pub mod delta;
pub mod direct;
pub mod engine;
pub mod filter;
pub mod lsh;
pub mod matches;
pub mod mmap;
pub mod pipeline;
pub mod schema;
pub mod similarity;
pub mod snapshot;
pub mod types;

pub use alignment::AttributeAlignment;
pub use config::WikiMatchConfig;
pub use delta::{CorpusDelta, DeltaOp, DeltaReport};
pub use direct::{MappedSnapshot, DIRECT_FORMAT_VERSION};
pub use engine::{EngineStats, MatchEngine, MatchEngineBuilder, PreparedType, SchemaMatcher};
pub use matches::{MatchCluster, MatchSet};
pub use pipeline::{TypeAlignment, WikiMatch};
// `schema::CandidateIndex` / `schema::PairSet` are deliberately not
// re-exported here: they are pruning machinery consumed by the similarity
// build, reachable for the curious but outside the headline API surface.
pub use lsh::candidate_recall;
pub use mmap::MappedRegion;
pub use schema::{AttributeStats, DualSchema};
pub use similarity::{
    CandidatePair, ComputeMode, PairCounts, ParseComputeModeError, SimilarityTable,
};
pub use snapshot::{corpus_fingerprint, DeltaJournal, DeltaRecord, EngineSnapshot, SnapshotError};
pub use types::match_entity_types;
