//! # wikimatch
//!
//! A from-scratch Rust implementation of **WikiMatch** — the multilingual
//! schema-matching approach for Wikipedia infoboxes introduced by Nguyen,
//! Moreira, Nguyen, Nguyen and Freire, *"Multilingual Schema Matching for
//! Wikipedia Infoboxes"*, PVLDB 5(2), 2011.
//!
//! WikiMatch finds correspondences between infobox attributes coming from
//! articles in different languages, without training data, external
//! dictionaries or machine translation. It combines four sources of
//! similarity evidence:
//!
//! 1. **Value similarity** ([`similarity`]): cosine between attribute value
//!    vectors, after translating values through an automatically derived
//!    bilingual title dictionary (built from cross-language links).
//! 2. **Link-structure similarity**: cosine between the sets of articles an
//!    attribute's values link to, with targets unified through the corpus'
//!    cross-language entity clusters.
//! 3. **Attribute correlation via LSI** ([`similarity::SimilarityTable`]):
//!    cosine between reduced attribute vectors obtained by a truncated SVD
//!    of the attribute × dual-language-infobox occurrence matrix.
//! 4. **Inductive grouping** ([`alignment`]): co-occurrence of unmatched
//!    attributes with already-matched ones, used by the `ReviseUncertain`
//!    step to recover correct-but-low-confidence matches.
//!
//! ## Quick start
//!
//! ```
//! use wiki_corpus::{Dataset, SyntheticConfig};
//! use wikimatch::{WikiMatch, WikiMatchConfig};
//!
//! // Generate a small Portuguese-English corpus with ground truth.
//! let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
//!
//! // Align the attributes of the "film" entity type.
//! let matcher = WikiMatch::new(WikiMatchConfig::default());
//! let pairing = dataset.type_pairing("film").unwrap();
//! let alignment = matcher.align_type(&dataset, pairing);
//!
//! // Cross-language correspondences, e.g. ("direcao", "directed by").
//! assert!(!alignment.cross_pairs().is_empty());
//! ```
//!
//! ## Module map
//!
//! * [`config`] — thresholds (`Tsim`, `TLSI`), LSI settings and ablation
//!   switches used by the component-contribution experiments (Table 3).
//! * [`schema`] — builds the dual-language schema of an entity type:
//!   attribute groups with value vectors, link vectors and occurrence
//!   patterns.
//! * [`similarity`] — `vsim`, `lsim` and the LSI correlation table.
//! * [`matches`] — match clusters (synonym sets spanning both languages).
//! * [`alignment`] — the `AttributeAlignment`, `IntegrateMatches` and
//!   `ReviseUncertain` algorithms (Algorithms 1 and 2 of the paper).
//! * [`types`] — cross-language entity-type matching (Section 3.1).
//! * [`pipeline`] — the end-to-end [`WikiMatch`] matcher over a
//!   [`wiki_corpus::Dataset`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod config;
pub mod matches;
pub mod pipeline;
pub mod schema;
pub mod similarity;
pub mod types;

pub use alignment::AttributeAlignment;
pub use config::WikiMatchConfig;
pub use matches::{MatchCluster, MatchSet};
pub use pipeline::{TypeAlignment, WikiMatch};
pub use schema::{AttributeStats, DualSchema};
pub use similarity::{CandidatePair, SimilarityTable};
pub use types::match_entity_types;
