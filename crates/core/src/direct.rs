//! The directly-addressable snapshot layout — format **v4**.
//!
//! Format v3 (see [`crate::snapshot`]) is a *compact* stream: varint
//! id-deltas, sparse channel bitmaps, length-prefixed records. Decoding it
//! is a full pass that heap-allocates every artifact. This module defines
//! the sibling **direct** form with the same 36-byte header framing (magic,
//! version, corpus fingerprint, payload length, checksum) but a payload
//! built for *borrowing*:
//!
//! ```text
//! header    magic | version=4 | fingerprint | payload length | checksum
//! payload   u64 dict_off | u64 dict_len | u64 type_count
//!           type_count × (u64 rec_off | u64 rec_len)      ← offset directory
//!           dictionary bytes (compact v3 encoding — stays heap-owned)
//!           per-type records, each 8-aligned
//! record    u64 meta_len | meta | pad to 8 | data sections
//! meta      type id, languages, labels, dual count, attribute scalars,
//!           occurrence patterns, candidate-index bitsets, and the
//!           *relative offsets* of every data section
//! sections  arena offset table ((len+1) × u32 LE)   — stride 4
//!           arena text (concatenated UTF-8)
//!           per attribute × 5 channels: ids (u32 LE, stride 4)
//!                                       weights (f64 bits LE, stride 8)
//!           similarity channels lsi | vsim | lsim (f64 bits LE, stride 8)
//! ```
//!
//! All directory offsets are **absolute file offsets**, so the ranges handed
//! to [`TermArena::from_mapped`], [`TermVector::from_mapped`] and
//! [`SimilarityTable::from_mapped`] index straight into the mapped file.
//! Weights travel as raw IEEE-754 bits in both forms, so converting v3 ⇄ v4
//! (and decoding either owned or mapped) is bit-exact — pinned by the
//! `mmap_equivalence` suite.
//!
//! **Validation discipline:** `parse_layout` checks everything up front —
//! framing, checksum, directory bounds, section bounds, stride alignment,
//! arena sortedness/UTF-8, vector id monotonicity — so the lazy
//! materialisation that happens later (on first touch of a mapped artifact)
//! is infallible. Truncated or misaligned offset directories are rejected
//! here with typed [`SnapshotError`]s, never discovered mid-read.
//!
//! **What stays heap-owned** even in the mapped form: the title dictionary,
//! schema metadata (labels, attribute names), occurrence patterns and the
//! candidate-index bitsets — all small, all needed eagerly. The arena text,
//! the five per-attribute vector channels and the three similarity channels
//! — the bytes that dominate a snapshot — are borrowed from the region.

use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use wiki_corpus::Language;
use wiki_text::{ByteRegion, TermArena, TermVector};
use wiki_translate::TitleDictionary;

use crate::engine::PreparedType;
use crate::mmap::MappedRegion;
use crate::schema::{AttributeStats, CandidateIndex, DualSchema};
use crate::similarity::{CandidatePair, SimilarityTable};
use crate::snapshot::{
    checksum, decode_pair_set, decode_pattern, encode_pair_set, encode_pattern, write_atomically,
    Dec, Enc, EngineSnapshot, SnapshotError, HEADER_LEN, MAGIC,
};

/// Version stamped into the header of every directly-addressable snapshot.
/// [`EngineSnapshot::from_bytes`] accepts both this and the compact
/// [`crate::snapshot::FORMAT_VERSION`]; [`EngineSnapshot::save`] keeps
/// writing the compact form (the wire/archive encoding), while
/// [`EngineSnapshot::save_direct`] writes this one (the serving encoding).
pub const DIRECT_FORMAT_VERSION: u32 = 4;

fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn align8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

// ---------------------------------------------------------------------------
// Encoding: owned artifacts → v4 bytes.

/// The `(id, weight)` entries of a vector, expressed in the schema arena's
/// ids (same discipline as the v3 encoder: a vector moved off the shared
/// arena is re-interned term by term, and a term the arena does not know
/// panics loudly at encode time rather than writing a wrong-terms file).
fn entries_in_arena(vector: &TermVector, arena: &Arc<TermArena>) -> Vec<(u32, f64)> {
    if Arc::ptr_eq(vector.arena(), arena) {
        vector.id_entries().to_vec()
    } else {
        vector
            .iter()
            .map(|(term, weight)| {
                let id = arena
                    .intern(term)
                    .expect("schema arena must hold every term of every schema vector");
                (id, weight)
            })
            .collect()
    }
}

/// Encodes one type's artifacts as a v4 record:
/// `meta_len | meta | pad | sections`, with every section offset in the
/// meta expressed relative to the (8-aligned) section base.
fn encode_type_record(type_id: &str, prepared: &PreparedType) -> Vec<u8> {
    let schema = &prepared.schema;
    let arena = schema.arena();

    let mut sections: Vec<u8> = Vec::new();
    // Arena offset table: (len + 1) cumulative text offsets, stride 4.
    let arena_offsets_rel = sections.len();
    let mut cum: u32 = 0;
    sections.extend_from_slice(&cum.to_le_bytes());
    for term in arena.terms() {
        cum += term.len() as u32;
        sections.extend_from_slice(&cum.to_le_bytes());
    }
    pad8(&mut sections);
    // Arena text: every term's bytes, concatenated in id order.
    let arena_text_rel = sections.len();
    for term in arena.terms() {
        sections.extend_from_slice(term.as_bytes());
    }
    let arena_text_len = cum as usize;
    pad8(&mut sections);
    // Per-attribute channel sections: ids then weights, fixed stride.
    let mut vector_layouts: Vec<[(usize, usize, usize); 5]> =
        Vec::with_capacity(schema.attributes.len());
    for attr in &schema.attributes {
        let mut five = [(0usize, 0usize, 0usize); 5];
        for (slot, vector) in [
            &attr.values,
            &attr.translated_values,
            &attr.raw_values,
            &attr.translated_raw_values,
            &attr.links,
        ]
        .into_iter()
        .enumerate()
        {
            let entries = entries_in_arena(vector, arena);
            let ids_rel = sections.len();
            for (id, _) in &entries {
                sections.extend_from_slice(&id.to_le_bytes());
            }
            pad8(&mut sections);
            let weights_rel = sections.len();
            for (_, weight) in &entries {
                sections.extend_from_slice(&weight.to_bits().to_le_bytes());
            }
            five[slot] = (entries.len(), ids_rel, weights_rel);
        }
        vector_layouts.push(five);
    }
    // Similarity channels, canonical pair order, stride 8.
    let pairs = prepared.table.pairs();
    let mut channel = |field: fn(&CandidatePair) -> f64| {
        let rel = sections.len();
        for pair in pairs {
            sections.extend_from_slice(&field(pair).to_bits().to_le_bytes());
        }
        rel
    };
    let lsi_rel = channel(|p| p.lsi);
    let vsim_rel = channel(|p| p.vsim);
    let lsim_rel = channel(|p| p.lsim);

    let mut meta = Enc::new();
    meta.str(type_id);
    meta.str(schema.languages.0.code());
    meta.str(schema.languages.1.code());
    meta.str(&schema.label_other);
    meta.str(&schema.label_en);
    meta.u64(schema.dual_count as u64);
    meta.u64(arena.len() as u64);
    meta.u64(arena_offsets_rel as u64);
    meta.u64(arena_text_rel as u64);
    meta.u64(arena_text_len as u64);
    meta.u64(schema.attributes.len() as u64);
    for (attr, five) in schema.attributes.iter().zip(&vector_layouts) {
        meta.str(attr.language.code());
        meta.str(&attr.name);
        meta.u64(attr.occurrences as u64);
        for &(len, ids_rel, weights_rel) in five {
            meta.u64(len as u64);
            meta.u64(ids_rel as u64);
            meta.u64(weights_rel as u64);
        }
        encode_pattern(&mut meta, &attr.occurrence_pattern);
    }
    meta.u64(prepared.table.attribute_count() as u64);
    meta.u64(lsi_rel as u64);
    meta.u64(vsim_rel as u64);
    meta.u64(lsim_rel as u64);
    let index = prepared
        .index
        .as_ref()
        .expect("snapshots only hold exact-mode artifacts, which have an index");
    encode_pair_set(&mut meta, index.value_pairs());
    encode_pair_set(&mut meta, index.link_pairs());
    let meta = meta.0;

    let mut record = Vec::with_capacity(8 + align8(meta.len()) + sections.len());
    record.extend_from_slice(&(meta.len() as u64).to_le_bytes());
    record.extend_from_slice(&meta);
    pad8(&mut record);
    record.extend_from_slice(&sections);
    record
}

impl EngineSnapshot {
    /// Serializes the snapshot into the directly-addressable v4 form —
    /// the converter from the compact in-memory/owned representation to
    /// the mappable one. Lossless: `from_bytes(to_direct_bytes())`
    /// restores bit-identical artifacts.
    pub fn to_direct_bytes(&self) -> Vec<u8> {
        let _span = wiki_obs::Span::enter("snapshot_encode_direct");
        wiki_fault::pause("snapshot.encode");
        // Dictionary section: the compact v3 encoding (sorted entries for
        // a canonical byte stream) — it is decoded eagerly either way.
        let mut dict = Enc::new();
        dict.str(self.dictionary.source().code());
        dict.str(self.dictionary.target().code());
        let mut entries: Vec<(&str, &str)> = self.dictionary.entries().collect();
        entries.sort_unstable();
        dict.u64(entries.len() as u64);
        for (key, value) in entries {
            dict.str(key);
            dict.str(value);
        }
        let dict = dict.0;

        let records: Vec<Vec<u8>> = self
            .types
            .iter()
            .map(|(type_id, prepared)| encode_type_record(type_id, prepared))
            .collect();

        // Offset directory, then dictionary, then 8-aligned records; all
        // offsets absolute from the file start.
        let dir_len = 24 + 16 * records.len();
        let dict_off = HEADER_LEN + dir_len;
        let mut cursor = align8(dict_off + dict.len());
        let rec_spans: Vec<(usize, usize)> = records
            .iter()
            .map(|record| {
                let span = (cursor, record.len());
                cursor = align8(cursor + record.len());
                span
            })
            .collect();

        let mut payload = Vec::with_capacity(cursor - HEADER_LEN);
        payload.extend_from_slice(&(dict_off as u64).to_le_bytes());
        payload.extend_from_slice(&(dict.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for &(off, len) in &rec_spans {
            payload.extend_from_slice(&(off as u64).to_le_bytes());
            payload.extend_from_slice(&(len as u64).to_le_bytes());
        }
        payload.extend_from_slice(&dict);
        for (&(off, _), record) in rec_spans.iter().zip(&records) {
            payload.resize(off - HEADER_LEN, 0);
            payload.extend_from_slice(record);
        }

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&DIRECT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Saves the snapshot in the v4 form, atomically (temp file + rename,
    /// like [`EngineSnapshot::save`]).
    pub fn save_direct(&self, path: &Path) -> Result<(), SnapshotError> {
        let _span = wiki_obs::Span::enter("snapshot_save_direct");
        wiki_obs::registry()
            .counter(
                "wm_snapshot_saves_total",
                "Engine snapshots written to disk.",
            )
            .inc();
        write_atomically(path, &self.to_direct_bytes(), "snapshot.save.write")
    }
}

// ---------------------------------------------------------------------------
// Layout parsing: shared by the owned and mapped decoders.

struct VectorLayout {
    len: usize,
    ids: Range<usize>,
    weights: Range<usize>,
}

struct AttrLayout {
    language: Language,
    name: String,
    occurrences: usize,
    vectors: [VectorLayout; 5],
    occurrence_pattern: Vec<bool>,
}

struct TypeLayout {
    type_id: String,
    languages: (Language, Language),
    label_other: String,
    label_en: String,
    dual_count: usize,
    arena_len: usize,
    arena_offsets: Range<usize>,
    arena_text: Range<usize>,
    attrs: Vec<AttrLayout>,
    lsi: Range<usize>,
    vsim: Range<usize>,
    lsim: Range<usize>,
    index: CandidateIndex,
}

struct Layout {
    fingerprint: u64,
    dictionary: TitleDictionary,
    types: Vec<TypeLayout>,
}

fn malformed(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(detail.into())
}

/// Validates the whole v4 file — framing, checksum, offset directory,
/// section bounds and stride alignment — and returns the absolute byte
/// ranges of every borrowable section plus the eagerly-decoded small parts.
fn parse_layout(bytes: &[u8]) -> Result<Layout, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
            Err(SnapshotError::BadMagic)
        } else {
            Err(SnapshotError::Truncated)
        };
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != DIRECT_FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: DIRECT_FORMAT_VERSION,
        });
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    match u64::try_from(payload.len()) {
        Ok(have) if have < payload_len => return Err(SnapshotError::Truncated),
        Ok(have) if have > payload_len => {
            return Err(malformed(format!(
                "{} trailing bytes after the payload",
                have - payload_len
            )))
        }
        _ => {}
    }
    let expected = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    let found = checksum(payload);
    if found != expected {
        return Err(SnapshotError::ChecksumMismatch { found, expected });
    }

    let mut dec = Dec::new(payload);
    let dict_off = dec.scalar()?;
    let dict_len = dec.scalar()?;
    let n_types = dec.count()?;
    let mut spans = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let rec_off = dec.scalar()?;
        let rec_len = dec.scalar()?;
        spans.push((rec_off, rec_len));
    }

    let dict_end = dict_off
        .checked_add(dict_len)
        .ok_or(SnapshotError::Truncated)?;
    let dict_slice = bytes
        .get(dict_off..dict_end)
        .ok_or(SnapshotError::Truncated)?;
    let mut d = Dec::new(dict_slice);
    let source = Language::from_code(&d.str()?);
    let target = Language::from_code(&d.str()?);
    let n_entries = d.count()?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let key = d.str()?;
        let value = d.str()?;
        entries.push((key, value));
    }
    if !d.finished() {
        return Err(malformed("dictionary section longer than its contents"));
    }
    let dictionary = TitleDictionary::from_entries(source, target, entries);

    let mut types = Vec::with_capacity(n_types);
    for (rec_off, rec_len) in spans {
        if !rec_off.is_multiple_of(8) {
            return Err(malformed(format!(
                "type record offset {rec_off} is not 8-aligned"
            )));
        }
        let rec_end = rec_off
            .checked_add(rec_len)
            .ok_or(SnapshotError::Truncated)?;
        let record = bytes
            .get(rec_off..rec_end)
            .ok_or(SnapshotError::Truncated)?;
        types.push(parse_type_record(record, rec_off)?);
    }
    Ok(Layout {
        fingerprint,
        dictionary,
        types,
    })
}

fn parse_type_record(record: &[u8], rec_off: usize) -> Result<TypeLayout, SnapshotError> {
    let mut dec = Dec::new(record);
    let meta_len = dec.count()?;
    let meta = dec.take(meta_len)?;
    // The data sections start at the first 8-aligned byte after the meta;
    // `rec_off` is 8-aligned, so absolute alignment follows relative.
    let base = rec_off + align8(8 + meta_len);
    let rec_end = rec_off + record.len();
    let section = |rel: usize, len: usize, stride: usize| -> Result<Range<usize>, SnapshotError> {
        if !rel.is_multiple_of(stride) {
            return Err(malformed(format!(
                "section offset {rel} breaks its stride-{stride} alignment"
            )));
        }
        let start = base.checked_add(rel).ok_or(SnapshotError::Truncated)?;
        let end = start.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > rec_end {
            return Err(SnapshotError::Truncated);
        }
        Ok(start..end)
    };

    let mut m = Dec::new(meta);
    let type_id = m.str()?;
    let languages = (
        Language::from_code(&m.str()?),
        Language::from_code(&m.str()?),
    );
    let label_other = m.str()?;
    let label_en = m.str()?;
    let dual_count = m.scalar()?;
    let arena_len = m.scalar()?;
    let offsets_bytes = arena_len
        .checked_add(1)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| malformed("arena length overflows"))?;
    let arena_offsets = section(m.scalar()?, offsets_bytes, 4)?;
    let arena_text_rel = m.scalar()?;
    let arena_text_len = m.scalar()?;
    let arena_text = section(arena_text_rel, arena_text_len, 1)?;

    let n_attrs = m.count()?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let language = Language::from_code(&m.str()?);
        let name = m.str()?;
        let occurrences = m.scalar()?;
        let mut vectors = Vec::with_capacity(5);
        for _ in 0..5 {
            let len = m.scalar()?;
            let ids_bytes = len
                .checked_mul(4)
                .ok_or_else(|| malformed("vector length overflows"))?;
            let weights_bytes = len
                .checked_mul(8)
                .ok_or_else(|| malformed("vector length overflows"))?;
            let ids = section(m.scalar()?, ids_bytes, 4)?;
            let weights = section(m.scalar()?, weights_bytes, 8)?;
            vectors.push(VectorLayout { len, ids, weights });
        }
        let vectors: [VectorLayout; 5] = vectors
            .try_into()
            .map_err(|_| malformed("expected five vector channels"))?;
        let occurrence_pattern = decode_pattern(&mut m, dual_count)?;
        attrs.push(AttrLayout {
            language,
            name,
            occurrences,
            vectors,
            occurrence_pattern,
        });
    }

    let n = m.scalar()?;
    if n != attrs.len() {
        return Err(malformed(format!(
            "similarity table covers {n} attributes, schema has {}",
            attrs.len()
        )));
    }
    let pair_bytes = (n * n.saturating_sub(1) / 2)
        .checked_mul(8)
        .ok_or_else(|| malformed("pair count overflows"))?;
    let lsi = section(m.scalar()?, pair_bytes, 8)?;
    let vsim = section(m.scalar()?, pair_bytes, 8)?;
    let lsim = section(m.scalar()?, pair_bytes, 8)?;
    let value_pairs = decode_pair_set(&mut m, n)?;
    let link_pairs = decode_pair_set(&mut m, n)?;
    if !m.finished() {
        return Err(malformed(format!(
            "type record {type_id:?} meta longer than its contents"
        )));
    }
    Ok(TypeLayout {
        type_id,
        languages,
        label_other,
        label_en,
        dual_count,
        arena_len,
        arena_offsets,
        arena_text,
        attrs,
        lsi,
        vsim,
        lsim,
        index: CandidateIndex::from_parts(value_pairs, link_pairs),
    })
}

// ---------------------------------------------------------------------------
// Decoding: v4 bytes → owned or mapped artifacts.

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte field"))
}

fn read_f64_bits(bytes: &[u8], at: usize) -> f64 {
    f64::from_bits(u64::from_le_bytes(
        bytes[at..at + 8].try_into().expect("8-byte field"),
    ))
}

/// Decodes a v4 file into **fully heap-owned** artifacts — the converter
/// from the direct form back to the compact in-memory representation
/// (`EngineSnapshot::from_bytes` lands here for version-4 files).
pub(crate) fn decode_owned(bytes: &[u8]) -> Result<EngineSnapshot, SnapshotError> {
    let _span = wiki_obs::Span::enter("snapshot_decode_direct");
    let layout = parse_layout(bytes)?;
    let mut types = Vec::with_capacity(layout.types.len());
    for t in layout.types {
        // Arena: slice the text through the offset table.
        let text = &bytes[t.arena_text.clone()];
        let mut terms = Vec::with_capacity(t.arena_len);
        let mut prev_off = 0usize;
        for i in 0..t.arena_len {
            let start = read_u32(bytes, t.arena_offsets.start + i * 4) as usize;
            let end = read_u32(bytes, t.arena_offsets.start + (i + 1) * 4) as usize;
            if start != prev_off || end < start || end > text.len() {
                return Err(malformed("arena offset table not monotone"));
            }
            prev_off = end;
            let term = std::str::from_utf8(&text[start..end])
                .map_err(|_| malformed("non-UTF-8 arena term"))?;
            terms.push(term.to_string());
        }
        if prev_off != text.len() {
            return Err(malformed("arena offset table does not cover the text"));
        }
        let arena = Arc::new(
            TermArena::from_sorted_terms(terms)
                .ok_or_else(|| malformed("arena string table not strictly sorted"))?,
        );

        let decode_vector = |layout: &VectorLayout| -> Result<TermVector, SnapshotError> {
            let mut entries = Vec::with_capacity(layout.len);
            for i in 0..layout.len {
                let id = read_u32(bytes, layout.ids.start + i * 4);
                let weight = read_f64_bits(bytes, layout.weights.start + i * 8);
                entries.push((id, weight));
            }
            TermVector::from_ids(Arc::clone(&arena), entries)
                .ok_or_else(|| malformed("term vector ids out of order or outside the arena"))
        };
        let mut attributes = Vec::with_capacity(t.attrs.len());
        for attr in &t.attrs {
            attributes.push(AttributeStats {
                language: attr.language.clone(),
                name: attr.name.clone(),
                occurrences: attr.occurrences,
                values: decode_vector(&attr.vectors[0])?,
                translated_values: decode_vector(&attr.vectors[1])?,
                raw_values: decode_vector(&attr.vectors[2])?,
                translated_raw_values: decode_vector(&attr.vectors[3])?,
                links: decode_vector(&attr.vectors[4])?,
                occurrence_pattern: attr.occurrence_pattern.clone(),
            });
        }
        let schema = DualSchema::from_parts_in_arena(
            t.languages.clone(),
            t.label_other.clone(),
            t.label_en.clone(),
            attributes,
            t.dual_count,
            Arc::clone(&arena),
        );

        let n = t.attrs.len();
        let n_pairs = n * n.saturating_sub(1) / 2;
        let mut pairs = Vec::with_capacity(n_pairs);
        let mut i = 0usize;
        for p in 0..n {
            for q in (p + 1)..n {
                pairs.push(CandidatePair {
                    p,
                    q,
                    vsim: read_f64_bits(bytes, t.vsim.start + i * 8),
                    lsim: read_f64_bits(bytes, t.lsim.start + i * 8),
                    lsi: read_f64_bits(bytes, t.lsi.start + i * 8),
                });
                i += 1;
            }
        }
        let table = SimilarityTable::from_raw_parts(pairs, n);
        let vector_entries = schema.vector_entry_count();
        types.push((
            t.type_id,
            PreparedType {
                schema: Arc::new(schema),
                table: Arc::new(table),
                index: Some(Arc::new(t.index)),
                arena,
                vector_entries,
                region: None,
            },
        ));
    }
    Ok(EngineSnapshot {
        fingerprint: layout.fingerprint,
        dictionary: layout.dictionary,
        types,
    })
}

/// Decodes a v4 region into artifacts that **borrow** from it: arenas,
/// vector channels and similarity channels are views into the mapping and
/// materialize lazily per (type, channel) on first touch. All structural
/// validation happens here, eagerly.
pub(crate) fn decode_mapped(region: Arc<MappedRegion>) -> Result<EngineSnapshot, SnapshotError> {
    let _span = wiki_obs::Span::enter("snapshot_decode_mapped");
    let layout = parse_layout(region.bytes())?;
    let shared: Arc<dyn ByteRegion> = Arc::clone(&region) as Arc<dyn ByteRegion>;
    let mut types = Vec::with_capacity(layout.types.len());
    for t in layout.types {
        let arena = Arc::new(
            TermArena::from_mapped(
                Arc::clone(&shared),
                t.arena_offsets.clone(),
                t.arena_text.clone(),
                t.arena_len,
            )
            .ok_or_else(|| malformed("mapped arena violates the sorted string-table invariant"))?,
        );
        let mut attributes = Vec::with_capacity(t.attrs.len());
        for attr in &t.attrs {
            let vector = |v: &VectorLayout| -> Result<TermVector, SnapshotError> {
                TermVector::from_mapped(
                    Arc::clone(&arena),
                    Arc::clone(&shared),
                    v.ids.clone(),
                    v.weights.clone(),
                    v.len,
                )
                .ok_or_else(|| {
                    malformed("mapped term vector ids out of order or outside the arena")
                })
            };
            attributes.push(AttributeStats {
                language: attr.language.clone(),
                name: attr.name.clone(),
                occurrences: attr.occurrences,
                values: vector(&attr.vectors[0])?,
                translated_values: vector(&attr.vectors[1])?,
                raw_values: vector(&attr.vectors[2])?,
                translated_raw_values: vector(&attr.vectors[3])?,
                links: vector(&attr.vectors[4])?,
                occurrence_pattern: attr.occurrence_pattern.clone(),
            });
        }
        let schema = DualSchema::from_parts_in_arena(
            t.languages.clone(),
            t.label_other.clone(),
            t.label_en.clone(),
            attributes,
            t.dual_count,
            Arc::clone(&arena),
        );
        let table = SimilarityTable::from_mapped(
            Arc::clone(&shared),
            t.lsi.clone(),
            t.vsim.clone(),
            t.lsim.clone(),
            t.attrs.len(),
        )
        .ok_or_else(|| malformed("mapped similarity channels break the fixed-stride layout"))?;
        let vector_entries = schema.vector_entry_count();
        types.push((
            t.type_id,
            PreparedType {
                schema: Arc::new(schema),
                table: Arc::new(table),
                index: Some(Arc::new(t.index)),
                arena,
                vector_entries,
                region: Some(Arc::clone(&region)),
            },
        ));
    }
    Ok(EngineSnapshot {
        fingerprint: layout.fingerprint,
        dictionary: layout.dictionary,
        types,
    })
}

/// A v4 snapshot opened **out-of-core**: the file is memory-mapped and the
/// snapshot's artifacts borrow from the mapping instead of owning heap
/// copies. Dropping the last clone of [`region`](Self::region) (which every
/// artifact also holds through its views) unmaps the file — the eviction
/// primitive of the registry's out-of-core tier.
#[derive(Debug)]
pub struct MappedSnapshot {
    /// The decoded snapshot; its artifacts are views into
    /// [`region`](Self::region).
    pub snapshot: EngineSnapshot,
    /// The mapping the artifacts borrow from, with page-in accounting.
    pub region: Arc<MappedRegion>,
}

impl MappedSnapshot {
    /// Maps `path` and decodes it as a v4 snapshot with borrowed artifacts.
    /// The whole layout (framing, checksum, offset directory, section
    /// bounds, arena/vector invariants) is validated eagerly; lazy
    /// materialisation afterwards cannot fail. Rejects v3 files with
    /// [`SnapshotError::UnsupportedVersion`] — load those via
    /// [`EngineSnapshot::load`] or convert with
    /// [`EngineSnapshot::save_direct`].
    pub fn open(path: &Path) -> Result<Self, SnapshotError> {
        let _span = wiki_obs::Span::enter("snapshot_map");
        wiki_fault::check_io("snapshot.map.open")?;
        let region = Arc::new(MappedRegion::map_file(path)?);
        let snapshot = decode_mapped(Arc::clone(&region))?;
        Ok(Self { snapshot, region })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MatchEngine;
    use wiki_corpus::{Dataset, SyntheticConfig};

    fn captured() -> (Dataset, EngineSnapshot) {
        let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
        let engine = MatchEngine::new(dataset.clone());
        engine.align("film").unwrap();
        engine.align("actor").unwrap();
        (dataset, EngineSnapshot::capture(&engine).unwrap())
    }

    fn assert_snapshots_bit_identical(a: &EngineSnapshot, b: &EngineSnapshot) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.types.len(), b.types.len());
        for ((id_a, pa), (id_b, pb)) in a.types.iter().zip(&b.types) {
            assert_eq!(id_a, id_b);
            assert_eq!(*pa.schema, *pb.schema);
            assert_eq!(pa.table.pairs().len(), pb.table.pairs().len());
            for (x, y) in pa.table.pairs().iter().zip(pb.table.pairs()) {
                assert_eq!((x.p, x.q), (y.p, y.q));
                assert_eq!(x.vsim.to_bits(), y.vsim.to_bits());
                assert_eq!(x.lsim.to_bits(), y.lsim.to_bits());
                assert_eq!(x.lsi.to_bits(), y.lsi.to_bits());
            }
        }
    }

    #[test]
    fn direct_bytes_round_trip_through_the_owned_decoder() {
        let (_, snapshot) = captured();
        let direct = snapshot.to_direct_bytes();
        assert_eq!(
            u32::from_le_bytes(direct[8..12].try_into().unwrap()),
            DIRECT_FORMAT_VERSION
        );
        // The generic reader accepts the v4 form and restores identical
        // artifacts (converter v4 → owned).
        let owned = EngineSnapshot::from_bytes(&direct).unwrap();
        assert_snapshots_bit_identical(&snapshot, &owned);
        // And the restored snapshot re-encodes to identical v4 bytes
        // (converter owned → v4): the two forms are lossless inverses.
        assert_eq!(owned.to_direct_bytes(), direct);
    }

    #[test]
    fn mapped_decode_is_bit_identical_to_owned_decode() {
        let (_, snapshot) = captured();
        let direct = snapshot.to_direct_bytes();
        let dir = std::env::temp_dir().join(format!("wm-direct-test-{}", std::process::id()));
        let path = dir.join("tiny.snapv4");
        snapshot.save_direct(&path).unwrap();
        let mapped = MappedSnapshot::open(&path).unwrap();
        assert_eq!(mapped.region.len(), direct.len());
        // Layout validation touches the whole file once, but nothing is
        // materialized until an artifact is read.
        assert_eq!(mapped.region.page_in_count(), 0);
        let owned = EngineSnapshot::from_bytes(&direct).unwrap();
        assert_snapshots_bit_identical(&owned, &mapped.snapshot);
        // Reading the artifacts above paged channels in lazily.
        assert!(mapped.region.page_in_count() > 0);
        for (_, prepared) in &mapped.snapshot.types {
            assert!(prepared.region.is_some());
            assert!(prepared.arena.is_mapped());
            assert!(prepared.table.is_mapped());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_misaligned_directories_are_rejected() {
        let (_, snapshot) = captured();
        let direct = snapshot.to_direct_bytes();
        // Truncations at every structural boundary.
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN + 10, direct.len() - 1] {
            assert!(
                matches!(
                    EngineSnapshot::from_bytes(&direct[..cut]),
                    Err(SnapshotError::Truncated)
                ),
                "cut at {cut} not detected as truncation"
            );
        }
        // A record offset pushed past the end of the file: the directory
        // promises bytes the file does not have.
        let mut oob = direct.clone();
        let rec_off_at = HEADER_LEN + 24; // first record's offset slot
        oob[rec_off_at..rec_off_at + 8].copy_from_slice(&(direct.len() as u64 + 8).to_le_bytes());
        let fixed = fix_checksum(oob);
        assert!(matches!(
            EngineSnapshot::from_bytes(&fixed),
            Err(SnapshotError::Truncated)
        ));
        // A misaligned record offset (not a multiple of 8).
        let mut misaligned = direct.clone();
        let old = u64::from_le_bytes(misaligned[rec_off_at..rec_off_at + 8].try_into().unwrap());
        misaligned[rec_off_at..rec_off_at + 8].copy_from_slice(&(old + 4).to_le_bytes());
        let fixed = fix_checksum(misaligned);
        assert!(matches!(
            EngineSnapshot::from_bytes(&fixed),
            Err(SnapshotError::Malformed(_))
        ));
        // Corruption without a checksum fix-up is caught by the checksum.
        let mut corrupt = direct;
        let mid = HEADER_LEN + (corrupt.len() - HEADER_LEN) / 2;
        corrupt[mid] ^= 0xFF;
        assert!(matches!(
            EngineSnapshot::from_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    /// Re-stamps the header checksum after a deliberate payload edit, so a
    /// test reaches the structural validation it targets instead of
    /// tripping the checksum first.
    fn fix_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
        let sum = checksum(&bytes[HEADER_LEN..]);
        bytes[28..36].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn v3_files_are_rejected_by_the_mapped_opener() {
        let (_, snapshot) = captured();
        let dir = std::env::temp_dir().join(format!("wm-direct-v3-{}", std::process::id()));
        let path = dir.join("tiny.snap");
        snapshot.save(&path).unwrap();
        assert!(matches!(
            MappedSnapshot::open(&path),
            Err(SnapshotError::UnsupportedVersion {
                found: crate::snapshot::FORMAT_VERSION,
                supported: DIRECT_FORMAT_VERSION,
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
