//! Incremental corpus updates: [`CorpusDelta`] and the artifact patcher.
//!
//! A [`CorpusDelta`] is an ordered batch of entity mutations (upserts and
//! removals). [`crate::MatchEngine::apply_delta`] applies one to its corpus
//! and then *patches* every cached per-type artifact set instead of
//! rebuilding it:
//!
//! * the type's frozen [`wiki_text::TermArena`] is extended with the sorted
//!   merge of the new tokens ([`wiki_text::TermArena::extended_with`]),
//!   whose **monotone** old → new id remap preserves the id ⇔ term-order
//!   invariant every merge walk depends on;
//! * attribute vectors whose evidence provably did not change migrate onto
//!   the extended arena id-by-id with their weight bits taken verbatim
//!   ([`wiki_text::TermVector::remapped`]);
//! * only *dirty* attributes — those whose token streams may differ under
//!   the mutated corpus — are re-collected from the corpus walk, and only
//!   similarity rows touching a dirty attribute are recomputed; every other
//!   row keeps its exact bits (clean pairs are copied from the old table,
//!   which is sound because a clean attribute's vectors are bit-identical
//!   and candidacy depends on nothing else);
//! * the LSI model is only refitted when the schema *skeleton* (the
//!   attribute sequence with its occurrence patterns) changed — a
//!   value-only edit keeps the occurrence matrix bit-identical, so every
//!   LSI score is reused.
//!
//! The result is pinned bit-identical to a cold rebuild of the mutated
//! corpus by the `delta_equivalence` proptest suite.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rayon::prelude::*;

use wiki_corpus::store::EntityClusters;
use wiki_corpus::{Article, ArticleId, Corpus, Language, TypePairing};
use wiki_linalg::LsiConfig;
use wiki_text::tokenize::split_value_atoms;
use wiki_text::{normalize, tokenize_value, TermVector};
use wiki_translate::TitleDictionary;

use crate::engine::PreparedType;
use crate::schema::{AttributeStats, CandidateIndex, DualSchema};
use crate::similarity::{
    lsim, pack_occurrence_patterns, packed_patterns_intersect, vsim, CandidatePair, SimilarityTable,
};

/// One entity mutation of a [`CorpusDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Inserts the article, or replaces the live article with the same
    /// `(language, title)` key in place (keeping its id).
    Upsert(Article),
    /// Tombstones the live article with this `(language, title)` key; a
    /// no-op when no such article exists.
    Remove {
        /// Language edition of the article to remove.
        language: Language,
        /// Exact title of the article to remove.
        title: String,
    },
}

impl DeltaOp {
    /// The `(language, title)` key this operation targets.
    pub fn key(&self) -> (&Language, &str) {
        match self {
            DeltaOp::Upsert(article) => (&article.language, article.title.as_str()),
            DeltaOp::Remove { language, title } => (language, title.as_str()),
        }
    }
}

/// An ordered batch of entity mutations, applied atomically by
/// [`crate::MatchEngine::apply_delta`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorpusDelta {
    /// The mutations, in application order.
    pub ops: Vec<DeltaOp>,
}

impl CorpusDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-upsert delta (insert-or-update).
    pub fn upsert(article: Article) -> Self {
        Self {
            ops: vec![DeltaOp::Upsert(article)],
        }
    }

    /// A single-removal delta.
    pub fn remove(language: Language, title: impl Into<String>) -> Self {
        Self {
            ops: vec![DeltaOp::Remove {
                language,
                title: title.into(),
            }],
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies every operation to `corpus` in order, returning
    /// `(inserted, updated, removed)` counts. Upserts of a live title
    /// replace in place (id preserved); removals of unknown titles count
    /// as nothing.
    pub fn apply_to(&self, corpus: &mut Corpus) -> (usize, usize, usize) {
        let (mut inserted, mut updated, mut removed) = (0, 0, 0);
        for op in &self.ops {
            match op {
                DeltaOp::Upsert(article) => {
                    if corpus
                        .get_by_title(&article.language, &article.title)
                        .is_some()
                    {
                        corpus.replace(article.clone());
                        updated += 1;
                    } else {
                        corpus.insert(article.clone());
                        inserted += 1;
                    }
                }
                DeltaOp::Remove { language, title } => {
                    if corpus.remove_by_title(language, title).is_some() {
                        removed += 1;
                    }
                }
            }
        }
        (inserted, updated, removed)
    }

    /// The set of `(language, title)` keys this delta touches — the seed of
    /// the artifact patcher's dirty-attribute analysis.
    pub fn mutated_titles(&self) -> HashSet<(Language, String)> {
        self.ops
            .iter()
            .map(|op| {
                let (language, title) = op.key();
                (language.clone(), title.to_string())
            })
            .collect()
    }

    /// A delta whose [`apply_to`](Self::apply_to) transforms `base` into
    /// `target` **slot-exactly**: the same live articles under the same
    /// [`wiki_corpus::ArticleId`]s, with the same tombstoned slots — so the
    /// corpus fingerprints come out identical. This is the journal
    /// compactor: an arbitrarily long mutation history collapses into one
    /// equivalent record.
    ///
    /// `target` must have evolved from `base` through `apply_to`-style
    /// mutations (in-place replacements, appends, tombstoned removals); a
    /// slot dead in `base` but live in `target` cannot be reproduced (ids
    /// are never revived), and callers are expected to verify the result by
    /// fingerprint before trusting it. Appended-then-removed slots are
    /// reproduced by burning the id with a throwaway insert + remove (the
    /// dummy content is invisible to every accessor and to the
    /// fingerprint — only the id gap it leaves matters).
    pub fn diff(base: &Corpus, target: &Corpus) -> CorpusDelta {
        let mut delta = CorpusDelta::new();
        let shared = base.slot_count().min(target.slot_count());
        // Removals first, so a key re-inserted at an appended slot is free
        // again by the time its upsert runs.
        for slot in 0..shared {
            let id = ArticleId(slot as u32);
            if let (Some(old), None) = (base.get(id), target.get(id)) {
                delta.push(DeltaOp::Remove {
                    language: old.language.clone(),
                    title: old.title.clone(),
                });
            }
        }
        // In-place replacements of slots live on both sides (a live slot's
        // `(language, title)` key never changes, so the upsert lands on the
        // same id).
        for slot in 0..shared {
            let id = ArticleId(slot as u32);
            if let (Some(old), Some(new)) = (base.get(id), target.get(id)) {
                if old != new {
                    delta.push(DeltaOp::Upsert(new.clone()));
                }
            }
        }
        // Appended slots in id order, so each insert allocates exactly the
        // id `target` holds it under.
        for slot in base.slot_count()..target.slot_count() {
            let id = ArticleId(slot as u32);
            match target.get(id) {
                Some(article) => delta.push(DeltaOp::Upsert(article.clone())),
                None => {
                    // Tombstoned append: burn the slot. The \u{1} prefix
                    // keeps the throwaway key out of any real title space.
                    let title = format!("\u{1}wm-burned-slot-{slot}");
                    let language = Language::En;
                    delta.push(DeltaOp::Upsert(Article::new(
                        title.clone(),
                        language.clone(),
                        "",
                        wiki_corpus::Infobox::default(),
                    )));
                    delta.push(DeltaOp::Remove { language, title });
                }
            }
        }
        delta
    }
}

/// What one [`crate::MatchEngine::apply_delta`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaReport {
    /// Articles newly inserted.
    pub inserted: usize,
    /// Live articles replaced in place.
    pub updated: usize,
    /// Articles tombstoned.
    pub removed: usize,
    /// Cached per-type artifact sets that were patched. Cached types the
    /// delta provably cannot reach carry over untouched and are not
    /// counted; uncached types stay lazy and simply build against the
    /// mutated corpus on first use.
    pub types_patched: usize,
    /// Similarity pairs whose cosines were recomputed across all patched
    /// types; every other pair kept its exact bits.
    pub rows_recomputed: u64,
    /// Corpus fingerprint before the delta.
    pub fingerprint_before: u64,
    /// Corpus fingerprint after the delta.
    pub fingerprint: u64,
}

/// Shared inputs of one delta application, computed once and consulted by
/// every per-type patch.
pub(crate) struct PatchContext<'a> {
    old_corpus: &'a Corpus,
    new_corpus: &'a Corpus,
    new_clusters: EntityClusters,
    new_dictionary: &'a TitleDictionary,
    /// Normalised source-title keys whose dictionary entry was added,
    /// removed or changed — a foreign attribute holding such a term must
    /// re-translate.
    changed_keys: HashSet<String>,
    /// True when any article live in both corpora changed its entity
    /// cluster — link tokens are cluster-named, so this invalidates every
    /// attribute conservatively.
    clusters_changed: bool,
    mutated: HashSet<(Language, String)>,
    /// `(language, entity_type)` of every article (in either corpus) that
    /// was mutated or holds a link to a mutated title — the only articles
    /// through which a delta can reach a type's pair list or token
    /// streams. A type whose labels miss this set entirely is untouched
    /// (provided clusters and dictionary are unchanged too).
    affected_types: HashSet<(Language, String)>,
}

impl<'a> PatchContext<'a> {
    pub(crate) fn new(
        old_corpus: &'a Corpus,
        new_corpus: &'a Corpus,
        old_dictionary: &TitleDictionary,
        new_dictionary: &'a TitleDictionary,
        delta: &CorpusDelta,
    ) -> Self {
        let old_clusters = old_corpus.entity_clusters();
        let new_clusters = new_corpus.entity_clusters();
        let clusters_changed = old_corpus.articles().any(|article| {
            new_corpus.get(article.id).is_some()
                && old_clusters.cluster_of(article.id) != new_clusters.cluster_of(article.id)
        });
        let old_entries: HashMap<&str, &str> = old_dictionary.entries().collect();
        let new_entries: HashMap<&str, &str> = new_dictionary.entries().collect();
        let mut changed_keys = HashSet::new();
        for (key, value) in &old_entries {
            if new_entries.get(key) != Some(value) {
                changed_keys.insert(key.to_string());
            }
        }
        for key in new_entries.keys() {
            if !old_entries.contains_key(key) {
                changed_keys.insert(key.to_string());
            }
        }
        let mutated = delta.mutated_titles();
        let mut affected_types: HashSet<(Language, String)> = HashSet::new();
        for corpus in [old_corpus, new_corpus] {
            for article in corpus.articles() {
                let owner = (article.language.clone(), article.entity_type.clone());
                if affected_types.contains(&owner) {
                    continue;
                }
                if mutated.contains(&(article.language.clone(), article.title.clone()))
                    || article.infobox.attributes.iter().any(|attr| {
                        attr.links.iter().any(|link| {
                            mutated.contains(&(article.language.clone(), link.target.clone()))
                        })
                    })
                {
                    affected_types.insert(owner);
                }
            }
        }
        Self {
            old_corpus,
            new_corpus,
            new_clusters,
            new_dictionary,
            changed_keys,
            clusters_changed,
            mutated,
            affected_types,
        }
    }

    /// True when this type's artifacts provably cannot differ from a cold
    /// rebuild over the mutated corpus: clusters and dictionary unchanged
    /// (the two delta effects that cross type boundaries), and no mutated
    /// or mutated-linking article carries either of the type's labels (the
    /// only way a delta reaches its pair list, instances or tokens).
    fn type_untouched(&self, other: &Language, pairing: &TypePairing) -> bool {
        !self.clusters_changed
            && self.changed_keys.is_empty()
            && !self
                .affected_types
                .contains(&(Language::En, pairing.label_en.clone()))
            && !self
                .affected_types
                .contains(&(other.clone(), pairing.label_other.clone()))
    }
}

/// One attribute group as seen by the skeleton walk: everything
/// [`DualSchema::build`]'s first pass derives *except* the token streams,
/// plus the instance list the dirty analysis compares.
struct AttrWalk {
    language: Language,
    name: String,
    occurrences: usize,
    occurrence_pattern: Vec<bool>,
    /// Every infobox attribute entry contributing to this group, as
    /// `(owning article, position in its infobox)`, in walk order.
    instances: Vec<(ArticleId, usize)>,
}

/// The skeleton of one type's dual schema: the cross-language pair list and
/// the attribute groups in first-seen order, mirroring [`DualSchema::build`]
/// exactly — but without tokenising a single value.
struct TypeWalk {
    pairs: Vec<(ArticleId, ArticleId)>,
    attrs: Vec<AttrWalk>,
    index: HashMap<(Language, String), usize>,
}

fn walk_type(corpus: &Corpus, other: &Language, label_other: &str, label_en: &str) -> TypeWalk {
    let english = Language::En;
    let pairs: Vec<(ArticleId, ArticleId)> = corpus
        .cross_language_pairs(&english, other)
        .into_iter()
        .filter_map(|(en_id, other_id)| {
            let en_article = corpus.get(en_id)?;
            let other_article = corpus.get(other_id)?;
            (en_article.entity_type == label_en && other_article.entity_type == label_other)
                .then_some((en_id, other_id))
        })
        .collect();
    let dual_count = pairs.len();

    let mut attrs: Vec<AttrWalk> = Vec::new();
    let mut index: HashMap<(Language, String), usize> = HashMap::new();
    for (j, &(en_id, other_id)) in pairs.iter().enumerate() {
        let en_article = corpus.get(en_id).expect("pair ids are live");
        let other_article = corpus.get(other_id).expect("pair ids are live");
        for (language, article) in [(&english, en_article), (other, other_article)] {
            for (pos, attr) in article.infobox.attributes.iter().enumerate() {
                let name = attr.normalized_name();
                if name.is_empty() {
                    continue;
                }
                let key = (language.clone(), name.clone());
                let idx = *index.entry(key).or_insert_with(|| {
                    attrs.push(AttrWalk {
                        language: language.clone(),
                        name: name.clone(),
                        occurrences: 0,
                        occurrence_pattern: vec![false; dual_count],
                        instances: Vec::new(),
                    });
                    attrs.len() - 1
                });
                let walk = &mut attrs[idx];
                if !walk.occurrence_pattern[j] {
                    walk.occurrence_pattern[j] = true;
                    walk.occurrences += 1;
                }
                walk.instances.push((article.id, pos));
            }
        }
    }
    TypeWalk {
        pairs,
        attrs,
        index,
    }
}

/// Raw token streams re-collected for one dirty attribute (occurrence
/// order; vectors collapse them exactly like the cold build does).
#[derive(Default)]
struct DirtyTokens {
    values: Vec<String>,
    raw_values: Vec<String>,
    links: Vec<String>,
}

/// Decides, for one attribute of the *new* walk, whether its cold-rebuilt
/// vectors could differ from the old schema's — the soundness core of the
/// patcher. `true` means "rebuild from the corpus"; `false` is only
/// returned when every token of every channel is provably unchanged.
fn is_dirty(
    ctx: &PatchContext<'_>,
    new_walk: &AttrWalk,
    old_walk: Option<&AttrWalk>,
    old_attr: Option<&AttributeStats>,
) -> bool {
    if ctx.clusters_changed {
        return true;
    }
    let (old_walk, old_attr) = match (old_walk, old_attr) {
        (Some(w), Some(a)) => (w, a),
        _ => return true,
    };
    // A different instance list means tokens were added, removed or moved.
    if old_walk.instances != new_walk.instances {
        return true;
    }
    // Same instances — but an in-place replace keeps ids, so any mutated
    // owner invalidates, as does any link pointing at a mutated title
    // (its cluster token may appear, vanish or change).
    for &(id, pos) in &new_walk.instances {
        let article = ctx.new_corpus.get(id).expect("instance ids are live");
        if ctx
            .mutated
            .contains(&(article.language.clone(), article.title.clone()))
        {
            return true;
        }
        for link in &article.infobox.attributes[pos].links {
            if ctx
                .mutated
                .contains(&(article.language.clone(), link.target.clone()))
            {
                return true;
            }
        }
    }
    // Foreign attributes re-translate when the dictionary entry of any of
    // their value terms changed.
    if new_walk.language != Language::En && !ctx.changed_keys.is_empty() {
        for vector in [&old_attr.values, &old_attr.raw_values] {
            for (term, _) in vector.iter() {
                if ctx.changed_keys.contains(&normalize(term)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Patches one cached type's artifacts against the mutated corpus,
/// returning the new artifacts, the number of similarity pairs whose
/// cosines were actually recomputed, and whether the type was patched at
/// all (a type the delta provably cannot reach short-circuits to the old
/// artifacts without walking the corpus). Everything else — clean vectors,
/// clean-pair scores, and (when the schema skeleton is unchanged) every LSI
/// score — keeps its exact bits.
pub(crate) fn patch_prepared_type(
    ctx: &PatchContext<'_>,
    pairing: &TypePairing,
    old: &PreparedType,
    lsi_config: LsiConfig,
) -> (PreparedType, u64, bool) {
    let other = ctx.new_corpus_other_language(&old.schema);
    if ctx.type_untouched(&other, pairing) {
        return (old.clone(), 0, false);
    }
    let old_walk = walk_type(
        ctx.old_corpus,
        &other,
        &pairing.label_other,
        &pairing.label_en,
    );
    let new_walk = walk_type(
        ctx.new_corpus,
        &other,
        &pairing.label_other,
        &pairing.label_en,
    );
    let dual_count = new_walk.pairs.len();

    // Map each new attribute to its old schema position (if any). The old
    // walk and the old schema were derived from the same corpus by the same
    // traversal, so their attribute sequences coincide; the guard below
    // degrades to a full per-attribute rebuild if they ever did not.
    let walks_coincide = old_walk.attrs.len() == old.schema.attributes.len()
        && old_walk
            .attrs
            .iter()
            .zip(&old.schema.attributes)
            .all(|(w, a)| w.language == a.language && w.name == a.name);

    let dirty: Vec<bool> = new_walk
        .attrs
        .iter()
        .map(|walk| {
            let key = (walk.language.clone(), walk.name.clone());
            let old_idx = walks_coincide
                .then(|| old_walk.index.get(&key).copied())
                .flatten();
            is_dirty(
                ctx,
                walk,
                old_idx.map(|i| &old_walk.attrs[i]),
                old_idx.map(|i| &old.schema.attributes[i]),
            )
        })
        .collect();
    let old_of: Vec<Option<usize>> = new_walk
        .attrs
        .iter()
        .map(|walk| {
            walks_coincide
                .then(|| {
                    old_walk
                        .index
                        .get(&(walk.language.clone(), walk.name.clone()))
                        .copied()
                })
                .flatten()
        })
        .collect();

    // Re-collect token streams for the dirty attributes only, walking the
    // same pair sequence the cold build would.
    let english = Language::En;
    let mut tokens: HashMap<usize, DirtyTokens> = new_walk
        .attrs
        .iter()
        .enumerate()
        .filter(|(i, _)| dirty[*i])
        .map(|(i, _)| (i, DirtyTokens::default()))
        .collect();
    for &(en_id, other_id) in &new_walk.pairs {
        let en_article = ctx.new_corpus.get(en_id).expect("pair ids are live");
        let other_article = ctx.new_corpus.get(other_id).expect("pair ids are live");
        for (language, article) in [(&english, en_article), (&other, other_article)] {
            for attr in &article.infobox.attributes {
                let name = attr.normalized_name();
                if name.is_empty() {
                    continue;
                }
                let idx = new_walk.index[&(language.clone(), name)];
                let Some(streams) = tokens.get_mut(&idx) else {
                    continue;
                };
                streams.values.extend(tokenize_value(&attr.value));
                streams.raw_values.extend(split_value_atoms(&attr.value));
                for link in &attr.links {
                    if let Some(target) = ctx.new_corpus.get_by_title(language, &link.target) {
                        if let Some(cluster) = ctx.new_clusters.cluster_of(target.id) {
                            streams.links.push(format!("e{}", cluster.0));
                        }
                    }
                }
            }
        }
    }

    // Extend the vocabulary: every dirty token, its dictionary translation
    // (for foreign value channels), and every dirty link token. The merge
    // keeps all old ids' relative order, so clean vectors migrate with one
    // linear remap pass; terms only the removed evidence used stay behind
    // as harmless extras (cosines only see shared terms).
    let mut translation_cache: HashMap<String, Option<String>> = HashMap::new();
    let mut translated = |term: &str| -> Option<String> {
        translation_cache
            .entry(term.to_string())
            .or_insert_with(|| ctx.new_dictionary.translate(term))
            .clone()
    };
    let mut extension: HashSet<String> = HashSet::new();
    for (&idx, streams) in &tokens {
        let foreign = new_walk.attrs[idx].language != english;
        for term in streams.values.iter().chain(&streams.raw_values) {
            if foreign {
                if let Some(translation) = translated(term) {
                    extension.insert(translation);
                }
            }
            extension.insert(term.clone());
        }
        extension.extend(streams.links.iter().cloned());
    }
    let (arena, remap) = old.schema.arena().extended_with(extension);

    // Assemble the attribute groups in new-walk order: dirty groups rebuild
    // their five channels from the collected streams, clean groups migrate
    // the old vectors bit-verbatim (patterns always come from the new walk —
    // pair indices may have shifted even when a group's evidence did not).
    let ids_of = |stream: &[String]| -> Vec<u32> {
        stream
            .iter()
            .map(|t| arena.intern(t).expect("extension interned every token"))
            .collect()
    };
    let attributes: Vec<AttributeStats> = new_walk
        .attrs
        .iter()
        .enumerate()
        .map(|(i, walk)| {
            if let Some(streams) = tokens.get(&i) {
                let values =
                    TermVector::from_id_occurrences(Arc::clone(&arena), ids_of(&streams.values));
                let raw_values = TermVector::from_id_occurrences(
                    Arc::clone(&arena),
                    ids_of(&streams.raw_values),
                );
                let (translated_values, translated_raw_values) = if walk.language != english {
                    let mut translate_ids = |stream: &[String]| -> Vec<u32> {
                        stream
                            .iter()
                            .map(|t| {
                                let term = translated(t);
                                arena
                                    .intern(term.as_deref().unwrap_or(t))
                                    .expect("extension interned every translation")
                            })
                            .collect()
                    };
                    (
                        TermVector::from_id_occurrences(
                            Arc::clone(&arena),
                            translate_ids(&streams.values),
                        ),
                        TermVector::from_id_occurrences(
                            Arc::clone(&arena),
                            translate_ids(&streams.raw_values),
                        ),
                    )
                } else {
                    (values.clone(), raw_values.clone())
                };
                let links =
                    TermVector::from_id_occurrences(Arc::clone(&arena), ids_of(&streams.links));
                AttributeStats {
                    language: walk.language.clone(),
                    name: walk.name.clone(),
                    occurrences: walk.occurrences,
                    values,
                    translated_values,
                    raw_values,
                    translated_raw_values,
                    links,
                    occurrence_pattern: walk.occurrence_pattern.clone(),
                }
            } else {
                let old_attr =
                    &old.schema.attributes[old_of[i].expect("clean attrs map to the old schema")];
                AttributeStats {
                    language: walk.language.clone(),
                    name: walk.name.clone(),
                    occurrences: walk.occurrences,
                    values: old_attr.values.remapped(Arc::clone(&arena), &remap),
                    translated_values: old_attr
                        .translated_values
                        .remapped(Arc::clone(&arena), &remap),
                    raw_values: old_attr.raw_values.remapped(Arc::clone(&arena), &remap),
                    translated_raw_values: old_attr
                        .translated_raw_values
                        .remapped(Arc::clone(&arena), &remap),
                    links: old_attr.links.remapped(Arc::clone(&arena), &remap),
                    occurrence_pattern: walk.occurrence_pattern.clone(),
                }
            }
        })
        .collect();

    // The LSI model only sees the occurrence matrix: identical skeleton
    // (attribute sequence + patterns + pair count) ⇒ identical model ⇒
    // every LSI score is reused from the old table.
    let skeleton_same = old.schema.dual_count == dual_count
        && old.schema.attributes.len() == attributes.len()
        && old.schema.attributes.iter().zip(&attributes).all(|(a, b)| {
            a.language == b.language
                && a.name == b.name
                && a.occurrence_pattern == b.occurrence_pattern
        });

    let schema = DualSchema::from_parts_in_arena(
        old.schema.languages.clone(),
        pairing.label_other.clone(),
        pairing.label_en.clone(),
        attributes,
        dual_count,
        arena,
    );
    let index = CandidateIndex::build(&schema);

    let lsi_refit = (!skeleton_same).then(|| {
        (
            SimilarityTable::fit_lsi(&schema, lsi_config),
            pack_occurrence_patterns(&schema),
        )
    });

    // Row pass, mirroring `compute_pruned_with`: same interleaved row
    // distribution, same gating, same assembly order — but pairs whose two
    // endpoints are clean copy their cosines from the old table.
    let n = schema.len();
    let old_table = &old.table;
    let mut row_order: Vec<usize> = Vec::with_capacity(n);
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        row_order.push(lo);
        lo += 1;
        if lo < hi {
            hi -= 1;
            row_order.push(hi);
        }
    }
    let mut rows: Vec<(usize, Vec<CandidatePair>, u64)> = row_order
        .par_iter()
        .map(|&p| {
            let mut recomputed = 0u64;
            let row: Vec<CandidatePair> = ((p + 1)..n)
                .map(|q| {
                    let reusable = !dirty[p] && !dirty[q];
                    let (vsim_score, lsim_score) = if reusable {
                        let old_pair = old_table
                            .pair(old_of[p].expect("clean"), old_of[q].expect("clean"))
                            .expect("old table covers clean pairs");
                        (old_pair.vsim, old_pair.lsim)
                    } else {
                        recomputed += 1;
                        (
                            if index.value_candidate(p, q) {
                                vsim(&schema, p, q)
                            } else {
                                0.0
                            },
                            if index.link_candidate(p, q) {
                                lsim(&schema, p, q)
                            } else {
                                0.0
                            },
                        )
                    };
                    let lsi = match &lsi_refit {
                        Some((model, bits)) => {
                            SimilarityTable::lsi_score_with(&schema, model, p, q, || {
                                packed_patterns_intersect(&bits[p], &bits[q])
                            })
                        }
                        // Skeleton unchanged ⇒ indices coincide with the
                        // old table's.
                        None => old_table.pair(p, q).expect("same skeleton").lsi,
                    };
                    CandidatePair {
                        p,
                        q,
                        vsim: vsim_score,
                        lsim: lsim_score,
                        lsi,
                    }
                })
                .collect();
            (p, row, recomputed)
        })
        .collect();
    rows.sort_by_key(|(p, _, _)| *p);
    let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
    let mut rows_recomputed = 0u64;
    for (_, row, recomputed) in rows {
        pairs.extend(row);
        rows_recomputed += recomputed;
    }
    let table = SimilarityTable::from_raw_parts(pairs, n);

    let arena = Arc::clone(schema.arena());
    let vector_entries = schema.vector_entry_count();
    (
        PreparedType {
            schema: Arc::new(schema),
            table: Arc::new(table),
            index: Some(Arc::new(index)),
            arena,
            vector_entries,
            region: None,
        },
        rows_recomputed,
        true,
    )
}

impl PatchContext<'_> {
    /// The foreign language of the pair, read off the old schema (the
    /// corpus itself is language-agnostic).
    fn new_corpus_other_language(&self, schema: &DualSchema) -> Language {
        schema.languages.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{AttributeValue, Infobox};

    fn article(title: &str, lang: Language, ty: &str, value: &str) -> Article {
        let mut infobox = Infobox::new(format!("Infobox {ty}"));
        infobox.push(AttributeValue::text("name", value));
        Article::new(title, lang, ty, infobox)
    }

    #[test]
    fn apply_to_counts_inserts_updates_and_removals() {
        let mut corpus = Corpus::new();
        corpus.insert(article("A", Language::En, "Thing", "one"));
        let mut delta = CorpusDelta::upsert(article("A", Language::En, "Thing", "two"));
        delta.push(DeltaOp::Upsert(article("B", Language::En, "Thing", "b")));
        delta.push(DeltaOp::Remove {
            language: Language::En,
            title: "missing".into(),
        });
        delta.push(DeltaOp::Remove {
            language: Language::En,
            title: "A".into(),
        });
        assert_eq!(delta.len(), 4);
        assert!(!delta.is_empty());
        let (inserted, updated, removed) = delta.apply_to(&mut corpus);
        assert_eq!((inserted, updated, removed), (1, 1, 1));
        assert!(corpus.get_by_title(&Language::En, "A").is_none());
        assert_eq!(corpus.get_by_title(&Language::En, "B").unwrap().title, "B");
        let keys = delta.mutated_titles();
        assert!(keys.contains(&(Language::En, "A".to_string())));
        assert!(keys.contains(&(Language::En, "missing".to_string())));
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn upsert_of_live_title_keeps_the_id() {
        let mut corpus = Corpus::new();
        let id = corpus.insert(article("A", Language::En, "Thing", "one"));
        CorpusDelta::upsert(article("A", Language::En, "Thing", "two")).apply_to(&mut corpus);
        let live = corpus.get_by_title(&Language::En, "A").unwrap();
        assert_eq!(live.id, id);
        assert_eq!(live.infobox.attributes[0].value, "two");
    }

    #[test]
    fn diff_reproduces_the_target_slot_exactly() {
        let mut base = Corpus::new();
        base.insert(article("A", Language::En, "Thing", "a"));
        base.insert(article("B", Language::En, "Thing", "b"));
        base.insert(article("C", Language::En, "Thing", "c"));

        // Evolve a copy through a messy history: in-place edit, removal,
        // appends, an appended-then-removed slot (burned id), and a key
        // removed from a base slot then re-inserted at an appended slot.
        let mut target = base.clone();
        let history = [
            CorpusDelta::upsert(article("B", Language::En, "Thing", "b1")),
            CorpusDelta::upsert(article("B", Language::En, "Thing", "b2")),
            CorpusDelta::remove(Language::En, "C"),
            CorpusDelta::upsert(article("D", Language::En, "Thing", "d")),
            CorpusDelta::upsert(article("E", Language::En, "Thing", "e")),
            CorpusDelta::remove(Language::En, "D"),
            CorpusDelta::upsert(article("C", Language::En, "Thing", "c2")),
        ];
        for delta in &history {
            delta.apply_to(&mut target);
        }

        let composed = CorpusDelta::diff(&base, &target);
        let mut replayed = base;
        composed.apply_to(&mut replayed);

        assert_eq!(replayed.slot_count(), target.slot_count());
        assert_eq!(replayed.len(), target.len());
        for slot in 0..target.slot_count() {
            let id = ArticleId(slot as u32);
            assert_eq!(replayed.get(id), target.get(id), "slot {slot}");
        }
        // A far shorter program than the history it replaces.
        assert!(composed.len() < history.iter().map(CorpusDelta::len).sum());
    }
}
