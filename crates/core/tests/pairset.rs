//! Edge-case coverage for the bit-packed [`PairSet`] behind the candidate
//! index: word-boundary bits (triangular indices 63/64/65), the empty set,
//! the full set, and a property test against a `HashSet` model.

use std::collections::HashSet;

use proptest::prelude::*;

use wikimatch::schema::PairSet;

/// The triangular index `PairSet` assigns to the unordered pair `(p, q)` —
/// mirrors the layout documented on `PairSet::bit`.
fn tri_index(n: usize, p: usize, q: usize) -> usize {
    let (lo, hi) = if p < q { (p, q) } else { (q, p) };
    lo * n - lo * (lo + 1) / 2 + (hi - lo - 1)
}

/// All unordered pairs of `n` attributes whose triangular index is in
/// `wanted` (sorted by index).
fn pairs_at_indices(n: usize, wanted: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut found = Vec::new();
    for p in 0..n {
        for q in (p + 1)..n {
            let idx = tri_index(n, p, q);
            if wanted.contains(&idx) {
                found.push((idx, p, q));
            }
        }
    }
    found.sort_unstable();
    found
}

#[test]
fn word_boundary_bits_do_not_alias() {
    // Every n here has more than 65 triangular bits, so indices 63 (last
    // bit of word 0), 64 (first bit of word 1) and 65 all exist.
    for n in [12usize, 13, 17, 40] {
        let total = n * (n - 1) / 2;
        assert!(total > 65, "n={n} too small for the boundary indices");
        let boundary = pairs_at_indices(n, &[63, 64, 65]);
        assert_eq!(boundary.len(), 3, "n={n}");

        for &(idx, p, q) in &boundary {
            // Inserting exactly one boundary pair sets exactly one bit …
            let mut set = PairSet::new(n);
            set.insert(p, q);
            assert!(set.contains(p, q), "n={n} idx={idx}");
            assert!(set.contains(q, p), "order-insensitive, n={n} idx={idx}");
            assert_eq!(set.len(), 1, "n={n} idx={idx}");
            // … and no other pair observes it (no cross-word aliasing).
            for a in 0..n {
                for b in 0..n {
                    let expected = a != b && (a.min(b), a.max(b)) == (p, q);
                    assert_eq!(set.contains(a, b), expected, "n={n} idx={idx} ({a},{b})");
                }
            }
        }

        // All three boundary bits together: adjacent bits across the word
        // seam stay independent.
        let mut set = PairSet::new(n);
        for &(_, p, q) in &boundary {
            set.insert(p, q);
        }
        assert_eq!(set.len(), 3, "n={n}");
        for &(_, p, q) in &boundary {
            assert!(set.contains(p, q), "n={n}");
        }
    }
}

#[test]
fn empty_set_has_no_members() {
    for n in [0usize, 1, 2, 13, 40] {
        let set = PairSet::new(n);
        assert!(set.is_empty(), "n={n}");
        assert_eq!(set.len(), 0, "n={n}");
        for p in 0..n {
            for q in 0..n {
                assert!(!set.contains(p, q), "n={n} ({p},{q})");
            }
        }
    }

    // Inserting only diagonal pairs keeps the set empty.
    let mut set = PairSet::new(13);
    for p in 0..13 {
        set.insert(p, p);
    }
    assert!(set.is_empty());
}

#[test]
fn full_set_contains_every_pair_and_nothing_else() {
    for n in [2usize, 12, 13, 17] {
        let mut set = PairSet::new(n);
        for p in 0..n {
            for q in 0..n {
                set.insert(p, q); // diagonal inserts are ignored
            }
        }
        assert_eq!(set.len(), n * (n - 1) / 2, "n={n}");
        assert!(!set.is_empty(), "n={n}");
        for p in 0..n {
            for q in 0..n {
                assert_eq!(set.contains(p, q), p != q, "n={n} ({p},{q})");
            }
        }
        // Re-inserting everything is idempotent.
        for p in 0..n {
            for q in (p + 1)..n {
                set.insert(q, p);
            }
        }
        assert_eq!(set.len(), n * (n - 1) / 2, "n={n}");
    }
}

proptest! {
    /// Random insert sequences behave exactly like a `HashSet` of
    /// normalised `(lo, hi)` pairs, for sizes straddling multiple words.
    #[test]
    fn matches_a_hashset_model(
        case in (2usize..40).prop_flat_map(|n| {
            (n..n + 1, proptest::collection::vec((0usize..n, 0usize..n), 0..80))
        })
    ) {
        let (n, pairs) = case;
        let mut set = PairSet::new(n);
        let mut model: HashSet<(usize, usize)> = HashSet::new();
        for &(p, q) in &pairs {
            set.insert(p, q);
            if p != q {
                model.insert((p.min(q), p.max(q)));
            }
        }
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.is_empty(), model.is_empty());
        for p in 0..n {
            for q in 0..n {
                prop_assert_eq!(
                    set.contains(p, q),
                    model.contains(&(p.min(q), p.max(q))) && p != q
                );
            }
        }
    }
}
