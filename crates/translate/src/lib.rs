//! # wiki-translate
//!
//! Bilingual dictionaries for the WikiMatch pipeline.
//!
//! Two translation resources are provided:
//!
//! * [`dictionary::TitleDictionary`] — the *automatically derived* bilingual
//!   dictionary of the paper (Section 3.2): for every pair of articles
//!   connected by a cross-language link, the title of the article in language
//!   `L` translates to the title of the linked article in `L'`. This is the
//!   only translation resource WikiMatch itself uses — no external
//!   dictionaries, thesauri or machine-translation systems are required.
//! * [`mt::MachineTranslator`] — a *simulated* machine-translation service
//!   standing in for Google Translator, which the paper uses only to build
//!   the translated COMA++ baseline configurations (`N+G`). The simulation
//!   produces literal, dictionary-style translations of attribute labels,
//!   including the characteristic mistakes the paper reports (e.g.
//!   *starring* → *estrelando* rather than the template name
//!   *elenco original*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dictionary;
pub mod mt;

pub use dictionary::TitleDictionary;
pub use mt::MachineTranslator;
