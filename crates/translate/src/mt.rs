//! A simulated machine-translation service.
//!
//! The paper's COMA++ baseline is evaluated in configurations that translate
//! attribute *names* with Google Translator (`N+G`) before running a
//! monolingual name matcher. Google Translator is not available offline, so
//! this module simulates it: a word-by-word glossary that produces literal
//! translations of attribute labels. Crucially, the simulation reproduces
//! the failure mode the paper highlights — literal translations often do not
//! coincide with the attribute names actually used by infobox templates
//! (*starring* translates to *estrelando*, but the Portuguese template says
//! *elenco original*; *diễn viên* translates to *actor* rather than
//! *starring*) — which is exactly why translation-plus-string-similarity
//! underperforms WikiMatch.

use std::collections::HashMap;

use wiki_corpus::Language;
use wiki_text::normalize;

/// A word/phrase glossary translator between two languages.
#[derive(Debug, Clone)]
pub struct MachineTranslator {
    source: Language,
    target: Language,
    phrases: HashMap<String, String>,
    words: HashMap<String, String>,
}

impl MachineTranslator {
    /// Builds the simulated translator for a `(source, target)` pair.
    ///
    /// Supported pairs: Pt→En, En→Pt, Vn→En, En→Vn. Any other pair yields an
    /// empty glossary (every term is passed through unchanged), which mirrors
    /// how a missing language pack behaves.
    pub fn new(source: Language, target: Language) -> Self {
        let (phrases, words) = match (&source, &target) {
            (Language::Pt, Language::En) => (pt_en_phrases(), pt_en_words()),
            (Language::En, Language::Pt) => (invert(pt_en_phrases()), invert(pt_en_words())),
            (Language::Vn, Language::En) => (vn_en_phrases(), vn_en_words()),
            (Language::En, Language::Vn) => (invert(vn_en_phrases()), invert(vn_en_words())),
            _ => (HashMap::new(), HashMap::new()),
        };
        Self {
            source,
            target,
            phrases,
            words,
        }
    }

    /// The source language.
    pub fn source(&self) -> &Language {
        &self.source
    }

    /// The target language.
    pub fn target(&self) -> &Language {
        &self.target
    }

    /// Translates a label: whole-phrase lookup first, then word by word,
    /// keeping unknown words unchanged — the behaviour of a literal MT
    /// system on short noun phrases.
    pub fn translate(&self, label: &str) -> String {
        let norm = normalize(label);
        if norm.is_empty() {
            return norm;
        }
        if let Some(phrase) = self.phrases.get(&norm) {
            return phrase.clone();
        }
        norm.split_whitespace()
            .map(|w| self.words.get(w).cloned().unwrap_or_else(|| w.to_string()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn invert(map: HashMap<String, String>) -> HashMap<String, String> {
    map.into_iter().map(|(k, v)| (v, k)).collect()
}

fn table(entries: &[(&str, &str)]) -> HashMap<String, String> {
    entries
        .iter()
        .map(|(a, b)| (normalize(a), normalize(b)))
        .collect()
}

/// Portuguese → English phrase glossary (literal translations of infobox
/// labels; note the deliberate mismatches with template vocabulary).
fn pt_en_phrases() -> HashMap<String, String> {
    table(&[
        ("elenco original", "original cast"),
        ("data de nascimento", "date of birth"),
        ("data de lançamento", "launch date"),
        ("local de nascimento", "place of birth"),
        ("país de origem", "country of origin"),
        ("outros nomes", "other names"),
        ("tempo de duração", "duration time"),
        ("número de episódios", "number of episodes"),
        ("número de temporadas", "number of seasons"),
        ("primeira exibição", "first exhibition"),
        ("exibição original", "original exhibition"),
        ("data de publicação", "publication date"),
        ("número de páginas", "number of pages"),
        ("código de produção", "production code"),
        ("primeira aparição", "first appearance"),
        ("personagens principais", "main characters"),
        ("participações especiais", "special participations"),
        ("anos de atividade", "years of activity"),
        ("período de atividade", "activity period"),
        ("página oficial", "official page"),
        ("gênero musical", "musical genre"),
        ("área de transmissão", "transmission area"),
        ("formato de imagem", "picture format"),
        ("número de funcionários", "number of employees"),
        ("pessoas-chave", "key people"),
        ("ramo de atividade", "branch of activity"),
        ("nome completo", "full name"),
        ("gênero literário", "literary genre"),
        ("obras notáveis", "notable works"),
        ("principais obras", "main works"),
        ("artista da capa", "cover artist"),
        ("número de edições", "number of issues"),
        ("canais irmãos", "sister channels"),
        ("produtor executivo", "executive producer"),
        ("compositor do tema", "theme composer"),
        ("companhia produtora", "production company"),
        ("data de exibição", "air date"),
        ("número do episódio", "episode number"),
    ])
}

/// Portuguese → English word glossary.
fn pt_en_words() -> HashMap<String, String> {
    table(&[
        ("direção", "direction"),
        ("dirigido", "directed"),
        ("por", "by"),
        ("produção", "production"),
        ("roteiro", "script"),
        ("elenco", "cast"),
        ("música", "music"),
        ("fotografia", "photography"),
        ("edição", "editing"),
        ("distribuição", "distribution"),
        ("estúdio", "studio"),
        ("lançamento", "launch"),
        ("duração", "duration"),
        ("país", "country"),
        ("idioma", "language"),
        ("orçamento", "budget"),
        ("receita", "revenue"),
        ("bilheteria", "box office"),
        ("gênero", "genre"),
        ("prêmios", "awards"),
        ("prêmio", "award"),
        ("narração", "narration"),
        ("nascimento", "birth"),
        ("falecimento", "death"),
        ("morte", "death"),
        ("ocupação", "occupation"),
        ("profissão", "profession"),
        ("cônjuge", "spouse"),
        ("nacionalidade", "nationality"),
        ("criação", "creation"),
        ("criado", "created"),
        ("criadores", "creators"),
        ("emissora", "broadcaster"),
        ("temporadas", "seasons"),
        ("episódios", "episodes"),
        ("episódio", "episode"),
        ("temporada", "season"),
        ("gravadora", "record label"),
        ("instrumentos", "instruments"),
        ("origem", "origin"),
        ("artista", "artist"),
        ("gravado", "recorded"),
        ("gravação", "recording"),
        ("produtor", "producer"),
        ("editora", "publisher"),
        ("autor", "author"),
        ("escritor", "writer"),
        ("escrito", "written"),
        ("páginas", "pages"),
        ("fundação", "foundation"),
        ("fundador", "founder"),
        ("fundadores", "founders"),
        ("sede", "headquarters"),
        ("indústria", "industry"),
        ("produtos", "products"),
        ("faturamento", "revenue"),
        ("funcionários", "employees"),
        ("proprietário", "owner"),
        ("pertence", "belongs"),
        ("slogan", "slogan"),
        ("lema", "motto"),
        ("espécie", "species"),
        ("habilidades", "abilities"),
        ("poderes", "powers"),
        ("afiliações", "affiliations"),
        ("alianças", "alliances"),
        ("interpretado", "played"),
        ("etnia", "ethnicity"),
        ("medidas", "measurements"),
        ("pseudônimo", "pseudonym"),
        ("filmes", "films"),
        ("série", "series"),
        ("seriado", "series"),
        ("exibição", "exhibition"),
        ("periodicidade", "periodicity"),
        ("formato", "format"),
        ("precedido", "preceded"),
        ("antecedido", "preceded"),
        ("capa", "cover"),
        ("dura", "hard"),
        ("sexo", "sex"),
        ("família", "family"),
        ("personagem", "character"),
        ("nome", "name"),
        ("nomes", "names"),
        ("outros", "other"),
        ("data", "date"),
        ("local", "place"),
        ("de", "of"),
        ("do", "of the"),
        ("da", "of the"),
        ("e", "and"),
        ("estrelando", "starring"),
        ("ator", "actor"),
        ("filme", "film"),
        ("livro", "book"),
        ("empresa", "company"),
        ("canal", "channel"),
        ("álbum", "album"),
        ("língua", "language"),
        ("período", "period"),
        ("website", "website"),
        ("site", "site"),
        ("oficial", "official"),
    ])
}

/// Vietnamese → English phrase glossary.
fn vn_en_phrases() -> HashMap<String, String> {
    table(&[
        // The paper quotes these two literal mistranslations explicitly.
        ("diễn viên", "actor"),
        ("kinh phí", "funding"),
        ("đạo diễn", "director"),
        ("kịch bản", "screenplay"),
        ("âm nhạc", "music"),
        ("quay phim", "cinematography"),
        ("phát hành", "release"),
        ("hãng sản xuất", "production company"),
        ("công chiếu", "premiere"),
        ("ngày phát hành", "release day"),
        ("thời lượng", "duration"),
        ("quốc gia", "country"),
        ("ngôn ngữ", "language"),
        ("doanh thu", "revenue"),
        ("thể loại", "genre"),
        ("giải thưởng", "award"),
        ("ngày sinh", "date of birth"),
        ("nơi sinh", "place of birth"),
        ("ngày mất", "date of death"),
        ("vai trò", "role"),
        ("công việc", "work"),
        ("tên khác", "other name"),
        ("quốc tịch", "nationality"),
        ("năm hoạt động", "years of operation"),
        ("trang web", "website"),
        ("số tập", "number of episodes"),
        ("số mùa", "number of seasons"),
        ("phát sóng lần đầu", "first broadcast"),
        ("phát sóng lần cuối", "last broadcast"),
        ("kênh phát sóng", "broadcast channel"),
        ("sáng lập", "founder"),
        ("nhạc cụ", "musical instrument"),
        ("hãng đĩa", "record label"),
        ("xuất thân", "origin"),
        ("sản xuất", "produce"),
        ("nhà sản xuất", "producer"),
    ])
}

/// Vietnamese → English word glossary.
fn vn_en_words() -> HashMap<String, String> {
    table(&[
        ("sinh", "born"),
        ("mất", "died"),
        ("chồng", "husband"),
        ("vợ", "wife"),
        ("phim", "film"),
        ("tên", "name"),
        ("khác", "other"),
        ("ngày", "day"),
        ("năm", "year"),
        ("số", "number"),
        ("giải", "prize"),
        ("nhạc", "music"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_translation_misses_template_vocabulary() {
        // The paper's motivating failure: the Portuguese template attribute
        // "elenco original" translates literally to "original cast", which
        // is NOT the English template attribute "starring".
        let mt = MachineTranslator::new(Language::Pt, Language::En);
        assert_eq!(mt.translate("elenco original"), "original cast");
        assert_ne!(mt.translate("elenco original"), "starring");
        // And Vietnamese "diễn viên" becomes "actor", not "starring".
        let mt = MachineTranslator::new(Language::Vn, Language::En);
        assert_eq!(mt.translate("diễn viên"), "actor");
        assert_eq!(mt.translate("kinh phí"), "funding");
    }

    #[test]
    fn word_by_word_fallback() {
        let mt = MachineTranslator::new(Language::Pt, Language::En);
        assert_eq!(mt.translate("direção"), "direction");
        assert_eq!(mt.translate("dirigido por"), "directed by");
        // Unknown words pass through.
        assert_eq!(mt.translate("xyzzy"), "xyzzy");
        assert_eq!(mt.translate(""), "");
    }

    #[test]
    fn reverse_direction_uses_inverted_glossary() {
        let mt = MachineTranslator::new(Language::En, Language::Pt);
        assert_eq!(mt.translate("other names"), "outros nomes");
        let mt = MachineTranslator::new(Language::En, Language::Vn);
        assert_eq!(mt.translate("actor"), "dien vien");
    }

    #[test]
    fn unsupported_pair_is_identity() {
        let mt = MachineTranslator::new(Language::Pt, Language::Vn);
        assert_eq!(mt.translate("direção"), "direcao");
        assert_eq!(mt.source(), &Language::Pt);
        assert_eq!(mt.target(), &Language::Vn);
    }

    #[test]
    fn some_translations_do_land_on_template_names() {
        // Not every translation fails — e.g. "país" → "country" matches the
        // English template attribute, which is why the translated COMA++
        // configurations are better than nothing.
        let mt = MachineTranslator::new(Language::Pt, Language::En);
        assert_eq!(mt.translate("país"), "country");
        assert_eq!(mt.translate("idioma"), "language");
        assert_eq!(mt.translate("outros nomes"), "other names");
    }
}
