//! The automatically derived bilingual title dictionary.
//!
//! Following Section 3.2 of the paper (and Oh et al.), the dictionary is
//! built purely from the corpus: every cross-language link between an
//! article in language `L` and one in `L'` contributes the entry
//! `title(L) → title(L')`. When `vsim` compares the value vectors of two
//! attributes, values of the `L` vector that appear in the dictionary are
//! replaced by their `L'` representation before the cosine is computed.

use std::collections::HashMap;

use wiki_corpus::{Corpus, Language};
use wiki_text::{normalize, TermArena};

/// A directed bilingual dictionary from titles of one language to titles of
/// another, keyed by normalised source title.
#[derive(Debug, Clone)]
pub struct TitleDictionary {
    source: Language,
    target: Language,
    entries: HashMap<String, String>,
}

impl TitleDictionary {
    /// Builds the dictionary translating titles from `source` into `target`
    /// using the corpus' cross-language links.
    pub fn from_corpus(corpus: &Corpus, source: &Language, target: &Language) -> Self {
        let mut entries = HashMap::new();
        for (src_id, dst_id) in corpus.cross_language_pairs(source, target) {
            let (Some(src), Some(dst)) = (corpus.get(src_id), corpus.get(dst_id)) else {
                continue;
            };
            entries.insert(normalize(&src.title), dst.title.clone());
        }
        Self {
            source: source.clone(),
            target: target.clone(),
            entries,
        }
    }

    /// Rebuilds a dictionary from `(normalised source title, target title)`
    /// entries — the shape produced by [`entries`](Self::entries). Used by
    /// persistence layers restoring a dictionary without re-scanning the
    /// corpus.
    pub fn from_entries(
        source: Language,
        target: Language,
        entries: impl IntoIterator<Item = (String, String)>,
    ) -> Self {
        Self {
            source,
            target,
            entries: entries.into_iter().collect(),
        }
    }

    /// Iterates over the `(normalised source title, target title)` entries
    /// in unspecified order. Persistence layers should sort the entries
    /// before writing them to obtain a canonical byte stream.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The source language of the dictionary.
    pub fn source(&self) -> &Language {
        &self.source
    }

    /// The target language of the dictionary.
    pub fn target(&self) -> &Language {
        &self.target
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Translates a term (normalised comparison); returns the *normalised*
    /// target-language form, or `None` when the term is unknown.
    pub fn translate(&self, term: &str) -> Option<String> {
        self.entries.get(&normalize(term)).map(|t| normalize(t))
    }

    /// Translates a term, keeping the original (normalised) form when the
    /// dictionary has no entry — the behaviour `vsim` needs when translating
    /// a value vector.
    pub fn translate_or_keep(&self, term: &str) -> String {
        self.translate(term).unwrap_or_else(|| normalize(term))
    }

    /// Translates every **distinct** term of a frozen [`TermArena`] once,
    /// returning the arena-indexed translation table
    /// (`table[id] == translate(arena.resolve(id))`).
    ///
    /// `needed` masks the ids worth translating (terms that only ever occur
    /// in English attributes or in link-cluster tokens never consult the
    /// dictionary); unneeded slots come back `None` without a lookup. This
    /// is the id-space bulk variant of [`translate`](Self::translate): the
    /// schema builder used to normalise and look up every token
    /// *occurrence*, this pays one lookup per vocabulary entry.
    pub fn translate_arena(&self, arena: &TermArena, needed: &[bool]) -> Vec<Option<String>> {
        debug_assert_eq!(needed.len(), arena.len());
        arena
            .terms()
            .zip(needed)
            .map(|(term, wanted)| wanted.then(|| self.translate(term)).flatten())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Article, AttributeValue, Infobox};

    fn corpus_with_links() -> Corpus {
        let mut corpus = Corpus::new();
        let mk = |title: &str, lang: Language, cross: Option<(Language, &str)>| {
            let mut ib = Infobox::new("Infobox");
            ib.push(AttributeValue::text("name", title));
            let mut a = Article::new(title, lang, "Thing", ib);
            if let Some((l, t)) = cross {
                a.add_cross_link(l, t);
            }
            a
        };
        corpus.insert(mk(
            "United States",
            Language::En,
            Some((Language::Pt, "Estados Unidos")),
        ));
        corpus.insert(mk("Estados Unidos", Language::Pt, None));
        corpus.insert(mk("Ireland", Language::En, Some((Language::Pt, "Irlanda"))));
        corpus.insert(mk("Irlanda", Language::Pt, None));
        corpus.insert(mk("Orphan", Language::En, None));
        corpus
    }

    #[test]
    fn builds_entries_from_cross_links() {
        let corpus = corpus_with_links();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        assert_eq!(dict.len(), 2);
        assert_eq!(
            dict.translate("Estados Unidos"),
            Some("united states".into())
        );
        assert_eq!(
            dict.translate("estados  unidos"),
            Some("united states".into())
        );
        assert_eq!(dict.translate("Brasil"), None);
        assert_eq!(dict.source(), &Language::Pt);
        assert_eq!(dict.target(), &Language::En);
    }

    #[test]
    fn reverse_direction_is_a_separate_dictionary() {
        let corpus = corpus_with_links();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::En, &Language::Pt);
        assert_eq!(dict.translate("Ireland"), Some("irlanda".into()));
        assert_eq!(dict.translate("Irlanda"), None);
    }

    #[test]
    fn translate_or_keep_falls_back_to_normalised_input() {
        let corpus = corpus_with_links();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        assert_eq!(dict.translate_or_keep("Irlanda"), "ireland");
        assert_eq!(dict.translate_or_keep("Cinema Novo"), "cinema novo");
    }

    #[test]
    fn entries_round_trip_through_from_entries() {
        let corpus = corpus_with_links();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        let mut entries: Vec<(String, String)> = dict
            .entries()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        entries.sort();
        let rebuilt =
            TitleDictionary::from_entries(dict.source().clone(), dict.target().clone(), entries);
        assert_eq!(rebuilt.len(), dict.len());
        assert_eq!(
            rebuilt.translate("Estados Unidos"),
            dict.translate("Estados Unidos")
        );
        assert_eq!(rebuilt.translate_or_keep("Cinema Novo"), "cinema novo");
    }

    #[test]
    fn translate_arena_translates_distinct_terms_once() {
        let corpus = corpus_with_links();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        let mut builder = wiki_text::TermArenaBuilder::new();
        for t in ["irlanda", "cinema novo", "estados unidos"] {
            builder.intern(t);
        }
        let (arena, _) = builder.freeze();
        let all = vec![true; arena.len()];
        let table = dict.translate_arena(&arena, &all);
        assert_eq!(table.len(), arena.len());
        let lookup = |term: &str| table[arena.intern(term).unwrap() as usize].clone();
        assert_eq!(lookup("estados unidos"), Some("united states".into()));
        assert_eq!(lookup("irlanda"), Some("ireland".into()));
        assert_eq!(lookup("cinema novo"), None);
        // A masked-out slot is never consulted.
        let mut mask = all;
        mask[arena.intern("irlanda").unwrap() as usize] = false;
        let masked = dict.translate_arena(&arena, &mask);
        assert_eq!(masked[arena.intern("irlanda").unwrap() as usize], None);
    }

    #[test]
    fn empty_corpus_gives_empty_dictionary() {
        let corpus = Corpus::new();
        let dict = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
        assert!(dict.is_empty());
        assert_eq!(dict.translate("anything"), None);
    }
}
