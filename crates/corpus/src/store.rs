//! The [`Corpus`]: a container of articles with the indexes the matching
//! pipeline needs.
//!
//! Besides plain storage the corpus maintains:
//!
//! * a *title index* `(language, title) → article`,
//! * the set of *cross-language pairs* for any two languages,
//! * an *entity clustering* that unions articles connected (directly or
//!   transitively) by cross-language links — the clustering is what makes two
//!   link targets "equal" for the link-structure similarity and what the
//!   bilingual title dictionary is derived from.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::lang::Language;
use crate::model::{Article, ArticleId};

/// An in-memory collection of Wikipedia articles across language editions.
///
/// Articles are stored in append-only id slots; removal tombstones a slot
/// instead of shifting later ids, so every [`ArticleId`] handed out stays
/// stable across mutations. Tombstoned slots are invisible to every public
/// accessor (`len`, `get`, `articles`, pairs, clusters, fingerprints).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    articles: Vec<Article>,
    /// Sorted slot indices of tombstoned (removed) articles.
    #[serde(default)]
    removed: Vec<u32>,
    #[serde(skip)]
    title_index: HashMap<(Language, String), ArticleId>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an article, assigning and returning its [`ArticleId`].
    ///
    /// Titles must be unique within a language edition; inserting a duplicate
    /// title replaces nothing and returns the existing article's id. A title
    /// whose previous article was removed gets a fresh id (the tombstoned
    /// slot is never reused).
    pub fn insert(&mut self, mut article: Article) -> ArticleId {
        let key = (article.language.clone(), article.title.clone());
        if let Some(&existing) = self.title_index.get(&key) {
            return existing;
        }
        let id = ArticleId(self.articles.len() as u32);
        article.id = id;
        self.title_index.insert(key, id);
        self.articles.push(article);
        id
    }

    /// Replaces the live article with `article`'s `(language, title)` key in
    /// place, keeping its id. Returns the id, or `None` when no live article
    /// has that key (nothing is modified then).
    pub fn replace(&mut self, mut article: Article) -> Option<ArticleId> {
        let key = (article.language.clone(), article.title.clone());
        let id = *self.title_index.get(&key)?;
        article.id = id;
        self.articles[id.index()] = article;
        Some(id)
    }

    /// Tombstones the live article with the given `(language, title)` key.
    /// Returns its id, or `None` when no live article has that key. The id
    /// slot is retained (ids of other articles never shift); the article
    /// simply disappears from every accessor.
    pub fn remove_by_title(&mut self, language: &Language, title: &str) -> Option<ArticleId> {
        let id = self
            .title_index
            .remove(&(language.clone(), title.to_string()))?;
        if let Err(at) = self.removed.binary_search(&id.0) {
            self.removed.insert(at, id.0);
        }
        Some(id)
    }

    /// Whether an id refers to a tombstoned slot.
    pub fn is_removed(&self, id: ArticleId) -> bool {
        self.removed.binary_search(&id.0).is_ok()
    }

    /// Number of live articles.
    pub fn len(&self) -> usize {
        self.articles.len() - self.removed.len()
    }

    /// True when the corpus holds no live articles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of id slots ever allocated (live + tombstoned).
    pub fn slot_count(&self) -> usize {
        self.articles.len()
    }

    /// Looks up a live article by id (`None` for tombstoned slots).
    pub fn get(&self, id: ArticleId) -> Option<&Article> {
        if self.is_removed(id) {
            return None;
        }
        self.articles.get(id.index())
    }

    /// Looks up an article by `(language, title)`.
    pub fn get_by_title(&self, language: &Language, title: &str) -> Option<&Article> {
        self.title_index
            .get(&(language.clone(), title.to_string()))
            .and_then(|&id| self.get(id))
    }

    /// Iterates over all live articles in id order.
    pub fn articles(&self) -> impl Iterator<Item = &Article> {
        self.articles.iter().filter(move |a| !self.is_removed(a.id))
    }

    /// Iterates over the live articles of one language edition.
    pub fn articles_in<'a>(
        &'a self,
        language: &'a Language,
    ) -> impl Iterator<Item = &'a Article> + 'a {
        self.articles().filter(move |a| &a.language == language)
    }

    /// Rebuilds the title index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.title_index = self
            .articles
            .iter()
            .filter(|a| self.removed.binary_search(&a.id.0).is_err())
            .map(|a| ((a.language.clone(), a.title.clone()), a.id))
            .collect();
    }

    /// All pairs of articles `(a, b)` such that `a` is in `l1`, `b` is in
    /// `l2` and `a` has a cross-language link to `b` (or vice versa).
    pub fn cross_language_pairs(
        &self,
        l1: &Language,
        l2: &Language,
    ) -> Vec<(ArticleId, ArticleId)> {
        let mut pairs = Vec::new();
        let mut seen: HashMap<(ArticleId, ArticleId), ()> = HashMap::new();
        for article in self.articles() {
            if &article.language != l1 {
                continue;
            }
            if let Some(title) = article.cross_link_to(l2) {
                if let Some(other) = self.get_by_title(l2, title) {
                    if seen.insert((article.id, other.id), ()).is_none() {
                        pairs.push((article.id, other.id));
                    }
                }
            }
        }
        // Also honour links recorded only on the l2 side.
        for article in self.articles() {
            if &article.language != l2 {
                continue;
            }
            if let Some(title) = article.cross_link_to(l1) {
                if let Some(other) = self.get_by_title(l1, title) {
                    if seen.insert((other.id, article.id), ()).is_none() {
                        pairs.push((other.id, article.id));
                    }
                }
            }
        }
        pairs.sort();
        pairs
    }

    /// Unions articles connected by cross-language links into entity
    /// clusters and returns, for each article, its cluster representative.
    ///
    /// Two link targets are considered "the same entity" by `lsim` when they
    /// map to the same cluster.
    pub fn entity_clusters(&self) -> EntityClusters {
        let n = self.articles.len();
        let mut parent: Vec<usize> = (0..n).collect();

        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }

        for article in self.articles() {
            for (lang, title) in &article.cross_links {
                if let Some(other) = self.get_by_title(lang, title) {
                    let a = find(&mut parent, article.id.index());
                    let b = find(&mut parent, other.id.index());
                    if a != b {
                        parent[a.max(b)] = a.min(b);
                    }
                }
            }
        }
        let roots: Vec<u32> = (0..n).map(|i| find(&mut parent, i) as u32).collect();
        EntityClusters { roots }
    }

    /// Distinct entity-type labels used by articles of a language.
    pub fn entity_types_in(&self, language: &Language) -> Vec<String> {
        let mut types: Vec<String> = self
            .articles_in(language)
            .map(|a| a.entity_type.clone())
            .collect();
        types.sort();
        types.dedup();
        types
    }

    /// Articles of a language edition with a given entity-type label.
    pub fn articles_of_type<'a>(
        &'a self,
        language: &'a Language,
        entity_type: &'a str,
    ) -> impl Iterator<Item = &'a Article> + 'a {
        self.articles_in(language)
            .filter(move |a| a.entity_type == entity_type)
    }
}

/// Result of [`Corpus::entity_clusters`]: maps every article to the
/// representative of its cross-language entity cluster.
#[derive(Debug, Clone)]
pub struct EntityClusters {
    roots: Vec<u32>,
}

impl EntityClusters {
    /// The cluster representative of an article.
    pub fn cluster_of(&self, id: ArticleId) -> Option<ArticleId> {
        self.roots.get(id.index()).map(|&r| ArticleId(r))
    }

    /// Whether two articles describe the same entity.
    pub fn same_entity(&self, a: ArticleId, b: ArticleId) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of articles covered.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when no articles are covered.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttributeValue, Infobox};

    fn article(title: &str, lang: Language, ty: &str) -> Article {
        let mut ib = Infobox::new(format!("Infobox {ty}"));
        ib.push(AttributeValue::text("name", title));
        Article::new(title, lang, ty, ib)
    }

    fn linked_corpus() -> Corpus {
        let mut corpus = Corpus::new();
        let mut en = article("The Last Emperor", Language::En, "Film");
        en.add_cross_link(Language::Pt, "O Último Imperador");
        en.add_cross_link(Language::Vn, "Hoàng đế cuối cùng");
        let mut pt = article("O Último Imperador", Language::Pt, "Filme");
        pt.add_cross_link(Language::En, "The Last Emperor");
        let vn = article("Hoàng đế cuối cùng", Language::Vn, "Phim");
        corpus.insert(en);
        corpus.insert(pt);
        corpus.insert(vn);
        corpus.insert(article("Unrelated", Language::En, "Film"));
        corpus
    }

    #[test]
    fn insert_and_lookup() {
        let corpus = linked_corpus();
        assert_eq!(corpus.len(), 4);
        let a = corpus
            .get_by_title(&Language::Pt, "O Último Imperador")
            .unwrap();
        assert_eq!(a.entity_type, "Filme");
        assert!(corpus.get_by_title(&Language::Pt, "missing").is_none());
    }

    #[test]
    fn duplicate_titles_are_not_reinserted() {
        let mut corpus = linked_corpus();
        let before = corpus.len();
        let id1 = corpus.get_by_title(&Language::En, "Unrelated").unwrap().id;
        let id2 = corpus.insert(article("Unrelated", Language::En, "Film"));
        assert_eq!(id1, id2);
        assert_eq!(corpus.len(), before);
    }

    #[test]
    fn cross_language_pairs_found_in_both_directions() {
        let corpus = linked_corpus();
        let pairs = corpus.cross_language_pairs(&Language::En, &Language::Pt);
        assert_eq!(pairs.len(), 1);
        let (en, pt) = pairs[0];
        assert_eq!(corpus.get(en).unwrap().language, Language::En);
        assert_eq!(corpus.get(pt).unwrap().language, Language::Pt);

        // The Vn link is only recorded on the English side but still found.
        let pairs = corpus.cross_language_pairs(&Language::En, &Language::Vn);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn entity_clusters_union_transitively() {
        let corpus = linked_corpus();
        let clusters = corpus.entity_clusters();
        let en = corpus
            .get_by_title(&Language::En, "The Last Emperor")
            .unwrap()
            .id;
        let pt = corpus
            .get_by_title(&Language::Pt, "O Último Imperador")
            .unwrap()
            .id;
        let vn = corpus
            .get_by_title(&Language::Vn, "Hoàng đế cuối cùng")
            .unwrap()
            .id;
        let other = corpus.get_by_title(&Language::En, "Unrelated").unwrap().id;
        assert!(clusters.same_entity(en, pt));
        assert!(clusters.same_entity(pt, vn));
        assert!(!clusters.same_entity(en, other));
    }

    #[test]
    fn type_listing() {
        let corpus = linked_corpus();
        assert_eq!(corpus.entity_types_in(&Language::En), vec!["Film"]);
        assert_eq!(corpus.articles_of_type(&Language::En, "Film").count(), 2);
    }

    #[test]
    fn remove_tombstones_without_shifting_ids() {
        let mut corpus = linked_corpus();
        let en = corpus
            .get_by_title(&Language::En, "The Last Emperor")
            .unwrap()
            .id;
        let pt = corpus
            .get_by_title(&Language::Pt, "O Último Imperador")
            .unwrap()
            .id;
        let removed = corpus.remove_by_title(&Language::Pt, "O Último Imperador");
        assert_eq!(removed, Some(pt));
        assert!(corpus.is_removed(pt));
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.slot_count(), 4);
        assert!(corpus.get(pt).is_none());
        assert!(corpus
            .get_by_title(&Language::Pt, "O Último Imperador")
            .is_none());
        // Other ids are untouched and pairs no longer see the tombstone.
        assert_eq!(corpus.get(en).unwrap().title, "The Last Emperor");
        assert!(corpus
            .cross_language_pairs(&Language::En, &Language::Pt)
            .is_empty());
        assert!(!corpus.articles().any(|a| a.id == pt));
        // Removing again is a no-op.
        assert_eq!(
            corpus.remove_by_title(&Language::Pt, "O Último Imperador"),
            None
        );
        // Re-inserting the title allocates a fresh slot.
        let fresh = corpus.insert(article("O Último Imperador", Language::Pt, "Filme"));
        assert_ne!(fresh, pt);
        assert_eq!(fresh.index(), 4);
        assert_eq!(corpus.len(), 4);
    }

    #[test]
    fn replace_keeps_the_id_and_updates_content() {
        let mut corpus = linked_corpus();
        let id = corpus.get_by_title(&Language::En, "Unrelated").unwrap().id;
        let mut updated = article("Unrelated", Language::En, "Film");
        updated.infobox.push(AttributeValue::text("budget", "huge"));
        assert_eq!(corpus.replace(updated), Some(id));
        assert!(corpus.get(id).unwrap().infobox.value_of("budget").is_some());
        // Replacing a missing title touches nothing.
        assert_eq!(corpus.replace(article("Ghost", Language::En, "Film")), None);
        assert_eq!(corpus.len(), 4);
    }

    #[test]
    fn rebuild_index_skips_tombstones() {
        let mut corpus = linked_corpus();
        corpus.remove_by_title(&Language::En, "Unrelated").unwrap();
        let json = serde_json::to_string(&corpus).unwrap();
        let mut restored: Corpus = serde_json::from_str(&json).unwrap();
        restored.rebuild_index();
        assert_eq!(restored.len(), 3);
        assert!(restored.get_by_title(&Language::En, "Unrelated").is_none());
        assert!(restored
            .get_by_title(&Language::En, "The Last Emperor")
            .is_some());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut corpus = linked_corpus();
        let json = serde_json::to_string(&corpus).unwrap();
        let mut restored: Corpus = serde_json::from_str(&json).unwrap();
        assert!(restored.get_by_title(&Language::En, "Unrelated").is_none());
        restored.rebuild_index();
        assert!(restored.get_by_title(&Language::En, "Unrelated").is_some());
        // The original is untouched.
        assert!(corpus.get_by_title(&Language::En, "Unrelated").is_some());
        corpus.rebuild_index();
    }
}
