//! Synthetic multilingual corpus generator.
//!
//! The generator substitutes for the Wikipedia dumps used in the paper (see
//! the crate documentation and `DESIGN.md` for the substitution rationale).
//! For every entity type of a language pair it creates *dual-language
//! entities*: an English article and a foreign-language article describing
//! the same underlying entity, connected by cross-language links, each with
//! an infobox rendered from the same language-independent facts but with
//! language-specific attribute names, value formatting, schema drift, and
//! noise.
//!
//! The important property of the generator is that attribute presence is
//! sampled *independently per language* with probabilities calibrated so the
//! expected cross-language attribute overlap of dual infoboxes matches the
//! per-type overlap reported in Table 5 of the paper. That heterogeneity is
//! what makes the matching problem non-trivial: value vectors only partially
//! agree, LSI sees non-parallel occurrence patterns, and some concepts are
//! simply absent from one of the languages.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

use crate::catalog::{Catalog, ConceptSpec, EntityTypeSpec, ValueKind};
use crate::entities::{EntityKind, EntityPool, EntityRef};
use crate::ground_truth::GroundTruth;
use crate::lang::Language;
use crate::model::{Article, AttributeValue, Infobox, Link};
use crate::store::Corpus;
use wiki_text::normalize_label;

/// Configuration of the synthetic corpus generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// RNG seed; everything derived from the config is deterministic.
    pub seed: u64,
    /// Dual-language entities generated per type for the Portuguese-English
    /// pair.
    pub pairs_per_type_pt: usize,
    /// Dual-language entities generated per type for the Vietnamese-English
    /// pair (the paper's Vn-En dataset is roughly an order of magnitude
    /// smaller than Pt-En).
    pub pairs_per_type_vn: usize,
    /// Number of synthetic people in the entity pool.
    pub person_pool: usize,
    /// Probability that a numeric/date value is perturbed in the non-English
    /// rendition (models the running-time 160 vs 165 inconsistency).
    pub value_noise: f64,
    /// Probability that a person-valued attribute of the non-English infobox
    /// receives the value of a different person-valued attribute (models the
    /// Ryuichi Sakamoto "music by" vs "elenco original" inconsistency).
    pub attribute_misuse: f64,
    /// Coverage factor applied to English attribute presence.
    pub english_coverage: f64,
    /// Number of generated concepts appended to every entity type (see
    /// [`Catalog::scaled`]); `0` keeps the paper-faithful standard catalog.
    /// The scale tiers ([`Self::small`], [`Self::medium`], [`Self::large`])
    /// use this to grow the attribute space far beyond the paper's corpus.
    pub extra_concepts_per_type: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            pairs_per_type_pt: 90,
            pairs_per_type_vn: 45,
            person_pool: 260,
            value_noise: 0.08,
            attribute_misuse: 0.04,
            english_coverage: 0.92,
            extra_concepts_per_type: 0,
        }
    }
}

impl SyntheticConfig {
    /// A reduced configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            pairs_per_type_pt: 25,
            pairs_per_type_vn: 15,
            person_pool: 80,
            ..Self::default()
        }
    }

    /// The **small** scale tier: a few times the attribute count of
    /// [`tiny`](Self::tiny), still comfortably dense-computable. First rung
    /// of the scaling benchmark (`benches/scaling.rs`).
    pub fn small() -> Self {
        Self {
            pairs_per_type_pt: 40,
            pairs_per_type_vn: 20,
            person_pool: 120,
            extra_concepts_per_type: 60,
            ..Self::default()
        }
    }

    /// The **medium** scale tier: roughly an order of magnitude more
    /// attribute groups per schema than [`tiny`](Self::tiny). This is the
    /// tier where the candidate-pruned similarity build must demonstrably
    /// beat the dense reference pass.
    pub fn medium() -> Self {
        Self {
            pairs_per_type_pt: 60,
            pairs_per_type_vn: 25,
            person_pool: 160,
            extra_concepts_per_type: 320,
            ..Self::default()
        }
    }

    /// The **large** scale tier: on the order of 100× the attribute count
    /// of [`tiny`](Self::tiny) (thousands of attribute groups per schema,
    /// millions of attribute pairs) — the tier where dense all-pairs
    /// scoring stops being interactive.
    pub fn large() -> Self {
        Self {
            pairs_per_type_pt: 80,
            pairs_per_type_vn: 30,
            person_pool: 200,
            extra_concepts_per_type: 2400,
            ..Self::default()
        }
    }

    /// The **xlarge** scale tier: ~10× the attribute space of
    /// [`large`](Self::large) (tens of thousands of attribute groups per
    /// schema, hundreds of millions of raw attribute pairs) — the tier
    /// where even the inverted-index pruned pass thrashes and the
    /// weight-mass candidate filter (`ComputeMode::Filtered` in
    /// `wikimatch`) becomes mandatory. Concepts beyond the `large`
    /// boundary draw from the diversified long-tail kind cycle (see
    /// [`Catalog::scaled`]), so term neighbourhoods stay realistic instead
    /// of collapsing into near-duplicate cliques.
    ///
    /// The tier is deliberately *wide and shallow*: far more concepts than
    /// `large` but fewer dual entities per type. Attribute-group count `n`
    /// (the quadratic frontier this tier exists to stress) scales with the
    /// concept space, while the LSI occurrence matrix stays `n × m` with a
    /// small dual count `m` — matching real wiki long tails, where the
    /// schema vocabulary grows much faster than the per-type article
    /// population.
    pub fn xlarge() -> Self {
        Self {
            pairs_per_type_pt: 48,
            pairs_per_type_vn: 30,
            person_pool: 200,
            extra_concepts_per_type: 26_000,
            ..Self::default()
        }
    }

    /// Dual-entity count for a given foreign language.
    pub fn pairs_for(&self, other: &Language) -> usize {
        match other {
            Language::Vn => self.pairs_per_type_vn,
            _ => self.pairs_per_type_pt,
        }
    }
}

/// The named synthetic scale tiers, in ascending size order.
///
/// Every `--tiers` flag in the workspace (matchd, the bench bins,
/// matchbench corpus names) parses tier names through this enum, so adding
/// a tier here threads it through every surface at once. `Display` and
/// [`FromStr`](std::str::FromStr) round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScaleTier {
    /// [`SyntheticConfig::tiny`].
    Tiny,
    /// [`SyntheticConfig::small`].
    Small,
    /// [`SyntheticConfig::medium`].
    Medium,
    /// [`SyntheticConfig::large`].
    Large,
    /// [`SyntheticConfig::xlarge`].
    Xlarge,
}

impl ScaleTier {
    /// All tiers, ascending.
    pub const ALL: [ScaleTier; 5] = [
        ScaleTier::Tiny,
        ScaleTier::Small,
        ScaleTier::Medium,
        ScaleTier::Large,
        ScaleTier::Xlarge,
    ];

    /// The tier's canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ScaleTier::Tiny => "tiny",
            ScaleTier::Small => "small",
            ScaleTier::Medium => "medium",
            ScaleTier::Large => "large",
            ScaleTier::Xlarge => "xlarge",
        }
    }

    /// The generator configuration of this tier.
    pub fn config(&self) -> SyntheticConfig {
        match self {
            ScaleTier::Tiny => SyntheticConfig::tiny(),
            ScaleTier::Small => SyntheticConfig::small(),
            ScaleTier::Medium => SyntheticConfig::medium(),
            ScaleTier::Large => SyntheticConfig::large(),
            ScaleTier::Xlarge => SyntheticConfig::xlarge(),
        }
    }
}

impl std::fmt::Display for ScaleTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a string names no [`ScaleTier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScaleTierError(String);

impl std::fmt::Display for ParseScaleTierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scale tier {:?}; expected tiny, small, medium, large or xlarge",
            self.0
        )
    }
}

impl std::error::Error for ParseScaleTierError {}

impl std::str::FromStr for ScaleTier {
    type Err = ParseScaleTierError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScaleTier::ALL
            .iter()
            .find(|t| t.name().eq_ignore_ascii_case(s.trim()))
            .copied()
            .ok_or_else(|| ParseScaleTierError(s.to_string()))
    }
}

/// A language-independent fact an infobox may record.
#[derive(Debug, Clone)]
enum Fact {
    Date { year: i32, month: u32, day: u32 },
    Year(i32),
    Entities(Vec<EntityRef>),
    Number { value: f64, unit: &'static str },
    Money { millions: f64 },
    Alias(Vec<String>),
    FreeText,
}

/// The synthetic corpus generator.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
    catalog: Catalog,
}

impl SyntheticGenerator {
    /// Creates a generator over the standard catalog, scaled up when the
    /// configuration asks for extra concepts (see [`Catalog::scaled`]).
    pub fn new(config: SyntheticConfig) -> Self {
        Self::with_catalog(config, Catalog::scaled(config.extra_concepts_per_type))
    }

    /// Creates a generator over a custom catalog.
    pub fn with_catalog(config: SyntheticConfig, catalog: Catalog) -> Self {
        Self { config, catalog }
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The configuration in use.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Generates a corpus for the pair (`other`, English) plus its ground
    /// truth.
    pub fn generate_pair(&self, other: Language) -> (Corpus, GroundTruth) {
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ (other.code().bytes().map(u64::from).sum::<u64>() << 32),
        );
        let pool = EntityPool::standard(self.config.person_pool, &mut rng);
        let mut corpus = Corpus::new();
        let mut ground_truth = GroundTruth::new();
        let mut created_entities: HashSet<EntityRef> = HashSet::new();

        let pairs = self.config.pairs_for(&other);
        for ty in self.catalog.types_for(&other) {
            self.generate_type(
                ty,
                &other,
                pairs,
                &pool,
                &mut rng,
                &mut corpus,
                &mut ground_truth,
                &mut created_entities,
            );
        }
        (corpus, ground_truth)
    }

    /// Generates the dual-language entities of one type.
    #[allow(clippy::too_many_arguments)]
    fn generate_type(
        &self,
        ty: &EntityTypeSpec,
        other: &Language,
        pairs: usize,
        pool: &EntityPool,
        rng: &mut StdRng,
        corpus: &mut Corpus,
        ground_truth: &mut GroundTruth,
        created_entities: &mut HashSet<EntityRef>,
    ) {
        let target_overlap = ty.target_overlap(other).unwrap_or(0.5);
        // Schema drift is template-level, not per-infobox: a concept either
        // belongs to the foreign language's infobox template (and is then
        // recorded about as consistently as in English) or it is only used
        // by a few editors. The set of template concepts is chosen so the
        // expected cross-language attribute overlap matches Table 5.
        let template = select_template_concepts(
            &ty.concepts,
            other,
            self.config.english_coverage,
            MARGINAL_COVERAGE,
            target_overlap,
        );
        let coverage_for = |concept: &ConceptSpec| -> f64 {
            if template.contains(&concept.id) {
                self.config.english_coverage
            } else {
                MARGINAL_COVERAGE
            }
        };

        for i in 0..pairs {
            // 1. Draw the language-independent facts for this entity, and
            //    decide which concepts are *notable* for it. Notability is a
            //    property of the entity, not of a language edition: if a
            //    film's budget is documented at all, both editions are
            //    likely to mention it. This is what gives cross-language
            //    synonyms correlated occurrence patterns over the dual
            //    infoboxes — the signal LSI exploits.
            let facts: HashMap<&str, Fact> = ty
                .concepts
                .iter()
                .map(|concept| (concept.id, self.draw_fact(concept, pool, rng)))
                .collect();
            let notable: HashMap<&str, bool> = ty
                .concepts
                .iter()
                .map(|concept| (concept.id, rng.gen_bool(concept.commonness)))
                .collect();

            // 2. Titles per language.
            let title_en = make_title(ty, &Language::En, i, pool, rng);
            let title_other = make_title(ty, other, i, pool, rng);

            // 3. Render one infobox per language.
            let mut infobox_en = Infobox::new(format!("Infobox {}", ty.label_en));
            let mut infobox_other = Infobox::new(format!(
                "Infobox {}",
                ty.label(other).unwrap_or(ty.label_en)
            ));

            for concept in &ty.concepts {
                let fact = &facts[concept.id];
                for (language, coverage, infobox) in [
                    (&Language::En, self.config.english_coverage, &mut infobox_en),
                    (other, coverage_for(concept), &mut infobox_other),
                ] {
                    let names = concept.names(language);
                    if names.is_empty() || !notable[concept.id] {
                        continue;
                    }
                    // Given that the concept is notable for this entity,
                    // each edition records it with its coverage probability.
                    if !rng.gen_bool(coverage.clamp(0.0, 1.0)) {
                        continue;
                    }
                    let surface = pick_surface(names, rng);
                    let attribute = self.render_attribute(
                        surface,
                        concept,
                        fact,
                        language,
                        other,
                        pool,
                        rng,
                        corpus,
                        created_entities,
                    );
                    infobox.push(attribute);
                    ground_truth.add_sense(
                        ty.id,
                        language.clone(),
                        &normalize_label(surface),
                        concept.id,
                    );
                }
            }

            // Guarantee a minimal schema so no infobox is empty.
            for (language, infobox) in [
                (&Language::En, &mut infobox_en),
                (other, &mut infobox_other),
            ] {
                if infobox.len() < 2 {
                    for concept in ty
                        .concepts
                        .iter()
                        .filter(|c| !c.names(language).is_empty())
                        .take(3)
                    {
                        let surface = concept.names(language)[0];
                        if infobox.value_of(surface).is_some() {
                            continue;
                        }
                        let attribute = self.render_attribute(
                            surface,
                            concept,
                            &facts[concept.id],
                            language,
                            other,
                            pool,
                            rng,
                            corpus,
                            created_entities,
                        );
                        infobox.push(attribute);
                        ground_truth.add_sense(
                            ty.id,
                            language.clone(),
                            &normalize_label(surface),
                            concept.id,
                        );
                    }
                }
            }

            // 4. Attribute-misuse noise on the foreign infobox.
            if rng.gen_bool(self.config.attribute_misuse) {
                swap_person_values(&mut infobox_other, rng);
            }

            // 5. Insert the articles with mutual cross-language links.
            let label_en = ty.label_en.to_string();
            let label_other = ty.label(other).unwrap_or(ty.label_en).to_string();
            let mut article_en = Article::new(&title_en, Language::En, label_en, infobox_en);
            article_en.add_cross_link(other.clone(), title_other.clone());
            let mut article_other =
                Article::new(&title_other, other.clone(), label_other, infobox_other);
            article_other.add_cross_link(Language::En, title_en.clone());
            corpus.insert(article_en);
            corpus.insert(article_other);
        }
    }

    /// Draws a language-independent fact for a concept.
    fn draw_fact(&self, concept: &ConceptSpec, pool: &EntityPool, rng: &mut StdRng) -> Fact {
        match concept.kind {
            ValueKind::Date => Fact::Date {
                year: rng.gen_range(1930..=2011),
                month: rng.gen_range(1..=12),
                day: rng.gen_range(1..=28),
            },
            ValueKind::Year => Fact::Year(rng.gen_range(1930..=2011)),
            ValueKind::Entity(kind) => Fact::Entities(vec![pool.sample(kind, rng)]),
            ValueKind::EntityList { kind, max } => {
                let count = rng.gen_range(1..=max.max(1));
                Fact::Entities(pool.sample_distinct(kind, count, rng))
            }
            ValueKind::Number { lo, hi, unit } => Fact::Number {
                value: rng.gen_range(lo..=hi).round(),
                unit,
            },
            ValueKind::Money {
                lo_millions,
                hi_millions,
            } => Fact::Money {
                millions: rng.gen_range(lo_millions..=hi_millions).round(),
            },
            ValueKind::Alias => {
                let count = rng.gen_range(1..=2);
                let aliases = (0..count)
                    .map(|_| {
                        format!(
                            "{} {}",
                            ALIAS_WORDS[rng.gen_range(0..ALIAS_WORDS.len())],
                            rng.gen_range(1..=999)
                        )
                    })
                    .collect();
                Fact::Alias(aliases)
            }
            ValueKind::FreeText => Fact::FreeText,
        }
    }

    /// Renders one attribute-value pair for a language, creating referenced
    /// entity articles (with cross-language links) on demand.
    #[allow(clippy::too_many_arguments)]
    fn render_attribute(
        &self,
        surface: &str,
        concept: &ConceptSpec,
        fact: &Fact,
        language: &Language,
        other: &Language,
        pool: &EntityPool,
        rng: &mut StdRng,
        corpus: &mut Corpus,
        created_entities: &mut HashSet<EntityRef>,
    ) -> AttributeValue {
        let noisy = language != &Language::En && rng.gen_bool(self.config.value_noise);
        match fact {
            Fact::Date { year, month, day } => {
                let day = if noisy {
                    (*day + rng.gen_range(1u32..=3)).min(28)
                } else {
                    *day
                };
                AttributeValue::text(surface, format_date(language, *year, *month, day))
            }
            Fact::Year(year) => {
                let year = if noisy { year + 1 } else { *year };
                AttributeValue::text(surface, year.to_string())
            }
            Fact::Entities(refs) => {
                let mut parts = Vec::new();
                let mut links = Vec::new();
                for &r in refs {
                    ensure_entity_articles(r, pool, corpus, other, created_entities);
                    let title = pool.get(r).title(language).to_string();
                    links.push(Link::plain(title.clone()));
                    parts.push(title);
                }
                AttributeValue::linked(surface, parts.join(", "), links)
            }
            Fact::Number { value, unit } => {
                let value = if noisy {
                    (value * rng.gen_range(0.97..=1.06)).round()
                } else {
                    *value
                };
                AttributeValue::text(surface, format_number(language, value, unit))
            }
            Fact::Money { millions } => {
                let millions = if noisy {
                    (millions * rng.gen_range(0.95..=1.05)).round()
                } else {
                    *millions
                };
                AttributeValue::text(surface, format_money(language, millions))
            }
            Fact::Alias(aliases) => AttributeValue::text(surface, aliases.join(", ")),
            Fact::FreeText => {
                let words = free_text_words(language);
                let count = rng.gen_range(1..=3);
                let text: Vec<&str> = (0..count)
                    .map(|_| words[rng.gen_range(0..words.len())])
                    .collect();
                let _ = concept; // concept only used for documentation purposes here
                AttributeValue::text(surface, text.join(", "))
            }
        }
    }
}

/// Creates (once) the articles for a referenced entity in English and the
/// foreign language, linked by cross-language links. These articles are what
/// the bilingual title dictionary and `lsim` are derived from.
fn ensure_entity_articles(
    r: EntityRef,
    pool: &EntityPool,
    corpus: &mut Corpus,
    other: &Language,
    created: &mut HashSet<EntityRef>,
) {
    if !created.insert(r) {
        return;
    }
    let entity = pool.get(r);
    let type_label = format!("{:?}", entity.kind);
    let title_en = entity.title(&Language::En).to_string();
    let title_other = entity.title(other).to_string();

    let mut infobox_en = Infobox::new(format!("Infobox {type_label}"));
    infobox_en.push(AttributeValue::text("name", title_en.clone()));
    let mut article_en = Article::new(&title_en, Language::En, &type_label, infobox_en);
    article_en.add_cross_link(other.clone(), title_other.clone());

    let mut infobox_other = Infobox::new(format!("Infobox {type_label}"));
    infobox_other.push(AttributeValue::text("nome", title_other.clone()));
    let mut article_other = Article::new(&title_other, other.clone(), &type_label, infobox_other);
    article_other.add_cross_link(Language::En, title_en);

    corpus.insert(article_en);
    corpus.insert(article_other);
}

/// Picks a surface name: the primary one with probability 0.7, otherwise one
/// of the synonyms uniformly.
fn pick_surface<'a>(names: &'a [&'a str], rng: &mut StdRng) -> &'a str {
    if names.len() == 1 || rng.gen_bool(0.7) {
        names[0]
    } else {
        names[rng.gen_range(1..names.len())]
    }
}

/// Swaps the values of two person-valued (link-bearing) attributes, modelling
/// editor mistakes / loose template usage.
fn swap_person_values(infobox: &mut Infobox, rng: &mut StdRng) {
    let linked: Vec<usize> = infobox
        .attributes
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.links.is_empty())
        .map(|(i, _)| i)
        .collect();
    if linked.len() < 2 {
        return;
    }
    let a = linked[rng.gen_range(0..linked.len())];
    let mut b = linked[rng.gen_range(0..linked.len())];
    if a == b {
        b = linked[(linked.iter().position(|&x| x == a).unwrap() + 1) % linked.len()];
    }
    if a == b {
        return;
    }
    let value_a = infobox.attributes[a].value.clone();
    let links_a = infobox.attributes[a].links.clone();
    infobox.attributes[a].value = infobox.attributes[b].value.clone();
    infobox.attributes[a].links = infobox.attributes[b].links.clone();
    infobox.attributes[b].value = value_a;
    infobox.attributes[b].links = links_a;
}

/// Coverage of a concept that is *not* part of the foreign language's
/// infobox template: only a few editors add it by hand.
const MARGINAL_COVERAGE: f64 = 0.12;

/// Selects which concepts belong to the foreign language's infobox template
/// so that the expected cross-language attribute overlap matches `target`.
///
/// Concepts are considered in decreasing order of commonness (widely used
/// concepts are the ones templates share across languages); the prefix size
/// whose predicted overlap is closest to the target is chosen. Concepts with
/// no surface name in the foreign language can never be included.
fn select_template_concepts<'a>(
    concepts: &'a [ConceptSpec],
    other: &Language,
    english_coverage: f64,
    marginal_coverage: f64,
    target: f64,
) -> std::collections::HashSet<&'a str> {
    let mut order: Vec<&ConceptSpec> = concepts
        .iter()
        .filter(|c| !c.names(other).is_empty())
        .collect();
    order.sort_by(|a, b| {
        b.commonness
            .partial_cmp(&a.commonness)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(b.id))
    });

    // Memoised sort positions: scaled catalogs have thousands of concepts
    // per type, and a linear `position` scan inside the prediction loop
    // would make template selection cubic in the concept count. The lookup
    // result is identical, so predicted overlaps (and thus the selected
    // template) are unchanged for every configuration.
    let position_of: HashMap<&str, usize> =
        order.iter().enumerate().map(|(p, c)| (c.id, p)).collect();
    let predicted = |included: usize| -> f64 {
        let mut intersection = 0.0;
        let mut union = 0.0;
        for concept in concepts {
            let ce = if concept.en.is_empty() {
                0.0
            } else {
                english_coverage
            };
            let cl = match position_of.get(concept.id) {
                None => 0.0,
                Some(&p) if p < included => english_coverage,
                Some(_) => marginal_coverage,
            };
            let c = concept.commonness;
            intersection += c * ce * cl;
            union += c * (ce + cl - ce * cl);
        }
        if union == 0.0 {
            0.0
        } else {
            intersection / union
        }
    };

    let mut best = (0usize, f64::MAX);
    for included in 0..=order.len() {
        let error = (predicted(included) - target).abs();
        if error < best.1 {
            best = (included, error);
        }
    }
    order.iter().take(best.0).map(|c| c.id).collect()
}

/// English/Portuguese month names used when rendering dates.
const MONTHS_EN: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];
const MONTHS_PT: [&str; 12] = [
    "Janeiro",
    "Fevereiro",
    "Março",
    "Abril",
    "Maio",
    "Junho",
    "Julho",
    "Agosto",
    "Setembro",
    "Outubro",
    "Novembro",
    "Dezembro",
];

fn format_date(language: &Language, year: i32, month: u32, day: u32) -> String {
    match language {
        Language::En => format!("{} {}, {}", MONTHS_EN[(month - 1) as usize], day, year),
        Language::Pt => format!("{} de {} de {}", day, MONTHS_PT[(month - 1) as usize], year),
        Language::Vn => format!("ngày {} tháng {} năm {}", day, month, year),
        Language::Other(_) => format!("{year}-{month:02}-{day:02}"),
    }
}

fn format_number(language: &Language, value: f64, unit: &str) -> String {
    let n = value as i64;
    let unit_str = match (language, unit) {
        (_, "") => "",
        (Language::En, "minutes") => " minutes",
        (Language::Pt, "minutes") => " minutos",
        (Language::Vn, "minutes") => " phút",
        (Language::En, "episodes") => " episodes",
        (Language::Pt, "episodes") => " episódios",
        (Language::Vn, "episodes") => " tập",
        (Language::En, "pages") => " pages",
        (Language::Pt, "pages") => " páginas",
        (Language::Vn, "pages") => " trang",
        _ => "",
    };
    format!("{n}{unit_str}")
}

fn format_money(language: &Language, millions: f64) -> String {
    let m = millions as i64;
    match language {
        Language::En => {
            if m >= 1000 {
                format!("${} billion", m / 1000)
            } else {
                format!("${m} million")
            }
        }
        Language::Pt => {
            if m >= 1000 {
                format!("{} bilhões", m / 1000)
            } else {
                format!("{m} milhões")
            }
        }
        Language::Vn => format!("{m} triệu USD"),
        Language::Other(_) => format!("{m}000000"),
    }
}

/// Title word tables: (English, Portuguese, Vietnamese).
const TITLE_NOUNS: &[(&str, &str, &str)] = &[
    ("Emperor", "Imperador", "Hoàng đế"),
    ("Mountain", "Montanha", "Ngọn núi"),
    ("River", "Rio", "Dòng sông"),
    ("Night", "Noite", "Đêm"),
    ("Dream", "Sonho", "Giấc mơ"),
    ("Journey", "Jornada", "Hành trình"),
    ("Secret", "Segredo", "Bí mật"),
    ("Garden", "Jardim", "Khu vườn"),
    ("Island", "Ilha", "Hòn đảo"),
    ("Winter", "Inverno", "Mùa đông"),
    ("Shadow", "Sombra", "Bóng tối"),
    ("Voyage", "Viagem", "Chuyến đi"),
    ("Kingdom", "Reino", "Vương quốc"),
    ("Memory", "Memória", "Ký ức"),
];
const TITLE_ADJS: &[(&str, &str, &str)] = &[
    ("Last", "Último", "Cuối cùng"),
    ("Silent", "Silencioso", "Im lặng"),
    ("Hidden", "Escondido", "Ẩn giấu"),
    ("Lost", "Perdido", "Thất lạc"),
    ("Golden", "Dourado", "Vàng"),
    ("Dark", "Escuro", "Tăm tối"),
    ("Eternal", "Eterno", "Vĩnh cửu"),
    ("Broken", "Quebrado", "Tan vỡ"),
    ("Distant", "Distante", "Xa xôi"),
    ("Forgotten", "Esquecido", "Bị lãng quên"),
];

/// Words used for language-specific free-text values.
const FREE_TEXT_EN: &[&str] = &[
    "independent",
    "animated series",
    "weekly",
    "hardcover",
    "guitar",
    "piano",
    "drums",
    "american",
    "limited series",
    "streaming",
    "male",
    "female",
    "human",
    "publishing",
    "entertainment",
    "broadcasting",
    "16:9 HDTV",
    "monthly",
];
const FREE_TEXT_PT: &[&str] = &[
    "independente",
    "série animada",
    "semanal",
    "capa dura",
    "violão",
    "piano",
    "bateria",
    "americano",
    "série limitada",
    "transmissão",
    "masculino",
    "feminino",
    "humano",
    "editorial",
    "entretenimento",
    "radiodifusão",
    "16:9 HDTV",
    "mensal",
];
const FREE_TEXT_VN: &[&str] = &[
    "độc lập",
    "phim hoạt hình",
    "hàng tuần",
    "bìa cứng",
    "ghi ta",
    "dương cầm",
    "trống",
    "người Mỹ",
    "loạt phim ngắn",
    "phát trực tuyến",
    "nam",
    "nữ",
    "con người",
    "xuất bản",
    "giải trí",
    "phát thanh truyền hình",
    "16:9 HDTV",
    "hàng tháng",
];
/// Alias words shared across languages (proper-noun-like strings).
const ALIAS_WORDS: &[&str] = &[
    "Falcon", "Nova", "Orion", "Vega", "Lyra", "Atlas", "Zephyr", "Titan", "Aurora", "Comet",
    "Nebula", "Quasar",
];

fn free_text_words(language: &Language) -> &'static [&'static str] {
    match language {
        Language::En => FREE_TEXT_EN,
        Language::Pt => FREE_TEXT_PT,
        Language::Vn => FREE_TEXT_VN,
        Language::Other(_) => FREE_TEXT_EN,
    }
}

/// Builds a unique per-language title for the `i`-th entity of a type.
fn make_title(
    ty: &EntityTypeSpec,
    language: &Language,
    i: usize,
    pool: &EntityPool,
    rng: &mut StdRng,
) -> String {
    // Person-like types take a person name (identical across languages, as on
    // Wikipedia); work-like types take a translated "The <Adj> <Noun>" title.
    let person_like = matches!(ty.id, "actor" | "artist" | "writer" | "adult_actor");
    if person_like {
        let people = pool.of_kind(EntityKind::Person);
        let r = people[i % people.len()];
        let name = pool.get(r).title(&Language::En);
        format!("{name} ({} {i})", ty.id)
    } else {
        let noun = TITLE_NOUNS[rng.gen_range(0..TITLE_NOUNS.len())];
        let adj = TITLE_ADJS[rng.gen_range(0..TITLE_ADJS.len())];
        match language {
            Language::En => format!("The {} {} ({i})", adj.0, noun.0),
            Language::Pt => format!("O {} {} ({i})", noun.1, adj.1),
            Language::Vn => format!("{} {} ({i})", noun.2, adj.2),
            Language::Other(_) => format!("{} {} ({i})", adj.0, noun.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pair(other: Language) -> (Corpus, GroundTruth) {
        let generator = SyntheticGenerator::new(SyntheticConfig::tiny());
        generator.generate_pair(other)
    }

    #[test]
    fn generates_both_language_editions_with_cross_links() {
        let (corpus, _gt) = tiny_pair(Language::Pt);
        assert!(corpus.articles_in(&Language::En).count() > 0);
        assert!(corpus.articles_in(&Language::Pt).count() > 0);
        let pairs = corpus.cross_language_pairs(&Language::En, &Language::Pt);
        // At least the dual entities (14 types × 25 pairs) plus referenced
        // entities are linked.
        assert!(pairs.len() >= 14 * 25, "only {} pairs", pairs.len());
    }

    #[test]
    fn determinism_per_seed() {
        let (c1, g1) = tiny_pair(Language::Pt);
        let (c2, g2) = tiny_pair(Language::Pt);
        assert_eq!(c1.len(), c2.len());
        assert_eq!(
            g1.total_cross_pairs(&Language::Pt, &Language::En),
            g2.total_cross_pairs(&Language::Pt, &Language::En)
        );
        // A different seed yields a different corpus.
        let generator = SyntheticGenerator::new(SyntheticConfig {
            seed: 7,
            ..SyntheticConfig::tiny()
        });
        let (c3, _) = generator.generate_pair(Language::Pt);
        assert_ne!(
            c1.articles().map(|a| a.title.clone()).collect::<Vec<_>>(),
            c3.articles().map(|a| a.title.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn vietnamese_pair_covers_four_types() {
        let (corpus, gt) = tiny_pair(Language::Vn);
        let types: Vec<&str> = gt.type_ids().collect();
        assert_eq!(types.len(), 4);
        // Vietnamese film infoboxes use Vietnamese labels.
        let phim = corpus.articles_of_type(&Language::Vn, "Phim").count();
        assert!(phim > 0);
    }

    #[test]
    fn ground_truth_contains_known_alignments() {
        let (_corpus, gt) = tiny_pair(Language::Pt);
        let film = gt.for_type("film").unwrap();
        assert!(film.is_correct(&Language::En, "directed by", &Language::Pt, "direção"));
        assert!(film.is_correct(&Language::En, "starring", &Language::Pt, "elenco original"));
        assert!(!film.is_correct(&Language::En, "starring", &Language::Pt, "direção"));
        let actor = gt.for_type("actor").unwrap();
        let died = actor.correspondents(&Language::En, "died", &Language::Pt);
        assert!(died.contains(&"falecimento".to_string()) || died.contains(&"morte".to_string()));
    }

    #[test]
    fn infoboxes_are_never_empty_and_have_links() {
        let (corpus, _) = tiny_pair(Language::Pt);
        let mut some_links = false;
        for article in corpus.articles() {
            assert!(
                !article.infobox.is_empty(),
                "empty infobox for {}",
                article.title
            );
            if article
                .infobox
                .attributes
                .iter()
                .any(|a| !a.links.is_empty())
            {
                some_links = true;
            }
        }
        assert!(some_links, "no attribute values carry links");
    }

    #[test]
    fn referenced_entities_have_cross_linked_articles() {
        let (corpus, _) = tiny_pair(Language::Pt);
        // Find a film article with a linked value and check the link target
        // exists in the corpus and is cross-linked to the other language.
        let film = corpus
            .articles_of_type(&Language::En, "Film")
            .find(|a| {
                a.infobox
                    .attributes
                    .iter()
                    .any(|attr| !attr.links.is_empty())
            })
            .expect("a film with links");
        let link = film
            .infobox
            .attributes
            .iter()
            .flat_map(|a| a.links.iter())
            .next()
            .unwrap();
        let landing = corpus
            .get_by_title(&Language::En, &link.target)
            .expect("link target exists");
        assert!(landing.cross_link_to(&Language::Pt).is_some());
    }

    #[test]
    fn measured_overlap_tracks_target_ordering() {
        // film (36 %) should be less homogeneous than writer (63 %) in Pt-En.
        let (corpus, gt) = tiny_pair(Language::Pt);
        let overlap = |type_label_en: &str, type_label_pt: &str, type_id: &str| -> f64 {
            let truth = gt.for_type(type_id).unwrap();
            let mut inter = 0.0;
            let mut union = 0.0;
            for (en_article, pt_article) in corpus
                .cross_language_pairs(&Language::En, &Language::Pt)
                .iter()
                .filter_map(|&(e, p)| Some((corpus.get(e)?, corpus.get(p)?)))
            {
                if en_article.entity_type != type_label_en
                    || pt_article.entity_type != type_label_pt
                {
                    continue;
                }
                let se = en_article.infobox.schema();
                let sp = pt_article.infobox.schema();
                let shared = se
                    .iter()
                    .filter(|a| {
                        sp.iter()
                            .any(|b| truth.is_correct(&Language::En, a, &Language::Pt, b))
                    })
                    .count();
                inter += shared as f64;
                union += (se.len() + sp.len() - shared) as f64;
            }
            if union == 0.0 {
                0.0
            } else {
                inter / union
            }
        };
        let film_overlap = overlap("Film", "Filme", "film");
        let writer_overlap = overlap("Writer", "Escritor", "writer");
        assert!(
            writer_overlap > film_overlap,
            "writer ({writer_overlap:.2}) should overlap more than film ({film_overlap:.2})"
        );
    }

    #[test]
    fn scale_tiers_grow_the_attribute_space() {
        // Distinct (language, normalised label) attribute groups of the
        // film type — the quantity the dual-language schema is built over.
        let film_attr_groups = |config: &SyntheticConfig| -> usize {
            let (corpus, _) = SyntheticGenerator::new(*config).generate_pair(Language::Pt);
            let mut labels: HashSet<(Language, String)> = HashSet::new();
            for article in corpus
                .articles_of_type(&Language::En, "Film")
                .chain(corpus.articles_of_type(&Language::Pt, "Filme"))
            {
                for attr in &article.infobox.attributes {
                    labels.insert((article.language.clone(), attr.normalized_name()));
                }
            }
            labels.len()
        };
        let tiny = film_attr_groups(&SyntheticConfig::tiny());
        let small = film_attr_groups(&SyntheticConfig::small());
        let medium = film_attr_groups(&SyntheticConfig::medium());
        assert!(
            small >= 2 * tiny,
            "small tier should at least double tiny ({tiny} -> {small})"
        );
        assert!(
            medium >= 8 * tiny,
            "medium tier should be ~an order of magnitude over tiny ({tiny} -> {medium})"
        );
        // The large tier targets ~100× tiny; checked structurally via the
        // catalog (generation itself is exercised by the scaling bench —
        // too slow for a debug-mode unit test).
        let large_concepts = Catalog::scaled(SyntheticConfig::large().extra_concepts_per_type)
            .entity_type("film")
            .unwrap()
            .concepts
            .len();
        let tiny_concepts = Catalog::standard()
            .entity_type("film")
            .unwrap()
            .concepts
            .len();
        assert!(large_concepts >= 100 * tiny_concepts);
    }

    #[test]
    fn scaled_concepts_have_ground_truth_and_deterministic_names() {
        let config = SyntheticConfig {
            extra_concepts_per_type: 10,
            ..SyntheticConfig::tiny()
        };
        let generator = SyntheticGenerator::new(config);
        let film = generator.catalog().entity_type("film").unwrap();
        assert_eq!(
            film.concepts.len(),
            Catalog::standard()
                .entity_type("film")
                .unwrap()
                .concepts
                .len()
                + 10
        );
        // Generated names are stable across constructions (interned).
        let again = SyntheticGenerator::new(config);
        let c1 = film.concept("x_film_3").unwrap();
        let c2 = again
            .catalog()
            .entity_type("film")
            .unwrap()
            .concept("x_film_3")
            .unwrap();
        assert_eq!(c1.en, c2.en);
        assert_eq!(c1.pt, c2.pt);
        // The cross-language correspondence of a generated concept lands in
        // the ground truth once both editions record it.
        let (_corpus, gt) = generator.generate_pair(Language::Pt);
        let truth = gt.for_type("film").unwrap();
        let matched = (0..10).any(|i| {
            let suffix = crate::catalog::letter_suffix(i);
            truth.is_correct(
                &Language::En,
                &format!("metric {suffix}"),
                &Language::Pt,
                &format!("métrica {suffix}"),
            )
        });
        assert!(matched, "no generated concept produced a gold pair");
    }

    #[test]
    fn scale_tier_names_round_trip_display_and_from_str() {
        for tier in ScaleTier::ALL {
            let name = tier.to_string();
            assert_eq!(name.parse::<ScaleTier>().unwrap(), tier, "{name}");
            // Case-insensitive and whitespace-tolerant, like the CLI flags.
            assert_eq!(
                name.to_uppercase().parse::<ScaleTier>().unwrap(),
                tier,
                "{name}"
            );
            assert_eq!(format!(" {name} ").parse::<ScaleTier>().unwrap(), tier);
        }
        let err = "galactic".parse::<ScaleTier>().unwrap_err();
        assert!(err.to_string().contains("galactic"));
        assert!(err.to_string().contains("xlarge"));
    }

    #[test]
    fn xlarge_tier_grows_the_catalog_and_keeps_lower_tiers_unchanged() {
        // xlarge reaches deep into the long-tail concept region...
        let xlarge = ScaleTier::Xlarge.config();
        assert!(xlarge.extra_concepts_per_type > SyntheticConfig::large().extra_concepts_per_type);
        let film = Catalog::scaled(xlarge.extra_concepts_per_type)
            .entity_type("film")
            .unwrap()
            .concepts
            .len();
        assert!(film > 18_000);
        // ...while every concept the existing tiers see is byte-identical
        // to what the pre-xlarge generator produced (the long tail starts
        // strictly above the large tier's 2400 extra concepts).
        let large_extra = SyntheticConfig::large().extra_concepts_per_type;
        let scaled = Catalog::scaled(large_extra + 8);
        let ty = scaled.entity_type("film").unwrap();
        // (large_extra - 1) % 5 == 4 → the legacy cycle's FreeText slot.
        let legacy = ty.concept(&format!("x_film_{}", large_extra - 1)).unwrap();
        assert!(matches!(legacy.kind, ValueKind::FreeText));
        // The tail avoids the small Alias/FreeText pools entirely and
        // slides its number windows so neighbourhoods stay sparse.
        for i in large_extra..large_extra + 8 {
            let tail = ty.concept(&format!("x_film_{i}")).unwrap();
            assert!(
                matches!(
                    tail.kind,
                    ValueKind::Number { .. } | ValueKind::Date | ValueKind::Year
                ),
                "long-tail concept {i} has kind {:?}",
                tail.kind
            );
            assert!(tail.commonness <= 0.08 + 1e-12);
        }
    }

    #[test]
    fn template_selection_is_monotone_in_the_target() {
        let catalog = Catalog::standard();
        let film = catalog.entity_type("film").unwrap();
        let low = select_template_concepts(&film.concepts, &Language::Pt, 0.92, 0.12, 0.2);
        let high = select_template_concepts(&film.concepts, &Language::Pt, 0.92, 0.12, 0.8);
        assert!(low.len() < high.len());
        // Concepts with no Vietnamese name are never selected for Vn.
        let vn = select_template_concepts(&film.concepts, &Language::Vn, 0.92, 0.12, 0.9);
        assert!(!vn.contains("editing_by"));
    }

    #[test]
    fn date_and_money_formatting_per_language() {
        assert_eq!(
            format_date(&Language::En, 1950, 12, 18),
            "December 18, 1950"
        );
        assert_eq!(
            format_date(&Language::Pt, 1950, 12, 18),
            "18 de Dezembro de 1950"
        );
        assert_eq!(
            format_date(&Language::Vn, 1950, 12, 18),
            "ngày 18 tháng 12 năm 1950"
        );
        assert_eq!(format_money(&Language::En, 23.0), "$23 million");
        assert_eq!(format_money(&Language::Pt, 1500.0), "1 bilhões");
        assert_eq!(
            format_number(&Language::Pt, 165.0, "minutes"),
            "165 minutos"
        );
    }
}
