//! Core data model: articles, infoboxes, attribute-value pairs and links.
//!
//! This mirrors the problem definition in Section 2 of the paper. An article
//! `A` in language `L` describes an entity `E` and carries a *title*, an
//! *infobox* (a structured record of attribute-value pairs) and
//! *cross-language links* to the articles describing `E` in other language
//! editions. Attribute values may embed hyperlinks to other articles of the
//! same language; those are the raw material of the link-structure similarity
//! (`lsim`).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::lang::Language;
use wiki_text::normalize_label;

/// Identifier of an article inside a [`Corpus`](crate::store::Corpus).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ArticleId(pub u32);

impl ArticleId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArticleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A hyperlink embedded in an attribute value.
///
/// `target` is the title of the landing article *in the same language* as the
/// article that contains the link; `anchor` is the anchor text shown to the
/// reader (they may differ: `[[United States|USA]]`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Title of the landing article (same language edition).
    pub target: String,
    /// Anchor text.
    pub anchor: String,
}

impl Link {
    /// A link whose anchor equals its target title.
    pub fn plain<S: Into<String>>(target: S) -> Self {
        let target = target.into();
        Link {
            anchor: target.clone(),
            target,
        }
    }

    /// A link with distinct anchor text.
    pub fn with_anchor<S: Into<String>, T: Into<String>>(target: S, anchor: T) -> Self {
        Link {
            target: target.into(),
            anchor: anchor.into(),
        }
    }
}

/// One attribute-value pair of an infobox.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeValue {
    /// Attribute name as written in the infobox (template parameter name or
    /// rendered label).
    pub name: String,
    /// Raw textual value (wikitext markup already stripped).
    pub value: String,
    /// Hyperlinks embedded in the value.
    pub links: Vec<Link>,
}

impl AttributeValue {
    /// Creates a link-free attribute-value pair.
    pub fn text<S: Into<String>, T: Into<String>>(name: S, value: T) -> Self {
        AttributeValue {
            name: name.into(),
            value: value.into(),
            links: Vec::new(),
        }
    }

    /// Creates an attribute-value pair with hyperlinks.
    pub fn linked<S: Into<String>, T: Into<String>>(name: S, value: T, links: Vec<Link>) -> Self {
        AttributeValue {
            name: name.into(),
            value: value.into(),
            links,
        }
    }

    /// The normalised attribute label used by the matching pipeline.
    pub fn normalized_name(&self) -> String {
        normalize_label(&self.name)
    }
}

/// A structured record summarising the entity described by an article.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Infobox {
    /// Infobox template name (e.g. `Infobox film`).
    pub template: String,
    /// Attribute-value pairs in article order.
    pub attributes: Vec<AttributeValue>,
}

impl Infobox {
    /// Creates an empty infobox for a template.
    pub fn new<S: Into<String>>(template: S) -> Self {
        Infobox {
            template: template.into(),
            attributes: Vec::new(),
        }
    }

    /// Adds an attribute-value pair.
    pub fn push(&mut self, attribute: AttributeValue) {
        self.attributes.push(attribute);
    }

    /// Number of attribute-value pairs.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the infobox carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The *schema* of the infobox: its set of normalised attribute names
    /// (duplicates removed, order of first appearance preserved).
    pub fn schema(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for attr in &self.attributes {
            let name = attr.normalized_name();
            if !name.is_empty() && !seen.contains(&name) {
                seen.push(name);
            }
        }
        seen
    }

    /// Looks up the first value recorded for a (normalised) attribute name.
    pub fn value_of(&self, name: &str) -> Option<&AttributeValue> {
        let wanted = normalize_label(name);
        self.attributes
            .iter()
            .find(|a| a.normalized_name() == wanted)
    }

    /// Iterates over all values recorded for a (normalised) attribute name.
    pub fn values_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a AttributeValue> + 'a {
        let wanted = normalize_label(name);
        self.attributes
            .iter()
            .filter(move |a| a.normalized_name() == wanted)
    }
}

/// A Wikipedia article restricted to the components the paper uses: title,
/// infobox, entity type and cross-language links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Article {
    /// Identifier within the corpus.
    pub id: ArticleId,
    /// Article title (unique per language edition).
    pub title: String,
    /// Language edition the article belongs to.
    pub language: Language,
    /// Entity-type label *in the article's own language* (e.g. "Filme" for a
    /// Portuguese film article). Derived from the infobox template or the
    /// article's categories.
    pub entity_type: String,
    /// The article's infobox.
    pub infobox: Infobox,
    /// Cross-language links: language and title of the article describing the
    /// same entity in another edition.
    pub cross_links: Vec<(Language, String)>,
}

impl Article {
    /// Creates an article; the `id` is assigned by the corpus when inserted.
    pub fn new<S: Into<String>, T: Into<String>>(
        title: S,
        language: Language,
        entity_type: T,
        infobox: Infobox,
    ) -> Self {
        Article {
            id: ArticleId::default(),
            title: title.into(),
            language,
            entity_type: entity_type.into(),
            infobox,
            cross_links: Vec::new(),
        }
    }

    /// Adds a cross-language link.
    pub fn add_cross_link<S: Into<String>>(&mut self, language: Language, title: S) {
        self.cross_links.push((language, title.into()));
    }

    /// Returns the cross-language link to `language`, if any.
    pub fn cross_link_to(&self, language: &Language) -> Option<&str> {
        self.cross_links
            .iter()
            .find(|(l, _)| l == language)
            .map(|(_, t)| t.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_infobox() -> Infobox {
        let mut ib = Infobox::new("Infobox film");
        ib.push(AttributeValue::linked(
            "Directed by",
            "Bernardo Bertolucci",
            vec![Link::plain("Bernardo Bertolucci")],
        ));
        ib.push(AttributeValue::text("Running time", "160 minutes"));
        ib.push(AttributeValue::text("Starring", "John Lone"));
        ib.push(AttributeValue::text("starring2", "Joan Chen"));
        ib
    }

    #[test]
    fn schema_normalises_and_dedups() {
        let ib = sample_infobox();
        assert_eq!(ib.schema(), vec!["directed by", "running time", "starring"]);
        assert_eq!(ib.len(), 4);
    }

    #[test]
    fn value_lookup_uses_normalised_names() {
        let ib = sample_infobox();
        assert_eq!(
            ib.value_of("directed_by").unwrap().value,
            "Bernardo Bertolucci"
        );
        assert_eq!(ib.values_of("Starring").count(), 2);
        assert!(ib.value_of("budget").is_none());
    }

    #[test]
    fn cross_links() {
        let mut article = Article::new("The Last Emperor", Language::En, "Film", sample_infobox());
        article.add_cross_link(Language::Pt, "O Último Imperador");
        assert_eq!(
            article.cross_link_to(&Language::Pt),
            Some("O Último Imperador")
        );
        assert_eq!(article.cross_link_to(&Language::Vn), None);
    }

    #[test]
    fn links_constructors() {
        let l = Link::plain("United States");
        assert_eq!(l.anchor, "United States");
        let l = Link::with_anchor("United States", "USA");
        assert_eq!(l.anchor, "USA");
        assert_eq!(l.target, "United States");
    }

    #[test]
    fn empty_infobox() {
        let ib = Infobox::new("Infobox person");
        assert!(ib.is_empty());
        assert!(ib.schema().is_empty());
    }
}
