//! Gold-standard attribute correspondences.
//!
//! In the paper a bilingual expert labelled every cross-language attribute
//! pair of every entity type as correct or incorrect (315 alignments for
//! Pt-En, 160 for Vn-En). In this reproduction the synthetic generator plays
//! the role of the expert: it knows which language-independent *concept*
//! each surface attribute name was generated from, so a pair of attribute
//! names is a correct alignment exactly when their concept sets intersect.
//! One-to-many gold alignments arise naturally from intra-language synonyms
//! (e.g. *died* ↔ *falecimento* and *died* ↔ *morte*).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::lang::Language;

/// A surface attribute name observed in the corpus together with the
/// concepts it can denote (more than one concept = polysemy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeSense {
    /// Language the surface name belongs to.
    pub language: Language,
    /// Normalised surface name.
    pub name: String,
    /// Concept identifiers this name was generated from.
    pub concepts: BTreeSet<String>,
}

/// Gold alignments for one entity type.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TypeGroundTruth {
    /// Entity-type identifier (language independent).
    pub type_id: String,
    /// Observed attribute senses.
    pub senses: Vec<AttributeSense>,
}

impl TypeGroundTruth {
    /// Registers that `name` (in `language`) was used for `concept`.
    ///
    /// Names are stored in normalised form (see
    /// [`wiki_text::normalize_label`]).
    pub fn add_sense(&mut self, language: Language, name: &str, concept: &str) {
        let name = wiki_text::normalize_label(name);
        if let Some(sense) = self
            .senses
            .iter_mut()
            .find(|s| s.language == language && s.name == name)
        {
            sense.concepts.insert(concept.to_string());
            return;
        }
        let mut concepts = BTreeSet::new();
        concepts.insert(concept.to_string());
        self.senses.push(AttributeSense {
            language,
            name,
            concepts,
        });
    }

    /// The concepts a surface name can denote (empty set when unknown).
    ///
    /// The lookup is tolerant: the name is normalised (lowercased,
    /// diacritics folded) before matching, so callers may pass either the
    /// raw surface form ("Direção") or the normalised one ("direcao").
    pub fn concepts_of(&self, language: &Language, name: &str) -> BTreeSet<String> {
        let wanted = wiki_text::normalize_label(name);
        self.senses
            .iter()
            .find(|s| &s.language == language && s.name == wanted)
            .map(|s| s.concepts.clone())
            .unwrap_or_default()
    }

    /// Whether `(a, b)` is a correct alignment (the names share a concept).
    pub fn is_correct(&self, lang_a: &Language, a: &str, lang_b: &Language, b: &str) -> bool {
        let ca = self.concepts_of(lang_a, a);
        if ca.is_empty() {
            return false;
        }
        let cb = self.concepts_of(lang_b, b);
        ca.intersection(&cb).next().is_some()
    }

    /// All observed attribute names of a language, sorted.
    pub fn attributes_in(&self, language: &Language) -> Vec<String> {
        let mut names: Vec<String> = self
            .senses
            .iter()
            .filter(|s| &s.language == language)
            .map(|s| s.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The gold correspondents of `name` (in `lang_a`) among the attributes
    /// of `lang_b`.
    pub fn correspondents(&self, lang_a: &Language, name: &str, lang_b: &Language) -> Vec<String> {
        let concepts = self.concepts_of(lang_a, name);
        if concepts.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<String> = self
            .senses
            .iter()
            .filter(|s| &s.language == lang_b)
            .filter(|s| s.concepts.intersection(&concepts).next().is_some())
            .map(|s| s.name.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All gold cross-language pairs `(a in l1, b in l2)`, sorted.
    pub fn gold_cross_pairs(&self, l1: &Language, l2: &Language) -> Vec<(String, String)> {
        let mut pairs = Vec::new();
        for a in self.attributes_in(l1) {
            for b in self.correspondents(l1, &a, l2) {
                pairs.push((a.clone(), b));
            }
        }
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

/// Gold alignments for every entity type of a generated dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    types: BTreeMap<String, TypeGroundTruth>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a sense for `(type_id, language, name, concept)`.
    pub fn add_sense(&mut self, type_id: &str, language: Language, name: &str, concept: &str) {
        self.types
            .entry(type_id.to_string())
            .or_insert_with(|| TypeGroundTruth {
                type_id: type_id.to_string(),
                ..Default::default()
            })
            .add_sense(language, name, concept);
    }

    /// The per-type gold alignments, if the type is known.
    pub fn for_type(&self, type_id: &str) -> Option<&TypeGroundTruth> {
        self.types.get(type_id)
    }

    /// Iterates over all type ids (sorted).
    pub fn type_ids(&self) -> impl Iterator<Item = &str> {
        self.types.keys().map(|s| s.as_str())
    }

    /// Total number of gold cross-language pairs over all types.
    pub fn total_cross_pairs(&self, l1: &Language, l2: &Language) -> usize {
        self.types
            .values()
            .map(|t| t.gold_cross_pairs(l1, l2).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.add_sense("actor", Language::En, "born", "birth_date");
        gt.add_sense("actor", Language::En, "born", "birth_place");
        gt.add_sense("actor", Language::En, "died", "death_date");
        gt.add_sense("actor", Language::Pt, "nascimento", "birth_date");
        gt.add_sense("actor", Language::Pt, "falecimento", "death_date");
        gt.add_sense("actor", Language::Pt, "morte", "death_date");
        gt.add_sense("actor", Language::Pt, "local de nascimento", "birth_place");
        gt
    }

    #[test]
    fn correctness_requires_shared_concept() {
        let gt = sample();
        let actor = gt.for_type("actor").unwrap();
        assert!(actor.is_correct(&Language::En, "born", &Language::Pt, "nascimento"));
        assert!(actor.is_correct(&Language::En, "died", &Language::Pt, "morte"));
        assert!(!actor.is_correct(&Language::En, "born", &Language::Pt, "morte"));
        assert!(!actor.is_correct(&Language::En, "unknown", &Language::Pt, "morte"));
    }

    #[test]
    fn polysemy_yields_multiple_correspondents() {
        let gt = sample();
        let actor = gt.for_type("actor").unwrap();
        let corr = actor.correspondents(&Language::En, "born", &Language::Pt);
        assert_eq!(corr, vec!["local de nascimento", "nascimento"]);
        // One-to-many through intra-language synonymy.
        let corr = actor.correspondents(&Language::En, "died", &Language::Pt);
        assert_eq!(corr, vec!["falecimento", "morte"]);
    }

    #[test]
    fn gold_pairs_enumerated() {
        let gt = sample();
        let actor = gt.for_type("actor").unwrap();
        let pairs = actor.gold_cross_pairs(&Language::En, &Language::Pt);
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&("died".into(), "falecimento".into())));
        assert_eq!(gt.total_cross_pairs(&Language::En, &Language::Pt), 4);
    }

    #[test]
    fn attributes_in_language_sorted_and_deduped() {
        let gt = sample();
        let actor = gt.for_type("actor").unwrap();
        assert_eq!(actor.attributes_in(&Language::En), vec!["born", "died"]);
        assert_eq!(actor.attributes_in(&Language::Vn), Vec::<String>::new());
    }

    #[test]
    fn duplicate_sense_registration_is_idempotent() {
        let mut gt = sample();
        gt.add_sense("actor", Language::En, "born", "birth_date");
        let actor = gt.for_type("actor").unwrap();
        let born: Vec<_> = actor
            .senses
            .iter()
            .filter(|s| s.name == "born" && s.language == Language::En)
            .collect();
        assert_eq!(born.len(), 1);
        assert_eq!(born[0].concepts.len(), 2);
    }
}
