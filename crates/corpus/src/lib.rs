//! # wiki-corpus
//!
//! The Wikipedia substrate for the WikiMatch reproduction: article and
//! infobox data model, a wikitext infobox parser, and a synthetic
//! multilingual corpus generator with built-in ground truth.
//!
//! ## Why a synthetic corpus?
//!
//! The paper evaluates on infoboxes crawled from the English, Portuguese and
//! Vietnamese Wikipedias (8,898 Pt-En infoboxes across 14 entity types and
//! 659 Vn-En infoboxes across 4 types). Those dumps are not redistributable
//! and cannot be downloaded in this environment, so this crate generates a
//! corpus with the same structural phenomena:
//!
//! * **schema drift** — infoboxes of the same entity type use different
//!   subsets of attributes;
//! * **intra-language synonymy** — the same concept appears under several
//!   surface names within one language (e.g. *falecimento* / *morte*);
//! * **polysemy** — one surface name can denote different concepts
//!   (e.g. *born* as a date or as a place);
//! * **cross-language heterogeneity** — per-type attribute overlap between
//!   language editions is calibrated to the paper's Table 5;
//! * **value heterogeneity** — dates, numbers and entity references are
//!   rendered using language-specific conventions and carry noise;
//! * **link structure** — entity-valued attributes link to articles that are
//!   themselves connected by cross-language links.
//!
//! The generator knows which language-independent *concept* every surface
//! attribute name came from, so the gold standard used by the evaluation
//! (cross-language attribute correspondences, including one-to-many cases)
//! is produced alongside the corpus.
//!
//! ## Module map
//!
//! * [`lang`] — the [`Language`] enum.
//! * [`model`] — articles, infoboxes, attribute/value pairs, links.
//! * [`store`] — the [`Corpus`] container with title and
//!   cross-language indexes.
//! * [`wikitext`] — parser from `{{Infobox ...}}` wikitext to the model.
//! * [`entities`] — pools of named entities (people, places, genres, ...)
//!   with per-language titles.
//! * [`catalog`] — the domain catalog: entity types and attribute concepts
//!   with per-language surface names.
//! * [`synthetic`] — the corpus generator.
//! * [`ground_truth`] — gold alignments produced by the generator.
//! * [`dataset`] — convenience bundles (`Dataset::pt_en`, `Dataset::vn_en`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod dataset;
pub mod entities;
pub mod ground_truth;
pub mod lang;
pub mod model;
pub mod store;
pub mod synthetic;
pub mod wikitext;

pub use catalog::{Catalog, ConceptSpec, EntityTypeSpec, ValueKind};
pub use dataset::{Dataset, TypePairing};
pub use ground_truth::GroundTruth;
pub use lang::Language;
pub use model::{Article, ArticleId, AttributeValue, Infobox, Link};
pub use store::Corpus;
pub use synthetic::{ParseScaleTierError, ScaleTier, SyntheticConfig, SyntheticGenerator};
pub use wikitext::parse_infobox;
