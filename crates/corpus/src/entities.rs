//! Pools of named entities with per-language titles.
//!
//! Attribute values in infoboxes frequently reference other Wikipedia
//! entities — directors, countries, genres, companies — and those references
//! are what the bilingual dictionary (built from cross-language links of the
//! referenced articles) and the link-structure similarity feed on. The
//! [`EntityPool`] provides a deterministic, seedable supply of such entities:
//! a static multilingual gazetteer for entity kinds whose names genuinely
//! differ across languages (countries, genres, awards, occupations, ...) and
//! generated person names (personal names are typically identical across
//! editions).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::lang::Language;

/// Kinds of named entities the generator can reference from infobox values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityKind {
    /// A person (director, actor, author, musician, ...).
    Person,
    /// A country.
    Country,
    /// A city.
    City,
    /// A film/TV genre.
    FilmGenre,
    /// A music genre.
    MusicGenre,
    /// A literary genre.
    BookGenre,
    /// A company (studio, label, publisher, network owner, ...).
    Company,
    /// An award.
    Award,
    /// A natural language used as an attribute value ("English", "Inglês").
    LanguageName,
    /// An occupation ("actor", "político", "chính khách").
    Occupation,
    /// A TV network / channel.
    Network,
}

impl EntityKind {
    /// All kinds, for iteration in tests.
    pub fn all() -> &'static [EntityKind] {
        &[
            EntityKind::Person,
            EntityKind::Country,
            EntityKind::City,
            EntityKind::FilmGenre,
            EntityKind::MusicGenre,
            EntityKind::BookGenre,
            EntityKind::Company,
            EntityKind::Award,
            EntityKind::LanguageName,
            EntityKind::Occupation,
            EntityKind::Network,
        ]
    }
}

/// A named entity with a title in each corpus language.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedEntity {
    /// What kind of entity this is.
    pub kind: EntityKind,
    /// English title.
    pub en: String,
    /// Portuguese title.
    pub pt: String,
    /// Vietnamese title.
    pub vn: String,
}

impl NamedEntity {
    /// Title in the requested language (falls back to English for
    /// [`Language::Other`] editions).
    pub fn title(&self, language: &Language) -> &str {
        match language {
            Language::En => &self.en,
            Language::Pt => &self.pt,
            Language::Vn => &self.vn,
            Language::Other(_) => &self.en,
        }
    }
}

/// Index of an entity inside an [`EntityPool`].
pub type EntityRef = usize;

/// A deterministic pool of named entities.
#[derive(Debug, Clone)]
pub struct EntityPool {
    entities: Vec<NamedEntity>,
    by_kind: Vec<(EntityKind, Vec<EntityRef>)>,
}

macro_rules! gazetteer {
    ($kind:expr, $( ($en:expr, $pt:expr, $vn:expr) ),+ $(,)?) => {
        vec![ $( NamedEntity { kind: $kind, en: $en.to_string(), pt: $pt.to_string(), vn: $vn.to_string() } ),+ ]
    };
}

impl EntityPool {
    /// Builds the standard pool: the static gazetteer plus `person_count`
    /// generated people.
    pub fn standard(person_count: usize, rng: &mut StdRng) -> Self {
        let mut entities = Vec::new();
        entities.extend(countries());
        entities.extend(cities());
        entities.extend(film_genres());
        entities.extend(music_genres());
        entities.extend(book_genres());
        entities.extend(companies());
        entities.extend(awards());
        entities.extend(language_names());
        entities.extend(occupations());
        entities.extend(networks());
        entities.extend(generate_people(person_count, rng));

        let mut by_kind: Vec<(EntityKind, Vec<EntityRef>)> =
            EntityKind::all().iter().map(|k| (*k, Vec::new())).collect();
        for (i, e) in entities.iter().enumerate() {
            if let Some((_, refs)) = by_kind.iter_mut().find(|(k, _)| *k == e.kind) {
                refs.push(i);
            }
        }
        Self { entities, by_kind }
    }

    /// Number of entities in the pool.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// The entity stored at `r`.
    pub fn get(&self, r: EntityRef) -> &NamedEntity {
        &self.entities[r]
    }

    /// All entities of a kind.
    pub fn of_kind(&self, kind: EntityKind) -> &[EntityRef] {
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, refs)| refs.as_slice())
            .unwrap_or(&[])
    }

    /// Samples a uniformly random entity of a kind.
    ///
    /// # Panics
    /// Panics if the pool holds no entity of that kind.
    pub fn sample(&self, kind: EntityKind, rng: &mut StdRng) -> EntityRef {
        let refs = self.of_kind(kind);
        assert!(!refs.is_empty(), "no entities of kind {kind:?} in the pool");
        refs[rng.gen_range(0..refs.len())]
    }

    /// Samples `n` distinct entities of a kind (or fewer if the pool is
    /// smaller).
    pub fn sample_distinct(&self, kind: EntityKind, n: usize, rng: &mut StdRng) -> Vec<EntityRef> {
        let refs = self.of_kind(kind);
        if refs.is_empty() {
            return Vec::new();
        }
        let mut chosen = Vec::new();
        let mut attempts = 0;
        while chosen.len() < n.min(refs.len()) && attempts < n * 20 {
            let candidate = refs[rng.gen_range(0..refs.len())];
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            attempts += 1;
        }
        chosen
    }
}

fn countries() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::Country,
        ("United States", "Estados Unidos", "Hoa Kỳ"),
        ("United Kingdom", "Reino Unido", "Vương quốc Anh"),
        ("Brazil", "Brasil", "Brasil"),
        ("Portugal", "Portugal", "Bồ Đào Nha"),
        ("Vietnam", "Vietnã", "Việt Nam"),
        ("France", "França", "Pháp"),
        ("Italy", "Itália", "Ý"),
        ("Germany", "Alemanha", "Đức"),
        ("Spain", "Espanha", "Tây Ban Nha"),
        ("Japan", "Japão", "Nhật Bản"),
        ("China", "China", "Trung Quốc"),
        ("India", "Índia", "Ấn Độ"),
        ("Canada", "Canadá", "Canada"),
        ("Australia", "Austrália", "Úc"),
        ("Ireland", "Irlanda", "Ireland"),
        ("Mexico", "México", "México"),
        ("Argentina", "Argentina", "Argentina"),
        ("Russia", "Rússia", "Nga"),
        ("South Korea", "Coreia do Sul", "Hàn Quốc"),
        ("England", "Inglaterra", "Anh"),
        ("Netherlands", "Países Baixos", "Hà Lan"),
        ("Sweden", "Suécia", "Thụy Điển"),
        ("Norway", "Noruega", "Na Uy"),
        ("Poland", "Polônia", "Ba Lan"),
        ("Greece", "Grécia", "Hy Lạp"),
    )
}

fn cities() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::City,
        ("New York City", "Nova Iorque", "Thành phố New York"),
        ("London", "Londres", "Luân Đôn"),
        ("Los Angeles", "Los Angeles", "Los Angeles"),
        ("Paris", "Paris", "Paris"),
        ("Rome", "Roma", "Roma"),
        ("Lisbon", "Lisboa", "Lisboa"),
        ("São Paulo", "São Paulo", "São Paulo"),
        ("Rio de Janeiro", "Rio de Janeiro", "Rio de Janeiro"),
        ("Hanoi", "Hanói", "Hà Nội"),
        (
            "Ho Chi Minh City",
            "Cidade de Ho Chi Minh",
            "Thành phố Hồ Chí Minh"
        ),
        ("Tokyo", "Tóquio", "Tokyo"),
        ("Berlin", "Berlim", "Berlin"),
        ("Madrid", "Madri", "Madrid"),
        ("Moscow", "Moscou", "Moskva"),
        ("Beijing", "Pequim", "Bắc Kinh"),
    )
}

fn film_genres() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::FilmGenre,
        ("Drama", "Drama", "Chính kịch"),
        ("Comedy", "Comédia", "Hài"),
        ("Action", "Ação", "Hành động"),
        ("Thriller", "Suspense", "Giật gân"),
        ("Horror", "Terror", "Kinh dị"),
        ("Romance", "Romance", "Lãng mạn"),
        (
            "Science fiction",
            "Ficção científica",
            "Khoa học viễn tưởng"
        ),
        ("Documentary", "Documentário", "Phim tài liệu"),
        ("Animation", "Animação", "Hoạt hình"),
        ("Adventure", "Aventura", "Phiêu lưu"),
        ("Crime", "Crime", "Hình sự"),
        ("Fantasy", "Fantasia", "Giả tưởng"),
        ("Western", "Faroeste", "Viễn Tây"),
        ("Musical", "Musical", "Ca nhạc"),
    )
}

fn music_genres() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::MusicGenre,
        ("Rock", "Rock", "Rock"),
        ("Progressive rock", "Rock progressivo", "Rock tiến bộ"),
        ("Jazz", "Jazz", "Nhạc jazz"),
        ("Pop", "Pop", "Nhạc pop"),
        ("Hip hop", "Hip hop", "Hip hop"),
        ("Classical music", "Música clássica", "Nhạc cổ điển"),
        ("Blues", "Blues", "Blues"),
        ("Folk music", "Música folclórica", "Nhạc dân gian"),
        ("Electronic music", "Música eletrônica", "Nhạc điện tử"),
        ("Samba", "Samba", "Samba"),
        ("Heavy metal", "Heavy metal", "Heavy metal"),
        ("Country music", "Música country", "Nhạc đồng quê"),
    )
}

fn book_genres() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::BookGenre,
        ("Novel", "Romance literário", "Tiểu thuyết"),
        ("Poetry", "Poesia", "Thơ"),
        ("Biography", "Biografia", "Tiểu sử"),
        ("Short story", "Conto", "Truyện ngắn"),
        ("Essay", "Ensaio", "Tiểu luận"),
        (
            "Fantasy literature",
            "Literatura fantástica",
            "Văn học giả tưởng"
        ),
        (
            "Historical fiction",
            "Ficção histórica",
            "Tiểu thuyết lịch sử"
        ),
        ("Mystery fiction", "Ficção policial", "Truyện trinh thám"),
    )
}

fn companies() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::Company,
        (
            "Columbia Pictures",
            "Columbia Pictures",
            "Columbia Pictures"
        ),
        ("Warner Bros.", "Warner Bros.", "Warner Bros."),
        (
            "Paramount Pictures",
            "Paramount Pictures",
            "Paramount Pictures"
        ),
        (
            "Universal Studios",
            "Universal Studios",
            "Universal Studios"
        ),
        (
            "Metro-Goldwyn-Mayer",
            "Metro-Goldwyn-Mayer",
            "Metro-Goldwyn-Mayer"
        ),
        ("Globo Filmes", "Globo Filmes", "Globo Filmes"),
        ("EMI Records", "EMI Records", "EMI Records"),
        ("Sony Music", "Sony Music", "Sony Music"),
        ("Penguin Books", "Penguin Books", "Penguin Books"),
        (
            "Companhia das Letras",
            "Companhia das Letras",
            "Companhia das Letras"
        ),
        ("Marvel Comics", "Marvel Comics", "Marvel Comics"),
        ("DC Comics", "DC Comics", "DC Comics"),
        ("HBO", "HBO", "HBO"),
        ("Netflix", "Netflix", "Netflix"),
        ("BBC", "BBC", "BBC"),
        ("Rede Globo", "Rede Globo", "Rede Globo"),
        ("Editora Abril", "Editora Abril", "Editora Abril"),
        (
            "Kim Dong Publishing House",
            "Kim Dong",
            "Nhà xuất bản Kim Đồng"
        ),
    )
}

fn awards() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::Award,
        (
            "Academy Award for Best Picture",
            "Óscar de melhor filme",
            "Giải Oscar cho phim hay nhất"
        ),
        (
            "Academy Award for Best Director",
            "Óscar de melhor realização",
            "Giải Oscar cho đạo diễn xuất sắc nhất"
        ),
        (
            "Golden Globe Award",
            "Prémio Globo de Ouro",
            "Giải Quả cầu vàng"
        ),
        ("BAFTA Award", "Prémio BAFTA", "Giải BAFTA"),
        (
            "Cannes Film Festival Palme d'Or",
            "Palma de Ouro",
            "Cành cọ vàng"
        ),
        ("Grammy Award", "Grammy Award", "Giải Grammy"),
        ("Emmy Award", "Prémio Emmy", "Giải Emmy"),
        (
            "Nobel Prize in Literature",
            "Prémio Nobel de Literatura",
            "Giải Nobel Văn học"
        ),
    )
}

fn language_names() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::LanguageName,
        ("English language", "Língua inglesa", "Tiếng Anh"),
        (
            "Portuguese language",
            "Língua portuguesa",
            "Tiếng Bồ Đào Nha"
        ),
        ("Vietnamese language", "Língua vietnamita", "Tiếng Việt"),
        ("French language", "Língua francesa", "Tiếng Pháp"),
        ("Spanish language", "Língua espanhola", "Tiếng Tây Ban Nha"),
        ("Italian language", "Língua italiana", "Tiếng Ý"),
        ("Japanese language", "Língua japonesa", "Tiếng Nhật"),
        ("Mandarin Chinese", "Mandarim", "Tiếng Quan Thoại"),
        ("German language", "Língua alemã", "Tiếng Đức"),
        ("Russian language", "Língua russa", "Tiếng Nga"),
    )
}

fn occupations() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::Occupation,
        ("Actor", "Ator", "Diễn viên"),
        ("Film director", "Diretor de cinema", "Đạo diễn"),
        ("Screenwriter", "Roteirista", "Biên kịch"),
        ("Producer", "Produtor", "Nhà sản xuất"),
        ("Singer", "Cantor", "Ca sĩ"),
        ("Musician", "Músico", "Nhạc sĩ"),
        ("Writer", "Escritor", "Nhà văn"),
        ("Politician", "Político", "Chính khách"),
        ("Journalist", "Jornalista", "Nhà báo"),
        ("Model", "Modelo", "Người mẫu"),
        ("Comedian", "Comediante", "Diễn viên hài"),
        ("Businessperson", "Empresário", "Doanh nhân"),
    )
}

fn networks() -> Vec<NamedEntity> {
    gazetteer!(
        EntityKind::Network,
        (
            "American Broadcasting Company",
            "American Broadcasting Company",
            "American Broadcasting Company"
        ),
        ("NBC", "NBC", "NBC"),
        ("CBS", "CBS", "CBS"),
        (
            "Fox Broadcasting Company",
            "Fox Broadcasting Company",
            "Fox Broadcasting Company"
        ),
        ("Rede Globo", "Rede Globo", "Rede Globo"),
        ("SBT", "SBT", "SBT"),
        ("VTV", "VTV", "Đài Truyền hình Việt Nam"),
        ("HTV", "HTV", "Đài Truyền hình Thành phố Hồ Chí Minh"),
        ("BBC One", "BBC One", "BBC One"),
        ("Channel 4", "Channel 4", "Channel 4"),
    )
}

/// First names used to synthesise people.
const FIRST_NAMES: &[&str] = &[
    "Bernardo", "Maria", "John", "Joan", "Peter", "Ryuichi", "David", "Ana", "Carlos", "Sofia",
    "Nguyen", "Linh", "Minh", "Huong", "James", "Emma", "Lucas", "Julia", "Antonio", "Clara",
    "Thomas", "Alice", "Marco", "Helena", "Pedro", "Laura", "Hiroshi", "Marie", "Paulo", "Teresa",
    "Daniel", "Camila", "Andre", "Beatriz", "Victor", "Isabel", "Rafael", "Fernanda", "Hugo",
    "Patricia",
];

/// Last names used to synthesise people.
const LAST_NAMES: &[&str] = &[
    "Bertolucci",
    "Silva",
    "Lone",
    "Chen",
    "Sakamoto",
    "Byrne",
    "Santos",
    "Oliveira",
    "Tran",
    "Pham",
    "Le",
    "Hoang",
    "Smith",
    "Johnson",
    "Costa",
    "Pereira",
    "Almeida",
    "Ferreira",
    "Rodrigues",
    "Martins",
    "Rossi",
    "Moreau",
    "Tanaka",
    "Kim",
    "Park",
    "Souza",
    "Lima",
    "Araujo",
    "Carvalho",
    "Gomes",
    "Nakamura",
    "Dubois",
    "Müller",
    "García",
    "López",
    "Nguyen",
    "Vo",
    "Dang",
    "Bui",
    "Do",
];

/// Generates `count` synthetic people. Person names are kept identical
/// across languages (as is overwhelmingly the case on Wikipedia), so their
/// contribution to matching comes from link structure rather than from the
/// dictionary.
fn generate_people(count: usize, rng: &mut StdRng) -> Vec<NamedEntity> {
    let mut seen = std::collections::HashSet::new();
    let mut people = Vec::with_capacity(count);
    while people.len() < count {
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        let mut name = format!("{first} {last}");
        // Disambiguate collisions the way Wikipedia does.
        let mut suffix = 1;
        while seen.contains(&name) {
            suffix += 1;
            name = format!("{first} {last} ({suffix})");
        }
        seen.insert(name.clone());
        people.push(NamedEntity {
            kind: EntityKind::Person,
            en: name.clone(),
            pt: name.clone(),
            vn: name,
        });
    }
    people
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool() -> EntityPool {
        let mut rng = StdRng::seed_from_u64(7);
        EntityPool::standard(100, &mut rng)
    }

    #[test]
    fn pool_has_all_kinds() {
        let pool = pool();
        for kind in EntityKind::all() {
            assert!(
                !pool.of_kind(*kind).is_empty(),
                "no entities of kind {kind:?}"
            );
        }
        assert!(pool.len() > 150);
    }

    #[test]
    fn titles_differ_across_languages_for_countries() {
        let pool = pool();
        let usa = pool
            .of_kind(EntityKind::Country)
            .iter()
            .map(|&r| pool.get(r))
            .find(|e| e.en == "United States")
            .unwrap();
        assert_eq!(usa.title(&Language::Pt), "Estados Unidos");
        assert_eq!(usa.title(&Language::Vn), "Hoa Kỳ");
        assert_eq!(usa.title(&Language::Other("de".into())), "United States");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let pool1 = EntityPool::standard(50, &mut rng1);
        let pool2 = EntityPool::standard(50, &mut rng2);
        assert_eq!(pool1.len(), pool2.len());
        let a = pool1.sample(EntityKind::Person, &mut rng1);
        let b = pool2.sample(EntityKind::Person, &mut rng2);
        assert_eq!(pool1.get(a).en, pool2.get(b).en);
    }

    #[test]
    fn sample_distinct_returns_unique_entities() {
        let pool = pool();
        let mut rng = StdRng::seed_from_u64(3);
        let sampled = pool.sample_distinct(EntityKind::FilmGenre, 5, &mut rng);
        assert_eq!(sampled.len(), 5);
        let mut dedup = sampled.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn person_names_are_unique() {
        let pool = pool();
        let people: Vec<&str> = pool
            .of_kind(EntityKind::Person)
            .iter()
            .map(|&r| pool.get(r).en.as_str())
            .collect();
        let mut dedup: Vec<&str> = people.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(people.len(), dedup.len());
        assert_eq!(people.len(), 100);
    }
}
