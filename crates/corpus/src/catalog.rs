//! The domain catalog: entity types and attribute concepts.
//!
//! A *concept* is a language-independent piece of information an infobox may
//! record (e.g. `birth_date`, `directed_by`). Each concept lists the surface
//! attribute names used for it in every language (several names per language
//! model intra-language synonymy; the same name appearing under two concepts
//! models polysemy) and the kind of value it carries. An *entity type*
//! bundles the concepts that may appear in infoboxes of that type together
//! with per-language type labels and the target cross-language attribute
//! overlap (calibrated to Table 5 of the paper).
//!
//! The catalog follows the paper's dataset: fourteen entity types for the
//! Portuguese-English pair (film, show, actor, artist, channel, company,
//! comics character, album, adult actor, book, episode, writer, comics,
//! fictional character) of which four (film, show, actor, artist) also exist
//! in the Vietnamese-English pair.

use crate::entities::EntityKind;
use crate::lang::Language;

/// The kind of value a concept carries; drives value generation and link
/// creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueKind {
    /// A full calendar date (rendered with language-specific formatting).
    Date,
    /// A bare year.
    Year,
    /// A single reference to a named entity (rendered as a link).
    Entity(EntityKind),
    /// A list of 1..=`max` references to named entities (rendered as links).
    EntityList {
        /// Kind of the referenced entities.
        kind: EntityKind,
        /// Maximum number of references.
        max: usize,
    },
    /// A number drawn uniformly from `[lo, hi]`, tagged with a unit key
    /// (`"minutes"`, `"episodes"`, `"pages"`, or `""`).
    Number {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Unit key rendered per language by the generator.
        unit: &'static str,
    },
    /// A monetary amount in millions (rendered per language conventions).
    Money {
        /// Lower bound in millions.
        lo_millions: f64,
        /// Upper bound in millions.
        hi_millions: f64,
    },
    /// A proper-noun-like string shared verbatim across languages (aliases,
    /// work titles, production codes).
    Alias,
    /// Language-specific free text; yields low value similarity by design.
    FreeText,
}

/// One attribute concept of an entity type.
#[derive(Debug, Clone)]
pub struct ConceptSpec {
    /// Language-independent identifier (e.g. `"birth_date"`).
    pub id: &'static str,
    /// English surface names (first entry is the most common).
    pub en: &'static [&'static str],
    /// Portuguese surface names.
    pub pt: &'static [&'static str],
    /// Vietnamese surface names.
    pub vn: &'static [&'static str],
    /// Kind of value carried.
    pub kind: ValueKind,
    /// Base probability that an infobox of the type records this concept
    /// (before the per-language coverage factor is applied).
    pub commonness: f64,
}

impl ConceptSpec {
    /// Surface names for a language (empty slice when the concept is never
    /// expressed in that language).
    pub fn names(&self, language: &Language) -> &'static [&'static str] {
        match language {
            Language::En => self.en,
            Language::Pt => self.pt,
            Language::Vn => self.vn,
            Language::Other(_) => &[],
        }
    }
}

/// An entity type with its per-language labels and concept list.
#[derive(Debug, Clone)]
pub struct EntityTypeSpec {
    /// Language-independent identifier (e.g. `"film"`).
    pub id: &'static str,
    /// English type label (also used as the infobox template suffix).
    pub label_en: &'static str,
    /// Portuguese type label.
    pub label_pt: &'static str,
    /// Vietnamese type label (`None` when the type does not occur in the
    /// Vietnamese dataset).
    pub label_vn: Option<&'static str>,
    /// Target attribute overlap for Portuguese-English dual infoboxes
    /// (Table 5 of the paper).
    pub overlap_pt: f64,
    /// Target attribute overlap for Vietnamese-English dual infoboxes.
    pub overlap_vn: Option<f64>,
    /// The concepts infoboxes of this type may record.
    pub concepts: Vec<ConceptSpec>,
}

impl EntityTypeSpec {
    /// The type label in a language (`None` when the type has no such
    /// edition).
    pub fn label(&self, language: &Language) -> Option<&'static str> {
        match language {
            Language::En => Some(self.label_en),
            Language::Pt => Some(self.label_pt),
            Language::Vn => self.label_vn,
            Language::Other(_) => None,
        }
    }

    /// Target overlap for the pair (`other`, English).
    pub fn target_overlap(&self, other: &Language) -> Option<f64> {
        match other {
            Language::Pt => Some(self.overlap_pt),
            Language::Vn => self.overlap_vn,
            _ => None,
        }
    }

    /// Looks up a concept by id.
    pub fn concept(&self, id: &str) -> Option<&ConceptSpec> {
        self.concepts.iter().find(|c| c.id == id)
    }
}

/// The full catalog of entity types.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Entity-type specifications.
    pub types: Vec<EntityTypeSpec>,
}

impl Catalog {
    /// Builds the standard catalog mirroring the paper's dataset.
    pub fn standard() -> Self {
        Catalog {
            types: vec![
                film(),
                show(),
                actor(),
                artist(),
                channel(),
                company(),
                comics_character(),
                album(),
                adult_actor(),
                book(),
                episode(),
                writer(),
                comics(),
                fictional_character(),
            ],
        }
    }

    /// Builds a scaled-up catalog: the standard types, each extended with
    /// `extra_concepts_per_type` generated concepts.
    ///
    /// This is the knob behind the synthetic corpus **scale tiers**
    /// (`SyntheticConfig::{small, medium, large}`): the paper's fourteen
    /// types only yield a few dozen attribute groups per dual-language
    /// schema, which says nothing about how the matcher behaves on
    /// mining-scale inputs. Generated concepts carry deterministic
    /// per-language surface names (`"metric ab"` / `"métrica ab"`), cycle
    /// through the cheap value kinds (years, numbers, dates, aliases, free
    /// text — no entity references, so the article graph does not explode)
    /// and use low commonness values so infobox sizes grow sub-linearly in
    /// the concept count.
    pub fn scaled(extra_concepts_per_type: usize) -> Self {
        let mut catalog = Self::standard();
        if extra_concepts_per_type == 0 {
            return catalog;
        }
        for ty in &mut catalog.types {
            for i in 0..extra_concepts_per_type {
                ty.concepts.push(scaled_concept(ty.id, i));
            }
        }
        catalog
    }

    /// Looks up an entity type by id.
    pub fn entity_type(&self, id: &str) -> Option<&EntityTypeSpec> {
        self.types.iter().find(|t| t.id == id)
    }

    /// The types available for a language pair (`other`, English).
    pub fn types_for(&self, other: &Language) -> Vec<&EntityTypeSpec> {
        self.types
            .iter()
            .filter(|t| t.label(other).is_some())
            .collect()
    }
}

/// Interns a generated string, returning a `'static` reference.
///
/// [`ConceptSpec`] stores `&'static str` names because the hand-written
/// catalog is entirely literal; generated scale-tier concepts go through
/// this intern table so repeated catalog constructions reuse one allocation
/// per distinct name instead of leaking a fresh one each time.
fn intern(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern cache poisoned");
    if let Some(&interned) = cache.get(s.as_str()) {
        return interned;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    cache.insert(leaked);
    leaked
}

/// Interns a one-element name slice (the per-language surface-name list of
/// a generated concept).
fn intern_names(name: String) -> &'static [&'static str] {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<&'static str, &'static [&'static str]>>> = OnceLock::new();
    let name = intern(name);
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("intern cache poisoned");
    if let Some(&slice) = cache.get(name) {
        return slice;
    }
    let leaked: &'static [&'static str] = Box::leak(vec![name].into_boxed_slice());
    cache.insert(name, leaked);
    leaked
}

/// Spells `i` in positional base 26 with `'a'` as digit zero
/// (`0 → "a"`, `25 → "z"`, `26 → "ba"`, `27 → "bb"`).
///
/// Surface names must not end in digits: `normalize_label` strips trailing
/// digits as infobox repetition counters ("starring 2"), which would
/// collapse every generated concept into a single attribute group.
pub(crate) fn letter_suffix(mut i: usize) -> String {
    let mut reversed = Vec::new();
    loop {
        reversed.push(b'a' + (i % 26) as u8);
        i /= 26;
        if i == 0 {
            break;
        }
    }
    reversed.reverse();
    String::from_utf8(reversed).expect("ascii letters")
}

/// The `i`-th generated concept of a scaled entity type.
///
/// Names are deterministic and unique per `(type, i)` so ground truth stays
/// exact; kinds and commonness cycle so the extra attributes exercise every
/// cheap value shape with realistic (sparse) occurrence patterns.
fn scaled_concept(type_id: &'static str, i: usize) -> ConceptSpec {
    if i >= LONG_TAIL_START {
        return long_tail_concept(type_id, i);
    }
    let kind = match i % 5 {
        0 => ValueKind::Year,
        1 => ValueKind::Number {
            lo: 1.0,
            hi: 500.0,
            unit: "",
        },
        2 => ValueKind::Alias,
        3 => ValueKind::Date,
        _ => ValueKind::FreeText,
    };
    // Commonness cycles through 0.05..=0.25 deterministically: common
    // enough that nearly every generated concept forms an English
    // attribute group, rare enough that infoboxes stay bounded.
    let commonness = 0.05 + 0.025 * ((i * 7) % 9) as f64;
    let suffix = letter_suffix(i);
    ConceptSpec {
        id: intern(format!("x_{type_id}_{i}")),
        en: intern_names(format!("metric {suffix}")),
        pt: intern_names(format!("métrica {suffix}")),
        vn: intern_names(format!("chỉ số {suffix}")),
        kind,
        commonness,
    }
}

/// First generated-concept index that uses the diversified **long-tail**
/// kind cycle instead of the original one. Every pre-existing tier
/// (`tiny`..`large`, ≤ 2400 extra concepts) stays below this boundary, so
/// their corpora — and the golden similarity hashes pinned on them — are
/// byte-for-byte unchanged; only the `xlarge` tier reaches into the tail.
const LONG_TAIL_START: usize = 2400;

/// The `i`-th generated concept for `i >= LONG_TAIL_START` (the `xlarge`
/// tail).
///
/// The original cycle reuses small Alias/FreeText word pools, which at
/// tens of thousands of concepts floods the schema with near-duplicate
/// value vectors (every pair of such attribute groups shares most terms —
/// exactly the quadratic neighbourhood the candidate filter exists to
/// prune, but with *genuinely* similar pairs that no sound filter may
/// skip). The tail therefore sticks to value kinds whose token windows
/// slide with `i`: numbers drawn from a per-concept 60-wide window over a
/// 9973-value ring, plus dates and years. Commonness stays low
/// (0.02..=0.08) so infobox sizes grow sub-linearly.
fn long_tail_concept(type_id: &'static str, i: usize) -> ConceptSpec {
    let kind = match i % 8 {
        0..=4 => {
            let lo = ((i * 53) % 9973) as f64;
            ValueKind::Number {
                lo,
                hi: lo + 60.0,
                unit: "",
            }
        }
        5 | 6 => ValueKind::Date,
        _ => ValueKind::Year,
    };
    let commonness = 0.02 + 0.01 * ((i * 11) % 7) as f64;
    let suffix = letter_suffix(i);
    ConceptSpec {
        id: intern(format!("x_{type_id}_{i}")),
        en: intern_names(format!("metric {suffix}")),
        pt: intern_names(format!("métrica {suffix}")),
        vn: intern_names(format!("chỉ số {suffix}")),
        kind,
        commonness,
    }
}

/// Shorthand constructor for a [`ConceptSpec`].
fn c(
    id: &'static str,
    en: &'static [&'static str],
    pt: &'static [&'static str],
    vn: &'static [&'static str],
    kind: ValueKind,
    commonness: f64,
) -> ConceptSpec {
    ConceptSpec {
        id,
        en,
        pt,
        vn,
        kind,
        commonness,
    }
}

/// Person-biography concepts shared by actor, artist, writer and adult actor.
///
/// `with_vn` controls whether Vietnamese surface names are included (only
/// the actor and artist types occur in the Vietnamese dataset).
fn bio_concepts(with_vn: bool) -> Vec<ConceptSpec> {
    let vn = |names: &'static [&'static str]| -> &'static [&'static str] {
        if with_vn {
            names
        } else {
            &[]
        }
    };
    vec![
        c(
            "birth_date",
            &["born", "birth date"],
            &["nascimento", "data de nascimento"],
            vn(&["sinh", "ngày sinh"]),
            ValueKind::Date,
            0.95,
        ),
        c(
            "birth_place",
            &["birthplace", "born"],
            &["local de nascimento", "país de nascimento"],
            vn(&["nơi sinh"]),
            ValueKind::Entity(EntityKind::Country),
            0.7,
        ),
        c(
            "death_date",
            &["died"],
            &["falecimento", "morte"],
            vn(&["mất", "ngày mất"]),
            ValueKind::Date,
            0.45,
        ),
        c(
            "occupation",
            &["occupation"],
            &["ocupação", "profissão"],
            vn(&["vai trò", "công việc"]),
            ValueKind::EntityList {
                kind: EntityKind::Occupation,
                max: 2,
            },
            0.8,
        ),
        c(
            "spouse",
            &["spouse"],
            &["cônjuge"],
            vn(&["chồng", "vợ"]),
            ValueKind::Entity(EntityKind::Person),
            0.55,
        ),
        c(
            "other_names",
            &["other names"],
            &["outros nomes"],
            vn(&["tên khác"]),
            ValueKind::Alias,
            0.4,
        ),
        c(
            "nationality",
            &["nationality"],
            &["nacionalidade"],
            vn(&["quốc tịch"]),
            ValueKind::Entity(EntityKind::Country),
            0.6,
        ),
        c(
            "years_active",
            &["years active"],
            &["anos de atividade", "período de atividade"],
            vn(&["năm hoạt động"]),
            ValueKind::Year,
            0.5,
        ),
        c(
            "website",
            &["website"],
            &["página oficial", "website"],
            vn(&["trang web"]),
            ValueKind::Alias,
            0.3,
        ),
        c(
            "awards",
            &["awards"],
            &["prêmios"],
            vn(&["giải thưởng"]),
            ValueKind::EntityList {
                kind: EntityKind::Award,
                max: 2,
            },
            0.25,
        ),
    ]
}

fn film() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "film",
        label_en: "Film",
        label_pt: "Filme",
        label_vn: Some("Phim"),
        overlap_pt: 0.36,
        overlap_vn: Some(0.87),
        concepts: vec![
            c(
                "directed_by",
                &["directed by"],
                &["direção", "dirigido por"],
                &["đạo diễn"],
                ValueKind::Entity(EntityKind::Person),
                0.95,
            ),
            c(
                "produced_by",
                &["produced by"],
                &["produção"],
                &["sản xuất"],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.7,
            ),
            c(
                "written_by",
                &["written by", "screenplay by"],
                &["roteiro"],
                &["kịch bản"],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.75,
            ),
            c(
                "starring",
                &["starring"],
                &["elenco original", "elenco"],
                &["diễn viên"],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 4,
                },
                0.9,
            ),
            c(
                "music_by",
                &["music by"],
                &["música"],
                &["âm nhạc"],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.6,
            ),
            c(
                "cinematography",
                &["cinematography"],
                &["fotografia"],
                &["quay phim"],
                ValueKind::Entity(EntityKind::Person),
                0.5,
            ),
            c(
                "editing_by",
                &["editing by"],
                &["edição"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.45,
            ),
            c(
                "distributed_by",
                &["distributed by"],
                &["distribuição"],
                &["phát hành"],
                ValueKind::Entity(EntityKind::Company),
                0.55,
            ),
            c(
                "studio",
                &["studio"],
                &["estúdio", "companhia produtora"],
                &["hãng sản xuất"],
                ValueKind::Entity(EntityKind::Company),
                0.5,
            ),
            c(
                "release_date",
                &["release date", "released"],
                &["lançamento", "data de lançamento"],
                &["công chiếu", "ngày phát hành"],
                ValueKind::Date,
                0.85,
            ),
            c(
                "running_time",
                &["running time"],
                &["duração", "tempo de duração"],
                &["thời lượng"],
                ValueKind::Number {
                    lo: 75.0,
                    hi: 210.0,
                    unit: "minutes",
                },
                0.8,
            ),
            c(
                "country",
                &["country"],
                &["país"],
                &["quốc gia"],
                ValueKind::Entity(EntityKind::Country),
                0.8,
            ),
            c(
                "language",
                &["language"],
                &["idioma", "idioma original"],
                &["ngôn ngữ"],
                ValueKind::Entity(EntityKind::LanguageName),
                0.75,
            ),
            c(
                "budget",
                &["budget"],
                &["orçamento"],
                &["kinh phí"],
                ValueKind::Money {
                    lo_millions: 1.0,
                    hi_millions: 250.0,
                },
                0.45,
            ),
            c(
                "gross",
                &["gross", "box office"],
                &["receita", "bilheteria"],
                &["doanh thu"],
                ValueKind::Money {
                    lo_millions: 1.0,
                    hi_millions: 900.0,
                },
                0.4,
            ),
            c(
                "genre",
                &["genre"],
                &["gênero"],
                &["thể loại"],
                ValueKind::EntityList {
                    kind: EntityKind::FilmGenre,
                    max: 2,
                },
                0.6,
            ),
            c(
                "film_awards",
                &["awards"],
                &["prêmios", "prêmio"],
                &["giải thưởng"],
                ValueKind::EntityList {
                    kind: EntityKind::Award,
                    max: 2,
                },
                0.2,
            ),
            // A deliberately rare attribute (< 1 % of infoboxes): the paper
            // notes such matches are missed by every approach.
            c(
                "narrated_by",
                &["narrated by"],
                &["narração"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.02,
            ),
        ],
    }
}

fn show() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "show",
        label_en: "Television show",
        label_pt: "Programa de televisão",
        label_vn: Some("Chương trình truyền hình"),
        overlap_pt: 0.45,
        overlap_vn: Some(0.75),
        concepts: vec![
            c(
                "created_by",
                &["created by"],
                &["criação", "criado por"],
                &["sáng lập"],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.75,
            ),
            c(
                "show_starring",
                &["starring"],
                &["elenco", "apresentador"],
                &["diễn viên"],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 4,
                },
                0.85,
            ),
            c(
                "country",
                &["country of origin", "country"],
                &["país de origem", "país"],
                &["quốc gia"],
                ValueKind::Entity(EntityKind::Country),
                0.8,
            ),
            c(
                "language",
                &["language"],
                &["idioma"],
                &["ngôn ngữ"],
                ValueKind::Entity(EntityKind::LanguageName),
                0.7,
            ),
            c(
                "network",
                &["network", "original channel"],
                &["emissora", "canal original"],
                &["kênh phát sóng"],
                ValueKind::Entity(EntityKind::Network),
                0.75,
            ),
            c(
                "num_episodes",
                &["number of episodes"],
                &["número de episódios", "episódios"],
                &["số tập"],
                ValueKind::Number {
                    lo: 6.0,
                    hi: 300.0,
                    unit: "episodes",
                },
                0.7,
            ),
            c(
                "num_seasons",
                &["number of seasons"],
                &["número de temporadas", "temporadas"],
                &["số mùa"],
                ValueKind::Number {
                    lo: 1.0,
                    hi: 20.0,
                    unit: "",
                },
                0.6,
            ),
            c(
                "first_aired",
                &["first aired", "original run"],
                &["exibição original", "primeira exibição"],
                &["phát sóng lần đầu"],
                ValueKind::Date,
                0.8,
            ),
            c(
                "last_aired",
                &["last aired"],
                &["última exibição"],
                &["phát sóng lần cuối"],
                ValueKind::Date,
                0.45,
            ),
            c(
                "show_genre",
                &["genre"],
                &["gênero"],
                &["thể loại"],
                ValueKind::EntityList {
                    kind: EntityKind::FilmGenre,
                    max: 2,
                },
                0.6,
            ),
            c(
                "executive_producer",
                &["executive producer"],
                &["produtor executivo"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.4,
            ),
            c(
                "theme_composer",
                &["theme music composer"],
                &["compositor do tema"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.2,
            ),
        ],
    }
}

fn actor() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "actor",
        label_en: "Actor",
        label_pt: "Ator",
        label_vn: Some("Diễn viên"),
        overlap_pt: 0.42,
        overlap_vn: Some(0.46),
        concepts: bio_concepts(true),
    }
}

fn artist() -> EntityTypeSpec {
    let mut concepts = bio_concepts(true);
    concepts.extend(vec![
        c(
            "music_genre",
            &["genre"],
            &["gênero", "gênero musical"],
            &["thể loại"],
            ValueKind::EntityList {
                kind: EntityKind::MusicGenre,
                max: 2,
            },
            0.8,
        ),
        c(
            "instruments",
            &["instruments"],
            &["instrumentos"],
            &["nhạc cụ"],
            ValueKind::FreeText,
            0.55,
        ),
        c(
            "label",
            &["label", "record label"],
            &["gravadora"],
            &["hãng đĩa"],
            ValueKind::Entity(EntityKind::Company),
            0.6,
        ),
        c(
            "origin",
            &["origin"],
            &["origem"],
            &["xuất thân"],
            ValueKind::Entity(EntityKind::City),
            0.5,
        ),
        c(
            "associated_acts",
            &["associated acts"],
            &["artistas associados"],
            &[],
            ValueKind::EntityList {
                kind: EntityKind::Person,
                max: 3,
            },
            0.35,
        ),
    ]);
    EntityTypeSpec {
        id: "artist",
        label_en: "Musical artist",
        label_pt: "Artista musical",
        label_vn: Some("Nghệ sĩ"),
        overlap_pt: 0.52,
        overlap_vn: Some(0.67),
        concepts,
    }
}

fn channel() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "channel",
        label_en: "Television channel",
        label_pt: "Canal de televisão",
        label_vn: None,
        overlap_pt: 0.15,
        overlap_vn: None,
        concepts: vec![
            c(
                "launched",
                &["launched", "launch date"],
                &["fundação", "lançamento"],
                &[],
                ValueKind::Date,
                0.8,
            ),
            c(
                "owner",
                &["owner", "owned by"],
                &["proprietário", "pertence a"],
                &[],
                ValueKind::Entity(EntityKind::Company),
                0.7,
            ),
            c(
                "channel_country",
                &["country"],
                &["país"],
                &[],
                ValueKind::Entity(EntityKind::Country),
                0.75,
            ),
            c(
                "broadcast_area",
                &["broadcast area"],
                &["área de transmissão"],
                &[],
                ValueKind::Entity(EntityKind::Country),
                0.4,
            ),
            c(
                "channel_language",
                &["language"],
                &["idioma"],
                &[],
                ValueKind::Entity(EntityKind::LanguageName),
                0.6,
            ),
            c(
                "picture_format",
                &["picture format"],
                &["formato de imagem"],
                &[],
                ValueKind::FreeText,
                0.45,
            ),
            c(
                "sister_channels",
                &["sister channels"],
                &["canais irmãos"],
                &[],
                ValueKind::Entity(EntityKind::Network),
                0.3,
            ),
            c(
                "slogan",
                &["slogan"],
                &["slogan", "lema"],
                &[],
                ValueKind::FreeText,
                0.35,
            ),
            c(
                "channel_website",
                &["website", "web site"],
                &["página oficial", "site oficial"],
                &[],
                ValueKind::Alias,
                0.5,
            ),
            c(
                "headquarters",
                &["headquarters"],
                &["sede"],
                &[],
                ValueKind::Entity(EntityKind::City),
                0.45,
            ),
        ],
    }
}

fn company() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "company",
        label_en: "Company",
        label_pt: "Empresa",
        label_vn: None,
        overlap_pt: 0.31,
        overlap_vn: None,
        concepts: vec![
            c(
                "founded",
                &["founded", "foundation"],
                &["fundação"],
                &[],
                ValueKind::Date,
                0.85,
            ),
            c(
                "founder",
                &["founder", "founders"],
                &["fundador", "fundadores"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.6,
            ),
            c(
                "company_headquarters",
                &["headquarters"],
                &["sede"],
                &[],
                ValueKind::Entity(EntityKind::City),
                0.75,
            ),
            c(
                "industry",
                &["industry"],
                &["indústria", "ramo de atividade"],
                &[],
                ValueKind::FreeText,
                0.65,
            ),
            c(
                "products",
                &["products"],
                &["produtos"],
                &[],
                ValueKind::FreeText,
                0.5,
            ),
            c(
                "revenue",
                &["revenue"],
                &["faturamento", "receita"],
                &[],
                ValueKind::Money {
                    lo_millions: 10.0,
                    hi_millions: 90_000.0,
                },
                0.5,
            ),
            c(
                "num_employees",
                &["number of employees", "employees"],
                &["número de funcionários", "funcionários"],
                &[],
                ValueKind::Number {
                    lo: 50.0,
                    hi: 400_000.0,
                    unit: "",
                },
                0.45,
            ),
            c(
                "key_people",
                &["key people"],
                &["pessoas-chave", "principais pessoas"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.4,
            ),
            c(
                "company_country",
                &["country"],
                &["país"],
                &[],
                ValueKind::Entity(EntityKind::Country),
                0.6,
            ),
            c(
                "company_website",
                &["website"],
                &["página oficial", "website"],
                &[],
                ValueKind::Alias,
                0.55,
            ),
        ],
    }
}

fn comics_character() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "comics_character",
        label_en: "Comics character",
        label_pt: "Personagem de quadrinhos",
        label_vn: None,
        overlap_pt: 0.59,
        overlap_vn: None,
        concepts: vec![
            c(
                "cc_created_by",
                &["created by", "creators"],
                &["criado por", "criação"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.85,
            ),
            c(
                "first_appearance",
                &["first appearance"],
                &["primeira aparição"],
                &[],
                ValueKind::Alias,
                0.8,
            ),
            c(
                "cc_publisher",
                &["publisher"],
                &["editora"],
                &[],
                ValueKind::Entity(EntityKind::Company),
                0.75,
            ),
            c(
                "alter_ego",
                &["alter ego", "full name"],
                &["alter ego", "nome completo"],
                &[],
                ValueKind::Alias,
                0.6,
            ),
            c(
                "species",
                &["species"],
                &["espécie"],
                &[],
                ValueKind::FreeText,
                0.4,
            ),
            c(
                "abilities",
                &["abilities", "powers"],
                &["habilidades", "poderes"],
                &[],
                ValueKind::FreeText,
                0.55,
            ),
            c(
                "team_affiliations",
                &["team affiliations", "alliances"],
                &["afiliações", "alianças"],
                &[],
                ValueKind::Alias,
                0.45,
            ),
            c(
                "cc_portrayed_by",
                &["portrayed by"],
                &["interpretado por"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.3,
            ),
        ],
    }
}

fn album() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "album",
        label_en: "Album",
        label_pt: "Álbum",
        label_vn: None,
        overlap_pt: 0.52,
        overlap_vn: None,
        concepts: vec![
            c(
                "album_artist",
                &["artist"],
                &["artista"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.95,
            ),
            c(
                "released",
                &["released", "release date"],
                &["lançamento", "data de lançamento"],
                &[],
                ValueKind::Date,
                0.9,
            ),
            c(
                "recorded",
                &["recorded"],
                &["gravado em", "gravação"],
                &[],
                ValueKind::Year,
                0.55,
            ),
            c(
                "album_genre",
                &["genre"],
                &["gênero"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::MusicGenre,
                    max: 2,
                },
                0.8,
            ),
            c(
                "length",
                &["length"],
                &["duração"],
                &[],
                ValueKind::Number {
                    lo: 25.0,
                    hi: 90.0,
                    unit: "minutes",
                },
                0.7,
            ),
            c(
                "album_label",
                &["label"],
                &["gravadora"],
                &[],
                ValueKind::Entity(EntityKind::Company),
                0.75,
            ),
            c(
                "album_producer",
                &["producer"],
                &["produtor", "produção"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.6,
            ),
            c(
                "studio_recorded",
                &["studio"],
                &["estúdio"],
                &[],
                ValueKind::FreeText,
                0.35,
            ),
        ],
    }
}

fn adult_actor() -> EntityTypeSpec {
    let mut concepts = bio_concepts(false);
    concepts.extend(vec![
        c(
            "ethnicity",
            &["ethnicity"],
            &["etnia"],
            &[],
            ValueKind::FreeText,
            0.5,
        ),
        c(
            "measurements",
            &["measurements"],
            &["medidas"],
            &[],
            ValueKind::FreeText,
            0.45,
        ),
        c(
            "num_films",
            &["number of films", "no. of films"],
            &["número de filmes"],
            &[],
            ValueKind::Number {
                lo: 5.0,
                hi: 600.0,
                unit: "",
            },
            0.4,
        ),
        c(
            "alias",
            &["alias", "aliases"],
            &["pseudônimo", "outros nomes"],
            &[],
            ValueKind::Alias,
            0.5,
        ),
    ]);
    EntityTypeSpec {
        id: "adult_actor",
        label_en: "Adult actor",
        label_pt: "Ator adulto",
        label_vn: None,
        overlap_pt: 0.47,
        overlap_vn: None,
        concepts,
    }
}

fn book() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "book",
        label_en: "Book",
        label_pt: "Livro",
        label_vn: None,
        overlap_pt: 0.38,
        overlap_vn: None,
        concepts: vec![
            c(
                "author",
                &["author"],
                &["autor", "escritor"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.95,
            ),
            c(
                "book_country",
                &["country"],
                &["país"],
                &[],
                ValueKind::Entity(EntityKind::Country),
                0.6,
            ),
            c(
                "book_language",
                &["language", "original language"],
                &["idioma", "idioma original"],
                &[],
                ValueKind::Entity(EntityKind::LanguageName),
                0.7,
            ),
            c(
                "book_publisher",
                &["publisher"],
                &["editora"],
                &[],
                ValueKind::Entity(EntityKind::Company),
                0.75,
            ),
            c(
                "pub_date",
                &["publication date", "published"],
                &["data de publicação", "lançamento"],
                &[],
                ValueKind::Date,
                0.8,
            ),
            c(
                "pages",
                &["pages"],
                &["páginas", "número de páginas"],
                &[],
                ValueKind::Number {
                    lo: 80.0,
                    hi: 1200.0,
                    unit: "pages",
                },
                0.6,
            ),
            c(
                "book_genre",
                &["genre"],
                &["gênero"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::BookGenre,
                    max: 2,
                },
                0.55,
            ),
            c("isbn", &["isbn"], &["isbn"], &[], ValueKind::Alias, 0.5),
            c(
                "preceded_by",
                &["preceded by"],
                &["precedido por"],
                &[],
                ValueKind::Alias,
                0.25,
            ),
            c(
                "cover_artist",
                &["cover artist"],
                &["artista da capa"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.15,
            ),
        ],
    }
}

fn episode() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "episode",
        label_en: "Television episode",
        label_pt: "Episódio de televisão",
        label_vn: None,
        overlap_pt: 0.31,
        overlap_vn: None,
        concepts: vec![
            c(
                "series",
                &["series"],
                &["série", "seriado"],
                &[],
                ValueKind::Alias,
                0.9,
            ),
            c(
                "episode_director",
                &["directed by", "director"],
                &["direção", "dirigido por"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.8,
            ),
            c(
                "episode_writer",
                &["written by", "writer"],
                &["roteiro", "escrito por"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.75,
            ),
            c(
                "airdate",
                &["original air date", "airdate"],
                &["data de exibição", "exibição original"],
                &[],
                ValueKind::Date,
                0.85,
            ),
            c(
                "episode_no",
                &["episode no", "episode number"],
                &["número do episódio", "episódio"],
                &[],
                ValueKind::Number {
                    lo: 1.0,
                    hi: 24.0,
                    unit: "",
                },
                0.7,
            ),
            c(
                "season",
                &["season"],
                &["temporada"],
                &[],
                ValueKind::Number {
                    lo: 1.0,
                    hi: 12.0,
                    unit: "",
                },
                0.65,
            ),
            c(
                "prod_code",
                &["production code"],
                &["código de produção"],
                &[],
                ValueKind::Alias,
                0.4,
            ),
            c(
                "guest_stars",
                &["guest stars"],
                &["participações especiais"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 3,
                },
                0.35,
            ),
        ],
    }
}

fn writer() -> EntityTypeSpec {
    let mut concepts = bio_concepts(false);
    concepts.extend(vec![
        c(
            "notable_works",
            &["notable works"],
            &["obras notáveis", "principais obras"],
            &[],
            ValueKind::Alias,
            0.55,
        ),
        c(
            "literary_genre",
            &["genre"],
            &["gênero", "gênero literário"],
            &[],
            ValueKind::EntityList {
                kind: EntityKind::BookGenre,
                max: 2,
            },
            0.6,
        ),
        c(
            "period",
            &["period", "years active"],
            &["período", "período de atividade"],
            &[],
            ValueKind::Year,
            0.4,
        ),
        c(
            "writing_language",
            &["language"],
            &["idioma", "língua"],
            &[],
            ValueKind::Entity(EntityKind::LanguageName),
            0.5,
        ),
    ]);
    EntityTypeSpec {
        id: "writer",
        label_en: "Writer",
        label_pt: "Escritor",
        label_vn: None,
        overlap_pt: 0.63,
        overlap_vn: None,
        concepts,
    }
}

fn comics() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "comics",
        label_en: "Comic book series",
        label_pt: "Série de quadrinhos",
        label_vn: None,
        overlap_pt: 0.47,
        overlap_vn: None,
        concepts: vec![
            c(
                "comics_publisher",
                &["publisher"],
                &["editora"],
                &[],
                ValueKind::Entity(EntityKind::Company),
                0.85,
            ),
            c(
                "schedule",
                &["schedule"],
                &["periodicidade"],
                &[],
                ValueKind::FreeText,
                0.5,
            ),
            c(
                "format",
                &["format"],
                &["formato"],
                &[],
                ValueKind::FreeText,
                0.55,
            ),
            c(
                "comics_genre",
                &["genre"],
                &["gênero"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::FilmGenre,
                    max: 2,
                },
                0.6,
            ),
            c(
                "publication_date",
                &["publication date", "date"],
                &["data de publicação"],
                &[],
                ValueKind::Date,
                0.7,
            ),
            c(
                "main_characters",
                &["main characters"],
                &["personagens principais"],
                &[],
                ValueKind::Alias,
                0.55,
            ),
            c(
                "comics_creators",
                &["creators", "created by"],
                &["criadores", "criado por"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.75,
            ),
            c(
                "num_issues",
                &["number of issues"],
                &["número de edições"],
                &[],
                ValueKind::Number {
                    lo: 1.0,
                    hi: 700.0,
                    unit: "",
                },
                0.45,
            ),
        ],
    }
}

fn fictional_character() -> EntityTypeSpec {
    EntityTypeSpec {
        id: "fictional_character",
        label_en: "Fictional character",
        label_pt: "Personagem fictícia",
        label_vn: None,
        overlap_pt: 0.32,
        overlap_vn: None,
        concepts: vec![
            c(
                "fc_first_appearance",
                &["first appearance"],
                &["primeira aparição"],
                &[],
                ValueKind::Alias,
                0.8,
            ),
            c(
                "fc_created_by",
                &["created by", "creator"],
                &["criado por", "criação"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Person,
                    max: 2,
                },
                0.75,
            ),
            c(
                "fc_portrayed_by",
                &["portrayed by", "played by"],
                &["interpretado por"],
                &[],
                ValueKind::Entity(EntityKind::Person),
                0.6,
            ),
            c(
                "fc_species",
                &["species"],
                &["espécie"],
                &[],
                ValueKind::FreeText,
                0.35,
            ),
            c(
                "gender",
                &["gender"],
                &["gênero", "sexo"],
                &[],
                ValueKind::FreeText,
                0.55,
            ),
            c(
                "fc_occupation",
                &["occupation"],
                &["ocupação"],
                &[],
                ValueKind::EntityList {
                    kind: EntityKind::Occupation,
                    max: 2,
                },
                0.5,
            ),
            c(
                "family",
                &["family"],
                &["família"],
                &[],
                ValueKind::Alias,
                0.4,
            ),
            c(
                "fc_nationality",
                &["nationality"],
                &["nacionalidade"],
                &[],
                ValueKind::Entity(EntityKind::Country),
                0.3,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_catalog_has_fourteen_types() {
        let catalog = Catalog::standard();
        assert_eq!(catalog.types.len(), 14);
        let ids: HashSet<&str> = catalog.types.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), 14);
        assert!(catalog.entity_type("film").is_some());
        assert!(catalog.entity_type("nonexistent").is_none());
    }

    #[test]
    fn four_types_exist_in_vietnamese() {
        let catalog = Catalog::standard();
        let vn_types = catalog.types_for(&Language::Vn);
        assert_eq!(vn_types.len(), 4);
        let ids: Vec<&str> = vn_types.iter().map(|t| t.id).collect();
        assert!(ids.contains(&"film"));
        assert!(ids.contains(&"show"));
        assert!(ids.contains(&"actor"));
        assert!(ids.contains(&"artist"));
        assert_eq!(catalog.types_for(&Language::Pt).len(), 14);
    }

    #[test]
    fn every_concept_has_english_and_portuguese_names() {
        let catalog = Catalog::standard();
        for ty in &catalog.types {
            assert!(!ty.concepts.is_empty(), "type {} has no concepts", ty.id);
            for concept in &ty.concepts {
                assert!(
                    !concept.en.is_empty(),
                    "{}::{} lacks English names",
                    ty.id,
                    concept.id
                );
                assert!(
                    !concept.pt.is_empty(),
                    "{}::{} lacks Portuguese names",
                    ty.id,
                    concept.id
                );
                assert!(
                    concept.commonness > 0.0 && concept.commonness <= 1.0,
                    "{}::{} commonness out of range",
                    ty.id,
                    concept.id
                );
            }
        }
    }

    #[test]
    fn vietnamese_types_have_vietnamese_names_for_common_concepts() {
        let catalog = Catalog::standard();
        for ty_id in ["film", "show", "actor", "artist"] {
            let ty = catalog.entity_type(ty_id).unwrap();
            let with_vn = ty.concepts.iter().filter(|c| !c.vn.is_empty()).count();
            assert!(
                with_vn >= ty.concepts.len() / 2,
                "type {ty_id} has too few Vietnamese concept names ({with_vn})"
            );
        }
    }

    #[test]
    fn overlap_targets_match_the_paper() {
        let catalog = Catalog::standard();
        let film = catalog.entity_type("film").unwrap();
        assert!((film.overlap_pt - 0.36).abs() < 1e-9);
        assert_eq!(film.target_overlap(&Language::Vn), Some(0.87));
        let channel = catalog.entity_type("channel").unwrap();
        assert_eq!(channel.target_overlap(&Language::Vn), None);
        assert_eq!(channel.label(&Language::Vn), None);
    }

    #[test]
    fn intra_language_synonyms_exist() {
        let catalog = Catalog::standard();
        let actor = catalog.entity_type("actor").unwrap();
        let death = actor.concept("death_date").unwrap();
        assert!(death.pt.len() >= 2, "falecimento/morte synonymy expected");
        // Polysemy: "born" appears for both birth_date and birth_place.
        let birth_date = actor.concept("birth_date").unwrap();
        let birth_place = actor.concept("birth_place").unwrap();
        assert!(birth_date.en.contains(&"born"));
        assert!(birth_place.en.contains(&"born"));
    }

    #[test]
    fn concept_name_lookup_by_language() {
        let catalog = Catalog::standard();
        let film = catalog.entity_type("film").unwrap();
        let starring = film.concept("starring").unwrap();
        assert_eq!(starring.names(&Language::En), &["starring"]);
        assert!(starring.names(&Language::Pt).contains(&"elenco original"));
        assert_eq!(starring.names(&Language::Vn), &["diễn viên"]);
        assert!(starring.names(&Language::Other("de".into())).is_empty());
    }
}
