//! Languages of the corpus.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Wikipedia language edition.
///
/// The paper works with English, Portuguese and Vietnamese; [`Language::Other`]
/// keeps the model open for additional editions without touching the core
/// algorithms (none of which enumerate languages).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Language {
    /// English (`en.wikipedia.org`).
    En,
    /// Portuguese (`pt.wikipedia.org`).
    Pt,
    /// Vietnamese (`vi.wikipedia.org`).
    Vn,
    /// Any other language edition, identified by its wiki code.
    Other(String),
}

impl Language {
    /// The wiki code ("en", "pt", "vi", ...).
    pub fn code(&self) -> &str {
        match self {
            Language::En => "en",
            Language::Pt => "pt",
            Language::Vn => "vi",
            Language::Other(code) => code,
        }
    }

    /// Parses a wiki code.
    pub fn from_code(code: &str) -> Self {
        match code {
            "en" => Language::En,
            "pt" => Language::Pt,
            "vi" | "vn" => Language::Vn,
            other => Language::Other(other.to_string()),
        }
    }

    /// Human-readable English name of the language.
    pub fn name(&self) -> &str {
        match self {
            Language::En => "English",
            Language::Pt => "Portuguese",
            Language::Vn => "Vietnamese",
            Language::Other(code) => code,
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for lang in [Language::En, Language::Pt, Language::Vn] {
            assert_eq!(Language::from_code(lang.code()), lang);
        }
        assert_eq!(Language::from_code("de"), Language::Other("de".into()));
        assert_eq!(Language::from_code("vn"), Language::Vn);
    }

    #[test]
    fn display_uses_code() {
        assert_eq!(Language::Pt.to_string(), "pt");
        assert_eq!(Language::Other("nl".into()).to_string(), "nl");
    }

    #[test]
    fn names_are_human_readable() {
        assert_eq!(Language::Vn.name(), "Vietnamese");
    }
}
