//! A pragmatic wikitext infobox parser.
//!
//! Wikipedia infoboxes are written as template invocations:
//!
//! ```text
//! {{Infobox film
//! | name          = The Last Emperor
//! | directed by   = [[Bernardo Bertolucci]]
//! | starring      = [[John Lone]]<br>[[Joan Chen]]
//! | running time  = 160 minutes
//! }}
//! ```
//!
//! [`parse_infobox`] extracts the template name and the attribute-value
//! pairs, resolving `[[target|anchor]]` links, stripping nested templates
//! and HTML tags, and converting `<br>`-separated lists into comma-separated
//! values. The parser is intentionally tolerant: real infobox wikitext is
//! messy and the matcher only needs names, plain-text values and link
//! targets.

use crate::model::{AttributeValue, Infobox, Link};

/// Parses the first infobox template found in `source`.
///
/// Returns `None` when no `{{...}}` template is present.
///
/// ```
/// use wiki_corpus::parse_infobox;
/// let src = "{{Infobox film\n| directed by = [[Bernardo Bertolucci]]\n| running time = 160 minutes\n}}";
/// let ib = parse_infobox(src).unwrap();
/// assert_eq!(ib.template, "Infobox film");
/// assert_eq!(ib.attributes.len(), 2);
/// assert_eq!(ib.attributes[0].links[0].target, "Bernardo Bertolucci");
/// ```
pub fn parse_infobox(source: &str) -> Option<Infobox> {
    let body = extract_template_body(source)?;
    let mut parts = split_top_level(&body, '|');
    if parts.is_empty() {
        return None;
    }
    let template = parts.remove(0).trim().to_string();
    let mut infobox = Infobox::new(template);
    for part in parts {
        if let Some((raw_name, raw_value)) = part.split_once('=') {
            let name = raw_name.trim();
            if name.is_empty() {
                continue;
            }
            let (value, links) = render_value(raw_value.trim());
            if value.is_empty() && links.is_empty() {
                continue;
            }
            infobox.push(AttributeValue {
                name: name.to_string(),
                value,
                links,
            });
        }
    }
    Some(infobox)
}

/// Extracts the text between the outermost `{{` and its matching `}}`.
fn extract_template_body(source: &str) -> Option<String> {
    let start = source.find("{{")?;
    let chars: Vec<char> = source[start..].chars().collect();
    let mut depth = 0usize;
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        if i + 1 < chars.len() && chars[i] == '{' && chars[i + 1] == '{' {
            depth += 1;
            if depth > 1 {
                out.push_str("{{");
            }
            i += 2;
            continue;
        }
        if i + 1 < chars.len() && chars[i] == '}' && chars[i + 1] == '}' {
            depth -= 1;
            if depth == 0 {
                return Some(out);
            }
            out.push_str("}}");
            i += 2;
            continue;
        }
        out.push(chars[i]);
        i += 1;
    }
    // Unbalanced braces: treat everything after the opening braces as body.
    Some(out)
}

/// Splits on `sep` but only at nesting depth 0 with respect to `[[..]]` and
/// `{{..}}` pairs, so that pipes inside links or nested templates do not
/// split the value.
fn split_top_level(body: &str, sep: char) -> Vec<String> {
    let chars: Vec<char> = body.chars().collect();
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut link_depth = 0usize;
    let mut template_depth = 0usize;
    let mut i = 0usize;
    while i < chars.len() {
        if i + 1 < chars.len() {
            match (chars[i], chars[i + 1]) {
                ('[', '[') => {
                    link_depth += 1;
                    current.push_str("[[");
                    i += 2;
                    continue;
                }
                (']', ']') => {
                    link_depth = link_depth.saturating_sub(1);
                    current.push_str("]]");
                    i += 2;
                    continue;
                }
                ('{', '{') => {
                    template_depth += 1;
                    current.push_str("{{");
                    i += 2;
                    continue;
                }
                ('}', '}') => {
                    template_depth = template_depth.saturating_sub(1);
                    current.push_str("}}");
                    i += 2;
                    continue;
                }
                _ => {}
            }
        }
        if chars[i] == sep && link_depth == 0 && template_depth == 0 {
            parts.push(std::mem::take(&mut current));
        } else {
            current.push(chars[i]);
        }
        i += 1;
    }
    parts.push(current);
    parts
}

/// Renders a raw wikitext value: resolves links, drops nested templates and
/// HTML markup, converts `<br>` to a comma separator.
fn render_value(raw: &str) -> (String, Vec<Link>) {
    let mut links = Vec::new();
    let mut text = String::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        // Wiki link.
        if i + 1 < chars.len() && chars[i] == '[' && chars[i + 1] == '[' {
            if let Some(end) = find_close(&chars, i + 2, ']') {
                let inner: String = chars[i + 2..end].iter().collect();
                let (target, anchor) = match inner.split_once('|') {
                    Some((t, a)) => (t.trim().to_string(), a.trim().to_string()),
                    None => (inner.trim().to_string(), inner.trim().to_string()),
                };
                if !target.is_empty() {
                    text.push_str(&anchor);
                    links.push(Link { target, anchor });
                }
                i = end + 2;
                continue;
            }
        }
        // Nested template: skip entirely.
        if i + 1 < chars.len() && chars[i] == '{' && chars[i + 1] == '{' {
            if let Some(end) = find_close(&chars, i + 2, '}') {
                i = end + 2;
                continue;
            }
        }
        // HTML tag: <br>, <br/>, <small>, <ref>...</ref> etc. A <br> becomes
        // a separator; other tags are dropped.
        if chars[i] == '<' {
            if let Some(end) = chars[i..].iter().position(|&c| c == '>') {
                let tag: String = chars[i + 1..i + end].iter().collect();
                let tag_lower = tag.to_lowercase();
                if tag_lower.starts_with("br") {
                    text.push_str(", ");
                }
                i += end + 1;
                continue;
            }
        }
        // Bold/italic markup.
        if chars[i] == '\'' {
            i += 1;
            continue;
        }
        text.push(chars[i]);
        i += 1;
    }
    let cleaned = text
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .trim_matches(|c| c == ',' || c == ' ')
        .to_string();
    (cleaned, links)
}

/// Finds the index of the first `close close` pair starting at `from`.
fn find_close(chars: &[char], from: usize, close: char) -> Option<usize> {
    let mut i = from;
    while i + 1 < chars.len() {
        if chars[i] == close && chars[i + 1] == close {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Renders an [`Infobox`] back to wikitext. Useful for tests and for
/// persisting generated corpora in a human-inspectable form.
pub fn render_infobox(infobox: &Infobox) -> String {
    let mut out = String::new();
    out.push_str("{{");
    out.push_str(&infobox.template);
    out.push('\n');
    for attr in &infobox.attributes {
        out.push_str("| ");
        out.push_str(&attr.name);
        out.push_str(" = ");
        if attr.links.is_empty() {
            out.push_str(&attr.value);
        } else {
            // Re-link the anchors we know about; text between links is kept.
            let mut remaining = attr.value.clone();
            for link in &attr.links {
                if let Some(pos) = remaining.find(&link.anchor) {
                    let before = &remaining[..pos];
                    out.push_str(before);
                    if link.anchor == link.target {
                        out.push_str(&format!("[[{}]]", link.target));
                    } else {
                        out.push_str(&format!("[[{}|{}]]", link.target, link.anchor));
                    }
                    remaining = remaining[pos + link.anchor.len()..].to_string();
                } else {
                    out.push_str(&format!("[[{}]]", link.target));
                }
            }
            out.push_str(&remaining);
        }
        out.push('\n');
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
Some article text before the box.
{{Infobox film
| name          = The Last Emperor
| directed by   = [[Bernardo Bertolucci]]
| produced by   = [[Jeremy Thomas]]
| starring      = [[John Lone]]<br>[[Joan Chen]]<br>[[Peter O'Toole|Peter O´Toole]]
| music by      = [[Ryuichi Sakamoto]], [[David Byrne]]
| running time  = 160 minutes
| budget        = {{US$|23.8 million}}
| country       = [[Italy]], [[United Kingdom]]
| language      = English
}}
Rest of the article.
"#;

    #[test]
    fn parses_template_name_and_attribute_count() {
        let ib = parse_infobox(SAMPLE).unwrap();
        assert_eq!(ib.template, "Infobox film");
        // The budget value is a nested template that renders to empty text,
        // so 8 of the 9 listed attributes survive.
        assert_eq!(ib.len(), 8);
    }

    #[test]
    fn resolves_simple_and_piped_links() {
        let ib = parse_infobox(SAMPLE).unwrap();
        let starring = ib.value_of("starring").unwrap();
        assert_eq!(starring.links.len(), 3);
        assert_eq!(starring.links[2].target, "Peter O'Toole");
        assert_eq!(starring.links[2].anchor, "Peter O´Toole");
        assert!(starring.value.contains("John Lone"));
        assert!(starring.value.contains(','));
    }

    #[test]
    fn drops_nested_templates_but_keeps_attribute() {
        let ib = parse_infobox(SAMPLE).unwrap();
        // The budget value is a nested template and renders to empty text,
        // so the attribute is skipped entirely.
        assert!(ib.value_of("budget").is_none());
    }

    #[test]
    fn plain_values_survive() {
        let ib = parse_infobox(SAMPLE).unwrap();
        assert_eq!(ib.value_of("running time").unwrap().value, "160 minutes");
        assert_eq!(ib.value_of("language").unwrap().value, "English");
    }

    #[test]
    fn pipes_inside_links_do_not_split_attributes() {
        let src = "{{Infobox person | spouse = [[Jane Doe|Jane]] | born = 1970 }}";
        let ib = parse_infobox(src).unwrap();
        assert_eq!(ib.len(), 2);
        assert_eq!(ib.value_of("spouse").unwrap().links[0].target, "Jane Doe");
    }

    #[test]
    fn portuguese_infobox() {
        let src = "{{Info/Filme\n| título = O Último Imperador\n| direção = [[Bernardo Bertolucci]]\n| elenco original = [[John Lone]], [[Joan Chen]]\n| duração = 165 minutos\n}}";
        let ib = parse_infobox(src).unwrap();
        assert_eq!(ib.template, "Info/Filme");
        assert_eq!(ib.value_of("duração").unwrap().value, "165 minutos");
        assert_eq!(
            ib.value_of("direção").unwrap().links[0].target,
            "Bernardo Bertolucci"
        );
    }

    #[test]
    fn missing_template_returns_none() {
        assert!(parse_infobox("no template here").is_none());
        assert!(parse_infobox("").is_none());
    }

    #[test]
    fn unbalanced_braces_are_tolerated() {
        let src = "{{Infobox book\n| author = [[Someone]]\n";
        let ib = parse_infobox(src).unwrap();
        assert_eq!(ib.template, "Infobox book");
        assert_eq!(ib.len(), 1);
    }

    #[test]
    fn empty_values_are_skipped() {
        let src = "{{Infobox film | name = | year = 1987 }}";
        let ib = parse_infobox(src).unwrap();
        assert_eq!(ib.len(), 1);
        assert!(ib.value_of("year").is_some());
    }

    #[test]
    fn render_roundtrip_preserves_schema_and_links() {
        let ib = parse_infobox(SAMPLE).unwrap();
        let rendered = render_infobox(&ib);
        let reparsed = parse_infobox(&rendered).unwrap();
        assert_eq!(ib.schema(), reparsed.schema());
        let a = ib.value_of("directed by").unwrap();
        let b = reparsed.value_of("directed by").unwrap();
        assert_eq!(a.links, b.links);
    }
}
