//! Dataset bundles: corpus + ground truth + type pairings for one language
//! pair.
//!
//! The experiments in the paper are run per language pair (Portuguese-English
//! and Vietnamese-English) and per entity type. [`Dataset`] packages the
//! generated corpus, its gold standard and the list of type pairings so the
//! matcher, the baselines and the evaluation harness all consume the same
//! object.

use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::ground_truth::GroundTruth;
use crate::lang::Language;
use crate::store::Corpus;
use crate::synthetic::{SyntheticConfig, SyntheticGenerator};

/// A pairing of one entity type's labels across the two languages of a
/// dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypePairing {
    /// Language-independent type identifier (e.g. `"film"`).
    pub type_id: String,
    /// Type label in the foreign language (e.g. `"Filme"`, `"Phim"`).
    pub label_other: String,
    /// Type label in English (e.g. `"Film"`).
    pub label_en: String,
}

/// A complete experimental dataset for one language pair.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The languages of the pair: `(foreign, English)`.
    pub languages: (Language, Language),
    /// The article corpus (both editions).
    pub corpus: Corpus,
    /// Gold-standard attribute correspondences.
    pub ground_truth: GroundTruth,
    /// The entity types present in the pair.
    pub types: Vec<TypePairing>,
}

impl Dataset {
    /// Generates the Portuguese-English dataset (14 entity types).
    pub fn pt_en(config: &SyntheticConfig) -> Self {
        Self::generate(Language::Pt, config)
    }

    /// Generates the Vietnamese-English dataset (4 entity types).
    pub fn vn_en(config: &SyntheticConfig) -> Self {
        Self::generate(Language::Vn, config)
    }

    /// Generates the dataset for the pair (`other`, English).
    pub fn generate(other: Language, config: &SyntheticConfig) -> Self {
        let generator = SyntheticGenerator::new(*config);
        let (corpus, ground_truth) = generator.generate_pair(other.clone());
        let catalog = Catalog::standard();
        let types = catalog
            .types_for(&other)
            .into_iter()
            .map(|t| TypePairing {
                type_id: t.id.to_string(),
                label_other: t.label(&other).unwrap_or(t.label_en).to_string(),
                label_en: t.label_en.to_string(),
            })
            .collect();
        Dataset {
            languages: (other, Language::En),
            corpus,
            ground_truth,
            types,
        }
    }

    /// The foreign (non-English) language of the pair.
    pub fn other_language(&self) -> &Language {
        &self.languages.0
    }

    /// The English side of the pair.
    pub fn english(&self) -> &Language {
        &self.languages.1
    }

    /// Looks up a type pairing by id.
    pub fn type_pairing(&self, type_id: &str) -> Option<&TypePairing> {
        self.types.iter().find(|t| t.type_id == type_id)
    }

    /// Short human-readable name of the pair ("Pt-En", "Vn-En", ...).
    pub fn pair_name(&self) -> String {
        fn cap(code: &str) -> String {
            let mut chars = code.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().chain(chars).collect(),
                None => String::new(),
            }
        }
        format!(
            "{}-{}",
            cap(self.languages.0.code()),
            cap(self.languages.1.code())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt_en_dataset_has_fourteen_types() {
        let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
        assert_eq!(dataset.types.len(), 14);
        assert_eq!(dataset.pair_name(), "Pt-En");
        assert_eq!(dataset.other_language(), &Language::Pt);
        let film = dataset.type_pairing("film").unwrap();
        assert_eq!(film.label_other, "Filme");
        assert_eq!(film.label_en, "Film");
    }

    #[test]
    fn vn_en_dataset_has_four_types() {
        let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
        assert_eq!(dataset.types.len(), 4);
        assert_eq!(dataset.pair_name(), "Vi-En");
        assert!(dataset.type_pairing("film").is_some());
        assert!(dataset.type_pairing("book").is_none());
    }

    #[test]
    fn corpus_and_ground_truth_cover_the_same_types() {
        let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
        for pairing in &dataset.types {
            assert!(
                dataset.ground_truth.for_type(&pairing.type_id).is_some(),
                "ground truth missing for {}",
                pairing.type_id
            );
            assert!(
                dataset
                    .corpus
                    .articles_of_type(&Language::En, &pairing.label_en)
                    .count()
                    > 0,
                "no English articles for {}",
                pairing.type_id
            );
            assert!(
                dataset
                    .corpus
                    .articles_of_type(&Language::Pt, &pairing.label_other)
                    .count()
                    > 0,
                "no Portuguese articles for {}",
                pairing.type_id
            );
        }
    }
}
