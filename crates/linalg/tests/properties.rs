//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use wiki_linalg::svd::jacobi_svd;
use wiki_linalg::{cosine, LsiConfig, LsiModel, Matrix};

/// Strategy producing small random matrices with entries in [-3, 3].
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f64..3.0, r * c).prop_map(move |data| {
            let rows: Vec<Vec<f64>> = data.chunks(c).map(|ch| ch.to_vec()).collect();
            Matrix::from_rows(&rows)
        })
    })
}

/// Strategy producing small binary occurrence matrices.
fn occurrence_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(0u8..=1, r * c).prop_map(move |data| {
            let rows: Vec<Vec<f64>> = data
                .chunks(c)
                .map(|ch| ch.iter().map(|&b| b as f64).collect())
                .collect();
            Matrix::from_rows(&rows)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SVD reconstructs the original matrix.
    #[test]
    fn svd_reconstructs(m in matrix_strategy(8, 8)) {
        let svd = jacobi_svd(&m);
        let rec = svd.reconstruct();
        prop_assert!(m.max_abs_diff(&rec) < 1e-6, "err = {}", m.max_abs_diff(&rec));
    }

    /// Singular values are non-negative and sorted in decreasing order, and
    /// their squared sum equals the squared Frobenius norm.
    #[test]
    fn singular_values_sorted_and_energy_preserved(m in matrix_strategy(8, 8)) {
        let svd = jacobi_svd(&m);
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for s in &svd.s {
            prop_assert!(*s >= 0.0);
        }
        let energy: f64 = svd.s.iter().map(|s| s * s).sum();
        let frob = m.frobenius_norm().powi(2);
        prop_assert!((energy - frob).abs() < 1e-6 * frob.max(1.0));
    }

    /// The rank never exceeds min(rows, cols).
    #[test]
    fn rank_bounded(m in matrix_strategy(7, 9)) {
        let svd = jacobi_svd(&m);
        prop_assert!(svd.rank() <= m.rows().min(m.cols()));
    }

    /// Transposing twice is the identity; matmul with identity is identity.
    #[test]
    fn matrix_algebra_identities(m in matrix_strategy(6, 6)) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let i = Matrix::identity(m.cols());
        let prod = m.matmul(&i);
        prop_assert!(m.max_abs_diff(&prod) < 1e-12);
    }

    /// LSI similarities are bounded, symmetric, and 1 on the diagonal for
    /// non-zero rows.
    #[test]
    fn lsi_similarity_properties(m in occurrence_strategy(8, 12)) {
        let model = LsiModel::fit(&m, LsiConfig::default());
        for i in 0..model.len() {
            for j in 0..model.len() {
                let s = model.similarity(i, j);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
                prop_assert!((s - model.similarity(j, i)).abs() < 1e-9);
            }
            let row_norm: f64 = m.row(i).iter().map(|v| v * v).sum();
            if row_norm > 0.0 && model.rank() > 0 {
                // Rows that survive truncation should be self-similar; rows
                // fully outside the retained subspace may legitimately be 0.
                let s = model.similarity(i, i);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
            }
        }
    }

    /// Cosine of a vector with itself is 1 (when non-zero) and cosine is
    /// invariant to positive scaling.
    #[test]
    fn cosine_scale_invariance(v in proptest::collection::vec(-5.0f64..5.0, 1..10), k in 0.1f64..10.0) {
        let norm: f64 = v.iter().map(|x| x * x).sum();
        prop_assume!(norm > 1e-6);
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-9);
        prop_assert!((cosine(&v, &scaled) - 1.0).abs() < 1e-9);
    }
}
