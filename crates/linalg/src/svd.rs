//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The one-sided Jacobi method repeatedly applies plane rotations to the
//! columns of the working matrix until all column pairs are mutually
//! orthogonal. At convergence the column norms are the singular values, the
//! normalised columns form `U`, and the accumulated rotations form `V`. It is
//! slower than bidiagonalisation-based methods but numerically robust,
//! simple, and easily fast enough for the occurrence matrices WikiMatch
//! builds (tens × hundreds).

use crate::matrix::Matrix;

/// The result of a (possibly truncated) singular value decomposition
/// `A ≈ U · diag(S) · Vᵀ` with singular values sorted in decreasing order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, one column per retained singular value
    /// (`m × k` for an `m × n` input).
    pub u: Matrix,
    /// Singular values in decreasing order (length `k`).
    pub s: Vec<f64>,
    /// Right singular vectors (`n × k`).
    pub v: Matrix,
}

impl Svd {
    /// Number of retained singular values.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reconstructs `U · diag(S) · Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let us = self.u.scale_columns(&self.s);
        us.matmul(&self.v.transpose())
    }

    /// Returns a copy truncated to the top `k` singular values.
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.rank());
        let take_cols = |m: &Matrix| {
            let mut out = Matrix::zeros(m.rows(), k);
            for r in 0..m.rows() {
                for c in 0..k {
                    out.set(r, c, m.get(r, c));
                }
            }
            out
        };
        Svd {
            u: take_cols(&self.u),
            s: self.s[..k].to_vec(),
            v: take_cols(&self.v),
        }
    }

    /// Smallest rank whose cumulative squared singular values capture at
    /// least `energy` (in `(0, 1]`) of the total spectral energy.
    pub fn rank_for_energy(&self, energy: f64) -> usize {
        let total: f64 = self.s.iter().map(|s| s * s).sum();
        if total == 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, s) in self.s.iter().enumerate() {
            acc += s * s;
            if acc / total >= energy {
                return i + 1;
            }
        }
        self.rank()
    }
}

/// Computes the full SVD of `a` using one-sided Jacobi rotations.
///
/// Singular values below `tol * max_singular_value` are dropped (together
/// with their vectors), so the returned rank never exceeds
/// `min(rows, cols)` and is usually the numerical rank of the input.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    const MAX_SWEEPS: usize = 60;
    const EPS: f64 = 1e-12;

    if a.is_empty() {
        return Svd {
            u: Matrix::zeros(a.rows(), 0),
            s: Vec::new(),
            v: Matrix::zeros(a.cols(), 0),
        };
    }

    // Work on the tall orientation (rows >= cols); transpose back at the
    // end. The working matrix is held **column-major** — one contiguous
    // `Vec<f64>` per column — because every operation of the one-sided
    // method (Gram entries, rotations, column norms) walks whole columns:
    // on the row-major `Matrix` each access strided by the column count,
    // which made the Gram loop memory-bound. The float operations and their
    // order are exactly those of the row-major implementation, so the
    // decomposition is bit-identical; only the access pattern changed.
    let rows = if a.rows() < a.cols() {
        a.cols()
    } else {
        a.rows()
    };
    let transposed = a.rows() < a.cols();
    let n = if transposed { a.rows() } else { a.cols() };
    let mut work: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            if transposed {
                // Columns of Aᵀ are the rows of A, already contiguous.
                a.row(j).to_vec()
            } else {
                a.column(j)
            }
        })
        .collect();
    // V accumulates the rotations; also column-major (n × n identity).
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut col = vec![0.0; n];
            col[j] = 1.0;
            col
        })
        .collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut off_diagonal = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram sub-matrix for columns p and q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for (x, y) in work[p].iter().zip(&work[q]) {
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                if apq.abs() <= EPS * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                off_diagonal = off_diagonal.max(apq.abs());

                // Jacobi rotation annihilating the (p, q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                let (cp, cq) = two_columns(&mut work, p, q);
                for (x, y) in cp.iter_mut().zip(cq.iter_mut()) {
                    let (xv, yv) = (*x, *y);
                    *x = c * xv - s * yv;
                    *y = s * xv + c * yv;
                }
                let (vp, vq) = two_columns(&mut v, p, q);
                for (x, y) in vp.iter_mut().zip(vq.iter_mut()) {
                    let (xv, yv) = (*x, *y);
                    *x = c * xv - s * yv;
                    *y = s * xv + c * yv;
                }
            }
        }
        if off_diagonal < EPS {
            break;
        }
    }

    // Singular values are the column norms of the rotated matrix.
    let mut order: Vec<(usize, f64)> = work
        .iter()
        .enumerate()
        .map(|(c, col)| {
            let norm = col.iter().map(|x| x.powi(2)).sum::<f64>().sqrt();
            (c, norm)
        })
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let max_sv = order.first().map(|(_, s)| *s).unwrap_or(0.0);
    let keep: Vec<(usize, f64)> = order
        .into_iter()
        .filter(|(_, s)| *s > 1e-10 * max_sv.max(1.0))
        .collect();

    let k = keep.len();
    let mut u = Matrix::zeros(rows, k);
    let mut vv = Matrix::zeros(n, k);
    let mut s = Vec::with_capacity(k);
    for (out_c, (c, sv)) in keep.iter().enumerate() {
        s.push(*sv);
        for (r, x) in work[*c].iter().enumerate() {
            u.set(r, out_c, x / sv);
        }
        for (r, x) in v[*c].iter().enumerate() {
            vv.set(r, out_c, *x);
        }
    }

    if transposed {
        // A = (Aᵀ)ᵀ = (U S Vᵀ)ᵀ = V S Uᵀ, so swap the roles of U and V.
        Svd { u: vv, s, v: u }
    } else {
        Svd { u, s, v: vv }
    }
}

/// Disjoint mutable borrows of columns `p` and `q` (`p < q`).
fn two_columns(cols: &mut [Vec<f64>], p: usize, q: usize) -> (&mut Vec<f64>, &mut Vec<f64>) {
    debug_assert!(p < q);
    let (head, tail) = cols.split_at_mut(q);
    (&mut head[p], &mut tail[0])
}

/// Computes a truncated SVD keeping the top `k` singular values.
pub fn truncated_svd(a: &Matrix, k: usize) -> Svd {
    jacobi_svd(a).truncate(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_reconstructs(a: &Matrix, tol: f64) {
        let svd = jacobi_svd(a);
        let rec = svd.reconstruct();
        assert!(
            a.max_abs_diff(&rec) < tol,
            "reconstruction error {} exceeds {}",
            a.max_abs_diff(&rec),
            tol
        );
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.rank(), 2);
        assert!((svd.s[0] - 4.0).abs() < 1e-9);
        assert!((svd.s[1] - 3.0).abs() < 1e-9);
        assert_reconstructs(&a, 1e-9);
    }

    #[test]
    fn known_rank_one_matrix() {
        // Outer product has exactly one non-zero singular value.
        let a = Matrix::from_rows(&[vec![2.0, 4.0], vec![1.0, 2.0], vec![3.0, 6.0]]);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.rank(), 1);
        // ||a||_F equals the single singular value for rank-1 matrices.
        assert!((svd.s[0] - a.frobenius_norm()).abs() < 1e-9);
        assert_reconstructs(&a, 1e-9);
    }

    #[test]
    fn wide_matrix_is_handled() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0, 0.0, 3.0], vec![0.0, 1.0, 0.0, 2.0, 0.0]]);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.u.rows(), 2);
        assert_eq!(svd.v.rows(), 5);
        assert_reconstructs(&a, 1e-9);
    }

    #[test]
    fn orthonormal_singular_vectors() {
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0],
        ]);
        let svd = jacobi_svd(&a);
        // Columns of U are orthonormal.
        for i in 0..svd.rank() {
            for j in 0..svd.rank() {
                let dot: f64 = (0..svd.u.rows())
                    .map(|r| svd.u.get(r, i) * svd.u.get(r, j))
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot - expected).abs() < 1e-8,
                    "U not orthonormal at ({i},{j})"
                );
            }
        }
        assert_reconstructs(&a, 1e-8);
    }

    #[test]
    fn truncation_keeps_top_values() {
        let a = Matrix::from_rows(&[
            vec![10.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 0.1],
        ]);
        let svd = truncated_svd(&a, 2);
        assert_eq!(svd.rank(), 2);
        assert!((svd.s[0] - 10.0).abs() < 1e-9);
        assert!((svd.s[1] - 5.0).abs() < 1e-9);
        // Truncating beyond the rank is a no-op.
        let full = jacobi_svd(&a);
        assert_eq!(full.truncate(10).rank(), full.rank());
    }

    #[test]
    fn rank_for_energy() {
        let a = Matrix::from_rows(&[
            vec![10.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.5],
        ]);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.rank_for_energy(0.9), 1);
        assert_eq!(svd.rank_for_energy(0.99), 2);
        assert_eq!(svd.rank_for_energy(1.0), 3);
    }

    #[test]
    fn empty_and_zero_matrices() {
        let empty = Matrix::zeros(0, 0);
        let svd = jacobi_svd(&empty);
        assert_eq!(svd.rank(), 0);

        let zeros = Matrix::zeros(3, 4);
        let svd = jacobi_svd(&zeros);
        assert_eq!(svd.rank(), 0);
    }

    #[test]
    fn random_like_binary_matrix_reconstructs() {
        // A deterministic pseudo-random 0/1 matrix resembling an LSI
        // occurrence matrix.
        let rows = 12;
        let cols = 20;
        let mut m = Matrix::zeros(rows, cols);
        let mut state = 12345u64;
        for r in 0..rows {
            for c in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 33).is_multiple_of(3) {
                    m.set(r, c, 1.0);
                }
            }
        }
        assert_reconstructs(&m, 1e-7);
    }
}
