//! Row-major dense matrix.
//!
//! The LSI occurrence matrices are small and dense (entries are 0/1 counts),
//! so a plain `Vec<f64>` backing store with row-major indexing is both the
//! simplest and the fastest reasonable representation.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        Self {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Reads the entry at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix multiplication `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree for matmul"
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    let v = out.get(r, c) + a * other.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// Multiplies every column `j` by `scale[j]`.
    pub fn scale_columns(&self, scale: &[f64]) -> Matrix {
        assert_eq!(scale.len(), self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for (c, factor) in scale.iter().enumerate() {
                out.set(r, c, self.get(r, c) * factor);
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute difference between two matrices of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scale_columns_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let s = m.scale_columns(&[2.0, 0.5]);
        assert_eq!(s, Matrix::from_rows(&[vec![2.0, 1.0], vec![6.0, 2.0]]));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(Matrix::from_rows(&[]), m);
    }
}
