//! # wiki-linalg
//!
//! Small, dependency-free dense linear algebra used by the Latent Semantic
//! Indexing (LSI) component of WikiMatch.
//!
//! The paper applies a truncated singular value decomposition to the
//! attribute × dual-language-infobox occurrence matrix and measures cosine
//! similarity between the reduced attribute vectors (Section 3.2). The
//! matrices involved are tiny by numerical-linear-algebra standards (tens of
//! attributes × hundreds of infoboxes), so a robust one-sided Jacobi SVD is
//! more than adequate and keeps the workspace free of heavyweight BLAS
//! dependencies.
//!
//! Modules:
//!
//! * [`matrix`] — row-major dense matrices with the handful of operations the
//!   pipeline needs (transpose, multiply, row/column access).
//! * [`svd`] — one-sided Jacobi SVD and truncation helpers.
//! * [`lsi`] — the LSI model: builds the reduced attribute representation and
//!   serves cosine similarities between attribute vectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lsi;
pub mod matrix;
pub mod svd;

pub use lsi::{LsiConfig, LsiModel};
pub use matrix::Matrix;
pub use svd::{truncated_svd, Svd};

/// Cosine similarity between two dense vectors.
///
/// Returns 0.0 when either vector has zero norm or the lengths differ (the
/// latter is a programming error in release builds but should never poison a
/// similarity score with `NaN`).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basic() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 1.0], &[1.0, 0.0]) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine(&[1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn cosine_can_be_negative() {
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }
}
