//! Latent Semantic Indexing over an occurrence matrix.
//!
//! WikiMatch builds an occurrence matrix `M (n × m)` where rows are the
//! unique attributes of a dual-language schema and columns are the
//! dual-language infoboxes of one entity type; `M[i][j] = 1` when attribute
//! `i` appears in dual infobox `j` (Figure 2(a) of the paper). The truncated
//! SVD `M ≈ U_f S_f V_fᵀ` yields, for every attribute, a reduced vector
//! `U_f[i] · S_f`; cross-language synonyms end up with similar vectors
//! because they occur in similar infoboxes even though they never co-occur
//! as identical strings.
//!
//! [`LsiModel`] encapsulates the decomposition and serves cosine
//! similarities between attribute vectors. The *sign conventions* of the
//! paper (complement for same-language pairs, zero for co-occurring pairs)
//! are applied by the `wikimatch` crate, not here — this module is purely the
//! numerical core.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::svd::jacobi_svd;

/// Configuration of the LSI decomposition.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LsiConfig {
    /// Explicit number of dimensions to keep; `None` selects the rank from
    /// [`LsiConfig::energy`].
    pub rank: Option<usize>,
    /// Fraction of spectral energy to preserve when `rank` is `None`.
    pub energy: f64,
}

impl Default for LsiConfig {
    fn default() -> Self {
        Self {
            rank: None,
            energy: 0.9,
        }
    }
}

/// A fitted LSI model: reduced attribute vectors scaled by the singular
/// values.
#[derive(Debug, Clone)]
pub struct LsiModel {
    /// One reduced vector per row (attribute) of the input matrix.
    vectors: Vec<Vec<f64>>,
    /// Euclidean norm of each reduced vector, precomputed at fit time so
    /// the O(n²)-pair similarity sweep pays one multiply-add per dimension
    /// instead of three (plus two square roots) per pair.
    norms: Vec<f64>,
    /// Retained singular values.
    singular_values: Vec<f64>,
}

impl LsiModel {
    /// Fits the model on an occurrence matrix (rows = attributes,
    /// columns = documents/dual infoboxes).
    pub fn fit(occurrence: &Matrix, config: LsiConfig) -> Self {
        if occurrence.is_empty() {
            return Self {
                vectors: vec![Vec::new(); occurrence.rows()],
                norms: vec![0.0; occurrence.rows()],
                singular_values: Vec::new(),
            };
        }
        let svd = jacobi_svd(occurrence);
        if svd.rank() == 0 {
            // An all-zero occurrence matrix has no latent structure at all;
            // every attribute gets an empty vector (similarity 0).
            return Self {
                vectors: vec![Vec::new(); occurrence.rows()],
                norms: vec![0.0; occurrence.rows()],
                singular_values: Vec::new(),
            };
        }
        let rank = match config.rank {
            Some(k) => k.min(svd.rank()).max(1),
            None => svd.rank_for_energy(config.energy.clamp(0.05, 1.0)).max(1),
        };
        let svd = svd.truncate(rank);

        // Attribute vector i = U[i, :] ⊙ S  (scaling by the singular values,
        // as in Deerwester et al. and the paper's description).
        let mut vectors = Vec::with_capacity(occurrence.rows());
        for r in 0..occurrence.rows() {
            let mut v = Vec::with_capacity(rank);
            for c in 0..rank {
                v.push(svd.u.get(r, c) * svd.s[c]);
            }
            vectors.push(v);
        }
        // Norms accumulate x² in index order — exactly the `na`/`nb`
        // accumulation inside [`crate::cosine`], so similarities computed
        // from the cached norms are bit-identical to calling `cosine`.
        let norms = vectors
            .iter()
            .map(|v| v.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        Self {
            vectors,
            norms,
            singular_values: svd.s,
        }
    }

    /// Number of attributes (rows) the model was fitted on.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the model contains no attribute vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Number of retained latent dimensions.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// The retained singular values, largest first.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// The reduced vector of attribute `i`.
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.vectors[i]
    }

    /// Cosine similarity between the reduced vectors of attributes `i` and
    /// `j`, clamped to `[-1, 1]` (0.0 when either vector is all zeros).
    ///
    /// Equivalent to [`crate::cosine`] on the two vectors, but reuses the
    /// norms cached at fit time — the per-pair cost in the all-pairs
    /// similarity sweep drops to a single dot product.
    pub fn similarity(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.vectors[i], &self.vectors[j]);
        let (na, nb) = (self.norms[i], self.norms[j]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the kind of matrix in Figure 2(a): attributes that appear in
    /// complementary languages of the same dual infoboxes.
    fn example_matrix() -> (Matrix, Vec<&'static str>) {
        let attrs = vec![
            "born",        // en
            "died",        // en
            "spouse",      // en
            "nascimento",  // pt (= born)
            "falecimento", // pt (= died)
            "conjuge",     // pt (= spouse)
        ];
        // 8 dual infoboxes; synonyms share occurrence patterns.
        let rows = vec![
            vec![1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0], // born
            vec![0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0], // died
            vec![0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0], // spouse
            vec![1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0], // nascimento
            vec![0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0], // falecimento
            vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0], // conjuge
        ];
        (Matrix::from_rows(&rows), attrs)
    }

    #[test]
    fn synonyms_have_similar_vectors() {
        let (m, _attrs) = example_matrix();
        let model = LsiModel::fit(&m, LsiConfig::default());
        assert_eq!(model.len(), 6);
        assert!(model.rank() >= 1);

        let born_nascimento = model.similarity(0, 3);
        let born_falecimento = model.similarity(0, 4);
        let died_falecimento = model.similarity(1, 4);
        assert!(
            born_nascimento > born_falecimento,
            "born~nascimento ({born_nascimento}) should exceed born~falecimento ({born_falecimento})"
        );
        assert!(
            died_falecimento > 0.95,
            "died~falecimento = {died_falecimento}"
        );
    }

    #[test]
    fn explicit_rank_is_respected() {
        let (m, _) = example_matrix();
        let model = LsiModel::fit(
            &m,
            LsiConfig {
                rank: Some(2),
                energy: 0.9,
            },
        );
        assert_eq!(model.rank(), 2);
        assert_eq!(model.vector(0).len(), 2);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let (m, _) = example_matrix();
        let model = LsiModel::fit(&m, LsiConfig::default());
        for i in 0..model.len() {
            for j in 0..model.len() {
                let s = model.similarity(i, j);
                assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
                assert!((s - model.similarity(j, i)).abs() < 1e-9);
            }
            assert!((model.similarity(i, i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_matrix_yields_empty_model() {
        let model = LsiModel::fit(&Matrix::zeros(0, 0), LsiConfig::default());
        assert!(model.is_empty());
        assert_eq!(model.rank(), 0);
    }

    #[test]
    fn zero_rows_get_zero_similarity() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 0.0]]);
        let model = LsiModel::fit(&m, LsiConfig::default());
        assert_eq!(model.similarity(0, 1), 0.0);
    }
}
