//! Observability integration tests: boot a real `matchd` server, scrape
//! `GET /metrics` over an actual socket, and validate the exposition with
//! the `wiki_obs::expo` parser — bucket monotonicity, `_count`/`_sum`
//! consistency, and that traffic moves the request histograms. The
//! structured access log is exercised through an injected in-memory sink.
//!
//! The metrics registry is process-wide, so every assertion about a
//! counter or histogram is phrased as a scrape-over-scrape *delta*; tests
//! in this binary run in parallel against the same registry and absolute
//! values would race.

use std::sync::Arc;

use wiki_corpus::{Language, SyntheticConfig};
use wiki_obs::expo::{self, HistogramScrape, Sample};
use wiki_obs::{LogLevel, RequestLog};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{AlignRequest, StatsResponse};
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

fn tiny_spec(name: &str) -> CorpusSpec {
    CorpusSpec {
        name: name.to_string(),
        language: Language::Pt,
        config: SyntheticConfig::tiny(),
    }
}

/// Boots a server over one tiny corpus; `config` lets a test inject its
/// own access log.
fn boot(name: &str, config: ServerConfig) -> (MatchServer, MatchClient) {
    let registry = Arc::new(Registry::new(2, ComputeMode::default()));
    registry.register(tiny_spec(name));
    let server = MatchServer::start(registry, config).expect("server binds an ephemeral port");
    let client = MatchClient::new(server.addr()).expect("client resolves the server address");
    (server, client)
}

fn default_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    }
}

/// One full scrape, parsed; panics on transport or syntax errors.
fn scrape(client: &mut MatchClient) -> (String, Vec<Sample>) {
    let response = client.get("/metrics").expect("GET /metrics");
    assert_eq!(response.status, 200, "{}", response.body);
    let samples =
        expo::parse_text(&response.body).unwrap_or_else(|e| panic!("exposition must parse: {e}"));
    (response.body, samples)
}

#[test]
fn metrics_exposition_is_valid_and_aligns_move_the_request_histogram() {
    let (server, mut client) = boot("pt-tiny-metrics", default_config());

    let (_, before) = scrape(&mut client);
    let baseline =
        HistogramScrape::extract(&before, "wm_request_seconds", Some(("endpoint", "align")))
            .unwrap_or_default();

    let response = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny-metrics".to_string(),
                type_id: Some("film".to_string()),
            },
        )
        .expect("align request");
    assert!(response.is_success(), "{}", response.body);

    let (text, after) = scrape(&mut client);

    // Document-level shape: the families the serving tier promises.
    for family in [
        "# TYPE wm_request_seconds histogram",
        "# TYPE wm_phase_seconds histogram",
        "# TYPE wm_http_requests_total counter",
        "# TYPE wm_uptime_seconds gauge",
        "# TYPE wm_workers gauge",
        "# TYPE wm_queue_depth gauge",
        "# TYPE wm_queue_depth_limit gauge",
        "# TYPE wm_registry_capacity gauge",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }

    // Every histogram child in the document must be internally
    // consistent: strictly increasing `le`, non-decreasing cumulative
    // counts, and a final `+Inf` bucket equal to `_count`.
    for name in ["wm_request_seconds", "wm_phase_seconds"] {
        let children = HistogramScrape::extract_all(&after, name);
        assert!(!children.is_empty(), "{name} has no children");
        for (labels, child) in &children {
            assert!(
                child.is_monotone(),
                "{name}{{{labels}}} not monotone: {child:?}"
            );
            if child.count > 0.0 {
                assert!(
                    child.sum > 0.0,
                    "{name}{{{labels}}} observed {} values summing to zero seconds",
                    child.count
                );
            }
        }
    }

    // The align we just issued moved the align-endpoint histogram.
    let align = HistogramScrape::extract(&after, "wm_request_seconds", Some(("endpoint", "align")))
        .expect("align child present after an align");
    let delta = align.delta_from(&baseline);
    assert!(delta.count >= 1.0, "align not observed: {delta:?}");
    assert!(delta.sum > 0.0, "align took zero time: {delta:?}");
    assert!(
        delta
            .quantile_upper(0.5)
            .expect("non-empty delta")
            .is_finite(),
        "a warm align must not land in the overflow bucket"
    );

    // The request counter moved with it, labelled by status class.
    let align_ok: f64 = after
        .iter()
        .filter(|s| {
            s.name == "wm_http_requests_total"
                && s.label("endpoint") == Some("align")
                && s.label("status") == Some("2xx")
        })
        .map(|s| s.value)
        .sum();
    assert!(
        align_ok >= 1.0,
        "wm_http_requests_total{{align,2xx}} missing"
    );

    // Scrape-time gauges carry live values.
    let gauge = |name: &str| -> f64 {
        after
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .value
    };
    assert_eq!(gauge("wm_workers"), 4.0);
    assert_eq!(gauge("wm_queue_depth_limit"), 64.0);
    assert!(gauge("wm_queue_depth") >= 0.0);
    assert!(gauge("wm_uptime_seconds") >= 0.0);
    assert_eq!(gauge("wm_registry_capacity"), 2.0);

    server.shutdown();
}

/// Out-of-core gauges over the wire: a budgeted server mapping a v4
/// snapshot must report `resident_bytes` / `mapped_bytes` / `page_ins` per
/// corpus both in the `/stats` JSON and as `/metrics` gauges.
#[test]
fn out_of_core_gauges_are_served_in_stats_and_metrics() {
    let name = "pt-tiny-ooc";
    let dir = std::env::temp_dir().join(format!("wm-metrics-ooc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Seed the disk tier with a directly-addressable snapshot.
    {
        let seed = Registry::new(2, ComputeMode::default())
            .with_snapshot_dir(&dir)
            .with_resident_budget_mb(1024);
        seed.register(tiny_spec(name));
        seed.warm(name)
            .expect("warm writes the v4 snapshot through");
    }

    // A fresh budgeted server over the same directory memory-maps it.
    let registry = Arc::new(
        Registry::new(2, ComputeMode::default())
            .with_snapshot_dir(&dir)
            .with_resident_budget_mb(1024),
    );
    registry.register(tiny_spec(name));
    let server =
        MatchServer::start(registry, default_config()).expect("server binds an ephemeral port");
    let mut client = MatchClient::new(server.addr()).expect("client resolves the server address");

    let response = client
        .post(
            "/align",
            &AlignRequest {
                corpus: name.to_string(),
                type_id: Some("film".to_string()),
            },
        )
        .expect("align request");
    assert!(response.is_success(), "{}", response.body);

    // `/stats`: the per-corpus and registry-wide residency fields.
    let stats: StatsResponse = client
        .get("/stats")
        .expect("GET /stats")
        .json()
        .expect("stats parses");
    assert_eq!(
        stats.registry.resident_budget_bytes,
        Some(1024 * 1024 * 1024)
    );
    let corpus = stats
        .registry
        .corpora
        .iter()
        .find(|c| c.name == name)
        .expect("registered corpus in /stats");
    assert_eq!(corpus.snapshot_loads, 1, "server did not load the snapshot");
    assert!(corpus.mapped_bytes > 0, "session not mapped: {corpus:?}");
    assert!(corpus.resident_bytes > 0, "align materialized nothing");
    assert!(corpus.page_ins > 0, "align paged nothing in");
    assert_eq!(stats.registry.mapped_bytes, corpus.mapped_bytes);

    // `/metrics`: the same values as labelled gauges/counters.
    let (text, samples) = scrape(&mut client);
    for family in [
        "# TYPE wm_corpus_resident_bytes gauge",
        "# TYPE wm_corpus_mapped_bytes gauge",
        "# TYPE wm_corpus_page_ins_total counter",
        "# TYPE wm_registry_resident_bytes gauge",
        "# TYPE wm_registry_mapped_bytes gauge",
        "# TYPE wm_registry_resident_budget_bytes gauge",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    let labelled = |metric: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == metric && s.label("corpus") == Some(name))
            .unwrap_or_else(|| panic!("{metric}{{corpus={name}}} missing"))
            .value
    };
    assert_eq!(
        labelled("wm_corpus_mapped_bytes"),
        corpus.mapped_bytes as f64
    );
    assert!(labelled("wm_corpus_resident_bytes") > 0.0);
    assert!(labelled("wm_corpus_page_ins_total") > 0.0);
    let budget = samples
        .iter()
        .find(|s| s.name == "wm_registry_resident_budget_bytes")
        .expect("budget gauge present")
        .value;
    assert_eq!(budget, (1024u64 * 1024 * 1024) as f64);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_reports_uptime_workers_and_queue_gauge() {
    let (server, mut client) = boot("pt-tiny-statsobs", default_config());
    let stats: StatsResponse = client
        .get("/stats")
        .expect("GET /stats")
        .json()
        .expect("stats parses");
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.queue_depth, 64);
    assert!(
        stats.queue_len <= stats.queue_depth as u64,
        "gauge {} exceeds the queue bound",
        stats.queue_len
    );
    // Uptime is summed lazily from the start instant; a fresh server is
    // seconds old at most.
    assert!(
        stats.uptime_secs < 300,
        "implausible uptime {}",
        stats.uptime_secs
    );
    server.shutdown();
}

#[test]
fn access_log_lines_carry_endpoint_corpus_and_segments() {
    let log = Arc::new(RequestLog::in_memory(LogLevel::Info, 0));
    let config = ServerConfig {
        access_log: Some(Arc::clone(&log)),
        ..default_config()
    };
    let (server, mut client) = boot("pt-tiny-logged", config);

    let response = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny-logged".to_string(),
                type_id: Some("film".to_string()),
            },
        )
        .expect("align request");
    assert!(response.is_success(), "{}", response.body);

    let lines = log.captured();
    let line = lines
        .iter()
        .find(|l| l.contains("\"endpoint\":\"align\""))
        .unwrap_or_else(|| panic!("no align line in {lines:?}"));
    assert!(line.contains("\"method\":\"POST\""), "{line}");
    assert!(line.contains("\"path\":\"/align\""), "{line}");
    assert!(line.contains("\"corpus\":\"pt-tiny-logged\""), "{line}");
    assert!(line.contains("\"status\":200"), "{line}");
    assert!(line.contains("\"slow\":false"), "{line}");
    // The request context attributed per-phase segments to the line. The
    // parse segment always exists; the first request on a connection also
    // carries its queue wait.
    assert!(line.contains("\"req_parse_us\":"), "{line}");
    assert!(line.contains("\"req_queue_wait_us\":"), "{line}");
    assert!(line.contains("\"req_compute_us\":"), "{line}");
    server.shutdown();
}
